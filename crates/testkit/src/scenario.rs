//! Scenario suite: generated multi-rate applications carrying joint
//! functional + WCET-budget properties.
//!
//! A **scenario** models one flight-control application the way an
//! integrator would deploy it: a harmonic cyclic executive (minor frames
//! inside a major cycle), a set of periodic tasks drawn from the
//! [`crate::fleet`] symbol census, and a set of operating **modes**
//! (nominal / degraded / fault-handling) that swap in structure-sharing
//! variants of each task's control law. Every scenario states a
//! declarative **schedulability property** — *every frame of mode M fits
//! its minor-cycle budget on machine X* — that is decided against the
//! sound per-task WCET bounds the pipeline computes, never against
//! measured times.
//!
//! The flow is deliberately front-door only:
//!
//! 1. [`ScenarioConfig`] (validated builder) → [`Scenario::generate`] —
//!    pure function of the seed, same stability guarantee as
//!    [`crate::fleet::random_fleet`].
//! 2. [`Scenario::to_sweep_spec`] lowers the deduplicated task variants to
//!    a [`SweepSpec`]; the caller picks the config/machine axes and runs it
//!    through `Pipeline::run_sweep` (cache-warm, trace-instrumented).
//! 3. [`Scenario::check`] joins the sweep's WCET bounds against the
//!    scenario's frame budgets into a [`SchedReport`] whose rendering and
//!    digest are bit-identical across `--jobs` counts.
//!
//! Budgets are derived from a deliberately pessimistic static cost model
//! ([`estimate_node`], calibrated against the slowest supported
//! machine/config pair) plus a headroom percentage, so generated scenarios
//! are feasible *by construction* — and any infeasible verdict on an
//! un-overridden mode is a soundness bug in the model worth a regression
//! seed. Over-budget modes for negative tests are injected explicitly via
//! [`ScenarioConfigBuilder::override_budget`].

mod report;
mod variants;

pub use report::{SchedReport, SchedVerdict};

use std::fmt;

use vericomp_dataflow::node::Node;
use vericomp_dataflow::symbol::Symbol;
use vericomp_pipeline::hash::{Digest, Hasher};
use vericomp_pipeline::{SweepResult, SweepSpec, SweepUnit};

use crate::fleet;
use crate::rng::{self, Rng};

/// Cycles charged per minor frame for the cyclic-executive prologue
/// (timer acknowledge, frame counter, mode dispatch).
pub const EXEC_OVERHEAD: u64 = 600;

/// Cycles charged per dispatched task (call glue, spills, I/O fencing).
pub const DISPATCH_OVERHEAD: u64 = 150;

/// Largest supported minor-frame count (major cycle length).
pub const MAX_FRAMES: usize = 64;

/// Largest supported task count (10k+-node scenarios are the point, but a
/// million-task config is a typo).
pub const MAX_TASKS: usize = 100_000;

/// What a mode does to the task set, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Full control laws, full task set.
    Nominal,
    /// Simplified laws (tables truncated, PID demoted to proportional,
    /// IIR sections demoted to first order) and housekeeping-rate tasks
    /// shed — the classic load-shedding mode switch.
    Degraded,
    /// Nominal laws plus out-of-range monitors (comparator + confirmation
    /// latched to a fault flag) on each task's float outputs.
    FaultHandling,
}

impl ModeKind {
    /// Identifier-safe suffix appended to a task's node name when the mode
    /// derives a distinct variant.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            ModeKind::Nominal => "",
            ModeKind::Degraded => "_dg",
            ModeKind::FaultHandling => "_fh",
        }
    }
}

/// One operating mode of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeSpec {
    /// Mode name, used in report lines (identifier-safe).
    pub name: String,
    /// Structural effect on the task set.
    pub kind: ModeKind,
    /// Explicit frame budget in cycles, replacing the derived one. The
    /// negative-test hook: an override of `1` makes every non-empty frame
    /// infeasible.
    pub budget_override: Option<u64>,
}

impl ModeSpec {
    /// A mode with a derived budget.
    pub fn new(name: impl Into<String>, kind: ModeKind) -> ModeSpec {
        ModeSpec {
            name: name.into(),
            kind,
            budget_override: None,
        }
    }
}

/// Configuration of the scenario generator. Construct via
/// [`ScenarioConfig::builder`]; every field is public so tests can shrink
/// configs structurally, but [`Scenario::generate`] re-validates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Scenario name — prefixes every task/unit name (identifier-safe).
    pub name: String,
    /// Number of periodic tasks.
    pub tasks: usize,
    /// Minimum symbols per task's nominal control law.
    pub min_symbols: usize,
    /// Maximum symbols per task's nominal control law.
    pub max_symbols: usize,
    /// Minor frames per major cycle (power of two; task periods are drawn
    /// from its divisors, keeping the executive harmonic).
    pub minor_frames: usize,
    /// Slack on top of the derived frame budgets, in percent.
    pub headroom_pct: u64,
    /// Operating modes, in declaration order.
    pub modes: Vec<ModeSpec>,
    /// Generator seed. Task *i* draws from `mix(seed, i)`, so task
    /// identities are independent of the task count (prefix-stable).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            name: "scn".into(),
            tasks: 12,
            min_symbols: 12,
            max_symbols: 32,
            minor_frames: 4,
            headroom_pct: 25,
            modes: default_modes(),
            seed: 0x5CEA,
        }
    }
}

/// The default mode set: nominal, degraded, fault-handling.
#[must_use]
pub fn default_modes() -> Vec<ModeSpec> {
    vec![
        ModeSpec::new("nominal", ModeKind::Nominal),
        ModeSpec::new("degraded", ModeKind::Degraded),
        ModeSpec::new("fault", ModeKind::FaultHandling),
    ]
}

/// Why a [`ScenarioConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Name empty or not an identifier (`[a-z][a-z0-9_]*`-ish).
    BadName {
        /// The offending name.
        name: String,
    },
    /// `tasks` was zero or beyond [`MAX_TASKS`].
    BadTaskCount {
        /// The declared count.
        tasks: usize,
    },
    /// Symbol range empty, inverted, or beyond the fleet ceiling.
    BadSymbolRange {
        /// The declared minimum.
        min: usize,
        /// The declared maximum.
        max: usize,
    },
    /// `minor_frames` not a power of two in `1..=MAX_FRAMES`.
    BadFrameCount {
        /// The declared count.
        frames: usize,
    },
    /// Headroom beyond 1000 % (a typo, not a margin).
    BadHeadroom {
        /// The declared percentage.
        pct: u64,
    },
    /// No modes declared.
    NoModes,
    /// Two modes share a name.
    DuplicateMode {
        /// The repeated name.
        name: String,
    },
    /// A budget override names a mode that does not exist.
    UnknownMode {
        /// The unmatched name.
        name: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadName { name } => {
                write!(f, "scenario/mode name `{name}` is not an identifier")
            }
            ScenarioError::BadTaskCount { tasks } => {
                write!(f, "task count {tasks} outside 1..={MAX_TASKS}")
            }
            ScenarioError::BadSymbolRange { min, max } => {
                write!(f, "bad symbol range {min}..={max}")
            }
            ScenarioError::BadFrameCount { frames } => {
                write!(
                    f,
                    "minor_frames {frames} is not a power of two in 1..={MAX_FRAMES}"
                )
            }
            ScenarioError::BadHeadroom { pct } => write!(f, "headroom {pct}% beyond 1000%"),
            ScenarioError::NoModes => write!(f, "scenario needs at least one mode"),
            ScenarioError::DuplicateMode { name } => write!(f, "duplicate mode `{name}`"),
            ScenarioError::UnknownMode { name } => {
                write!(f, "budget override names unknown mode `{name}`")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase() || c == '_')
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl ScenarioConfig {
    /// Starts a validated builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> ScenarioConfigBuilder {
        ScenarioConfigBuilder {
            cfg: ScenarioConfig::default(),
            overrides: Vec::new(),
        }
    }

    /// Checks the config against the generator's documented domain.
    ///
    /// # Errors
    ///
    /// The first [`ScenarioError`] found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !is_ident(&self.name) {
            return Err(ScenarioError::BadName {
                name: self.name.clone(),
            });
        }
        if self.tasks == 0 || self.tasks > MAX_TASKS {
            return Err(ScenarioError::BadTaskCount { tasks: self.tasks });
        }
        if self.min_symbols < 1
            || self.min_symbols > self.max_symbols
            || self.max_symbols > fleet::MAX_SYMBOLS_CEILING
        {
            return Err(ScenarioError::BadSymbolRange {
                min: self.min_symbols,
                max: self.max_symbols,
            });
        }
        if !self.minor_frames.is_power_of_two() || self.minor_frames > MAX_FRAMES {
            return Err(ScenarioError::BadFrameCount {
                frames: self.minor_frames,
            });
        }
        if self.headroom_pct > 1000 {
            return Err(ScenarioError::BadHeadroom {
                pct: self.headroom_pct,
            });
        }
        if self.modes.is_empty() {
            return Err(ScenarioError::NoModes);
        }
        for (i, mode) in self.modes.iter().enumerate() {
            if !is_ident(&mode.name) {
                return Err(ScenarioError::BadName {
                    name: mode.name.clone(),
                });
            }
            if self.modes[..i].iter().any(|m| m.name == mode.name) {
                return Err(ScenarioError::DuplicateMode {
                    name: mode.name.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Validated builder for [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct ScenarioConfigBuilder {
    cfg: ScenarioConfig,
    overrides: Vec<(String, u64)>,
}

impl ScenarioConfigBuilder {
    /// Sets the scenario name (prefixes every generated identifier).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Sets the task count.
    #[must_use]
    pub fn tasks(mut self, tasks: usize) -> Self {
        self.cfg.tasks = tasks;
        self
    }

    /// Sets the per-task symbol-count range (inclusive on both ends).
    #[must_use]
    pub fn symbols(mut self, min: usize, max: usize) -> Self {
        self.cfg.min_symbols = min;
        self.cfg.max_symbols = max;
        self
    }

    /// Sets the minor frames per major cycle (must be a power of two).
    #[must_use]
    pub fn frames(mut self, frames: usize) -> Self {
        self.cfg.minor_frames = frames;
        self
    }

    /// Sets the budget headroom percentage.
    #[must_use]
    pub fn headroom_pct(mut self, pct: u64) -> Self {
        self.cfg.headroom_pct = pct;
        self
    }

    /// Replaces the mode set.
    #[must_use]
    pub fn modes(mut self, modes: Vec<ModeSpec>) -> Self {
        self.cfg.modes = modes;
        self
    }

    /// Forces `mode`'s frame budget to `cycles` instead of the derived
    /// value — the hook for intentionally over-budget negative tests.
    #[must_use]
    pub fn override_budget(mut self, mode: impl Into<String>, cycles: u64) -> Self {
        self.overrides.push((mode.into(), cycles));
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// The first [`ScenarioError`] found, including overrides that name
    /// modes absent from the mode set.
    pub fn build(mut self) -> Result<ScenarioConfig, ScenarioError> {
        for (name, cycles) in self.overrides {
            let mode = self
                .cfg
                .modes
                .iter_mut()
                .find(|m| m.name == name)
                .ok_or(ScenarioError::UnknownMode { name })?;
            mode.budget_override = Some(cycles);
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One compilation unit of a scenario: a deduplicated task-variant node.
#[derive(Debug, Clone)]
pub struct ScenarioUnit {
    /// Unit label (`node.name()`), unique within the scenario.
    pub name: String,
    /// The generated control law.
    pub node: Node,
    /// Static cost-model estimate in cycles (see [`estimate_node`]).
    pub estimate: u64,
}

/// One periodic task of the cyclic executive.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task name (also the nominal unit's name).
    pub name: String,
    /// Period in minor frames (a power-of-two divisor of the major cycle).
    pub period: usize,
    /// Release offset within the period (`0..period`).
    pub offset: usize,
    /// Per-mode unit index into [`Scenario::units`]; `None` when the mode
    /// sheds the task. Variants that end up structurally identical to the
    /// nominal law share its unit (structure sharing is the dedup).
    pub unit_for_mode: Vec<Option<usize>>,
}

impl Task {
    /// Whether the task releases in `frame` (frames count modulo the
    /// major cycle).
    #[must_use]
    pub fn runs_in(&self, frame: usize) -> bool {
        frame % self.period == self.offset
    }
}

/// A generated scenario: tasks, deduplicated unit variants, and per-mode
/// frame budgets. Pure function of its [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
    units: Vec<ScenarioUnit>,
    tasks: Vec<Task>,
    budgets: Vec<u64>,
}

impl Scenario {
    /// Generates the scenario. Task *i* is a pure function of
    /// `mix(config.seed, i)`, so adding tasks never perturbs existing
    /// ones and shrinking a failing config preserves the survivors.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when the config fails validation.
    pub fn generate(config: &ScenarioConfig) -> Result<Scenario, ScenarioError> {
        config.validate()?;
        let log2h = config.minor_frames.trailing_zeros() as usize;
        let mut units: Vec<ScenarioUnit> = Vec::new();
        let mut tasks = Vec::with_capacity(config.tasks);

        for i in 0..config.tasks {
            let mut rng = Rng::seed_from_u64(rng::mix(config.seed, i as u64));
            let period = 1usize << rng.gen_range(0..=log2h);
            let offset = rng.gen_range(0..period);
            let name = format!("{}_t{i:05}", config.name);
            let nominal =
                fleet::random_node_named(&name, &mut rng, config.min_symbols, config.max_symbols);
            let nominal_idx = units.len();
            units.push(ScenarioUnit {
                name: name.clone(),
                estimate: estimate_node(&nominal),
                node: nominal,
            });

            let mut unit_for_mode = Vec::with_capacity(config.modes.len());
            for mode in &config.modes {
                let variant_name = format!("{name}{}", mode.kind.suffix());
                let idx = match mode.kind {
                    ModeKind::Nominal => Some(nominal_idx),
                    ModeKind::Degraded => {
                        if config.minor_frames > 1 && period == config.minor_frames {
                            // load shedding: housekeeping-rate tasks are
                            // suspended in degraded operation
                            None
                        } else {
                            let variant =
                                variants::degraded(&variant_name, &units[nominal_idx].node);
                            Some(push_variant(&mut units, nominal_idx, variant))
                        }
                    }
                    ModeKind::FaultHandling => {
                        let variant =
                            variants::fault_handling(&variant_name, &units[nominal_idx].node);
                        Some(push_variant(&mut units, nominal_idx, variant))
                    }
                };
                unit_for_mode.push(idx);
            }
            tasks.push(Task {
                name,
                period,
                offset,
                unit_for_mode,
            });
        }

        let budgets = config
            .modes
            .iter()
            .enumerate()
            .map(|(mi, mode)| {
                mode.budget_override.unwrap_or_else(|| {
                    let worst = (0..config.minor_frames)
                        .map(|frame| {
                            EXEC_OVERHEAD
                                + tasks
                                    .iter()
                                    .filter(|t| t.runs_in(frame))
                                    .filter_map(|t| t.unit_for_mode[mi])
                                    .map(|ui| DISPATCH_OVERHEAD + units[ui].estimate)
                                    .sum::<u64>()
                        })
                        .max()
                        .unwrap_or(EXEC_OVERHEAD);
                    worst * (100 + config.headroom_pct) / 100
                })
            })
            .collect();

        Ok(Scenario {
            config: config.clone(),
            units,
            tasks,
            budgets,
        })
    }

    /// The generating config.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The deduplicated compilation units (task variants).
    #[must_use]
    pub fn units(&self) -> &[ScenarioUnit] {
        &self.units
    }

    /// The periodic tasks.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Frame budget of mode `mi`, in cycles.
    #[must_use]
    pub fn budget(&self, mi: usize) -> u64 {
        self.budgets[mi]
    }

    /// Indices of the tasks released in `frame` under mode `mi`.
    #[must_use]
    pub fn frame_tasks(&self, mi: usize, frame: usize) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.runs_in(frame) && t.unit_for_mode[mi].is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total symbol count across all units (the scenario's "node scale"
    /// in ROADMAP terms).
    #[must_use]
    pub fn total_symbols(&self) -> usize {
        self.units.iter().map(|u| u.node.len()).sum()
    }

    /// Lowers the scenario to a [`SweepSpec`] over its deduplicated units.
    /// The caller adds the config/machine axes (defaults apply otherwise)
    /// and runs it through `Pipeline::run_sweep` — the only compilation
    /// path scenarios use.
    #[must_use]
    pub fn to_sweep_spec(&self) -> SweepSpec {
        let mut spec = SweepSpec::new();
        for unit in &self.units {
            spec = spec.unit(SweepUnit::from_source(
                &unit.name,
                unit.node.to_minic(),
                "step",
            ));
        }
        spec
    }

    /// Joins the sweep's per-unit WCET bounds against the scenario's frame
    /// budgets: one [`SchedVerdict`] per (mode, frame, config, machine),
    /// in that deterministic order.
    ///
    /// # Panics
    ///
    /// Panics when `sweep` is missing one of the scenario's units — i.e.
    /// it was not produced from [`Scenario::to_sweep_spec`].
    #[must_use]
    pub fn check(&self, sweep: &SweepResult) -> SchedReport {
        self.check_bounds(sweep.config_labels(), sweep.machine_labels(), |u, c, m| {
            sweep.get(u, c, m).map(vericomp_pipeline::SweepCell::wcet)
        })
    }

    /// [`check`](Scenario::check) against an arbitrary WCET source: the
    /// same verdicts, fed by a `(unit, config, machine) → wcet` lookup
    /// instead of a local [`SweepResult`]. This is how a remote client
    /// rebuilds the schedulability report from a compile-service response
    /// (which carries per-cell bounds, not artifacts) — the resulting
    /// `sched:` lines and digest are bit-identical to the local path.
    ///
    /// # Panics
    ///
    /// Panics when the lookup is missing one of the scenario's units for
    /// a requested (config, machine).
    #[must_use]
    pub fn check_bounds(
        &self,
        configs: &[String],
        machines: &[String],
        mut wcet_of: impl FnMut(&str, &str, &str) -> Option<u64>,
    ) -> SchedReport {
        let mut verdicts = Vec::new();
        for (mi, mode) in self.config.modes.iter().enumerate() {
            for frame in 0..self.config.minor_frames {
                let task_ids = self.frame_tasks(mi, frame);
                for config in configs {
                    for machine in machines {
                        let mut wcet = EXEC_OVERHEAD;
                        for &ti in &task_ids {
                            let ui = self.tasks[ti].unit_for_mode[mi]
                                .expect("frame_tasks filters shed tasks");
                            let unit = &self.units[ui].name;
                            let bound = wcet_of(unit, config, machine).unwrap_or_else(|| {
                                panic!(
                                    "unit `{unit}` missing from sweep ({config}/{machine}); \
                                     run the spec from Scenario::to_sweep_spec"
                                )
                            });
                            wcet += DISPATCH_OVERHEAD + bound;
                        }
                        verdicts.push(SchedVerdict {
                            mode: mode.name.clone(),
                            frame,
                            config: config.clone(),
                            machine: machine.clone(),
                            tasks: task_ids.len(),
                            wcet,
                            budget: self.budgets[mi],
                        });
                    }
                }
            }
        }
        SchedReport {
            scenario: self.config.name.clone(),
            verdicts,
        }
    }

    /// Digest of every unit's generated source, in unit order — pins the
    /// seed → scenario stability guarantee the same way
    /// [`crate::fleet::fleet_digest`] pins the fleet generator.
    #[must_use]
    pub fn source_digest(&self) -> Digest {
        let mut h = Hasher::new();
        h.str(&self.config.name);
        for unit in &self.units {
            h.str(&unit.name);
            h.str(&vericomp_minic::pretty::program_to_c(&unit.node.to_minic()));
        }
        h.finish()
    }
}

fn push_variant(units: &mut Vec<ScenarioUnit>, nominal_idx: usize, variant: Option<Node>) -> usize {
    match variant {
        // structurally unchanged: share the nominal unit
        None => nominal_idx,
        Some(node) => {
            units.push(ScenarioUnit {
                name: node.name().to_owned(),
                estimate: estimate_node(&node),
                node,
            });
            units.len() - 1
        }
    }
}

/// Static per-unit cost model, in cycles. Deliberately pessimistic: rates
/// are calibrated at > 2x the worst measured cycles-per-symbol across
/// every supported machine × pass-config pair (tiny-caches under
/// pattern-O0 tops out near 105 cycles/symbol), so derived budgets stay
/// sound wherever the sweep lands. The scenario property suite enforces
/// this empirically — a generated unit whose analyzed WCET exceeds its
/// estimate is a shrinkable counterexample, not a flake.
#[must_use]
pub fn estimate_node(node: &Node) -> u64 {
    let mut est: u64 = 900;
    for inst in node.instances() {
        est += match &inst.kind {
            Symbol::Acquisition(_) | Symbol::Actuator(_) => 800,
            Symbol::Lookup1dSearch { breakpoints, .. } => 500 + 110 * breakpoints.len() as u64,
            Symbol::Lookup1d { .. } | Symbol::Pid { .. } => 500,
            Symbol::SecondOrderFilter { .. } | Symbol::Integrator { .. } => 420,
            Symbol::RateLimiter(_) | Symbol::Saturation(..) | Symbol::Hysteresis { .. } => 340,
            Symbol::SwitchIf | Symbol::Debounce(_) | Symbol::SrLatch | Symbol::Deadband(_) => 300,
            _ => 240,
        };
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig::builder()
            .tasks(6)
            .symbols(6, 18)
            .frames(4)
            .seed(seed)
            .build()
            .expect("valid config")
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            ScenarioConfig::builder().name("Bad Name").build(),
            Err(ScenarioError::BadName {
                name: "Bad Name".into()
            })
        );
        assert_eq!(
            ScenarioConfig::builder().tasks(0).build(),
            Err(ScenarioError::BadTaskCount { tasks: 0 })
        );
        assert_eq!(
            ScenarioConfig::builder().symbols(9, 5).build(),
            Err(ScenarioError::BadSymbolRange { min: 9, max: 5 })
        );
        assert_eq!(
            ScenarioConfig::builder().frames(3).build(),
            Err(ScenarioError::BadFrameCount { frames: 3 })
        );
        assert_eq!(
            ScenarioConfig::builder().modes(vec![]).build(),
            Err(ScenarioError::NoModes)
        );
        assert_eq!(
            ScenarioConfig::builder()
                .modes(vec![
                    ModeSpec::new("m", ModeKind::Nominal),
                    ModeSpec::new("m", ModeKind::Degraded),
                ])
                .build(),
            Err(ScenarioError::DuplicateMode { name: "m".into() })
        );
        assert_eq!(
            ScenarioConfig::builder()
                .override_budget("ghost", 1)
                .build(),
            Err(ScenarioError::UnknownMode {
                name: "ghost".into()
            })
        );
        let over = ScenarioConfig::builder()
            .override_budget("degraded", 1)
            .build()
            .expect("valid override");
        assert_eq!(over.modes[1].budget_override, Some(1));
    }

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let a = Scenario::generate(&small(7)).unwrap();
        let b = Scenario::generate(&small(7)).unwrap();
        assert_eq!(a.source_digest(), b.source_digest());
        assert_ne!(
            a.source_digest(),
            Scenario::generate(&small(8)).unwrap().source_digest()
        );

        // task i is a pure function of mix(seed, i): growing the task set
        // leaves existing tasks' units byte-identical
        let grown = Scenario::generate(&ScenarioConfig {
            tasks: 9,
            ..small(7)
        })
        .unwrap();
        for (ta, tg) in a.tasks().iter().zip(grown.tasks()) {
            assert_eq!(
                (ta.name.as_str(), ta.period, ta.offset),
                (tg.name.as_str(), tg.period, tg.offset)
            );
            for (ua, ug) in ta.unit_for_mode.iter().zip(&tg.unit_for_mode) {
                match (ua, ug) {
                    (Some(ua), Some(ug)) => assert_eq!(
                        a.units()[*ua].node.to_minic(),
                        grown.units()[*ug].node.to_minic()
                    ),
                    (None, None) => {}
                    _ => panic!("shedding diverged when the task set grew"),
                }
            }
        }
    }

    #[test]
    fn modes_share_structure_and_shed_housekeeping_tasks() {
        let scn = Scenario::generate(&ScenarioConfig {
            tasks: 20,
            ..small(3)
        })
        .unwrap();
        let mut shed = 0;
        let mut shared = 0;
        for task in scn.tasks() {
            let nominal = task.unit_for_mode[0].expect("nominal never sheds");
            // degraded: housekeeping-rate tasks shed, others simplified
            match task.unit_for_mode[1] {
                None => {
                    assert_eq!(task.period, scn.config().minor_frames);
                    shed += 1;
                }
                Some(dg) => {
                    if dg == nominal {
                        shared += 1;
                    } else {
                        assert!(scn.units()[dg].name.ends_with("_dg"));
                        assert!(
                            scn.units()[dg].estimate <= scn.units()[nominal].estimate,
                            "{}: degraded law must not cost more",
                            task.name
                        );
                    }
                }
            }
            // fault-handling: adds monitors, so strictly more symbols
            let fh = task.unit_for_mode[2].expect("fault mode never sheds");
            if fh != nominal {
                assert!(scn.units()[fh].name.ends_with("_fh"));
                assert!(scn.units()[fh].node.len() > scn.units()[nominal].node.len());
                let src = vericomp_minic::pretty::program_to_c(&scn.units()[fh].node.to_minic());
                assert!(src.contains("_fl"), "{}: no fault flag output", task.name);
            }
        }
        assert!(shed > 0, "no housekeeping-rate task was shed");
        let _ = shared;
        // unit labels are unique (the sweep requires it)
        let mut names: Vec<_> = scn.units().iter().map(|u| u.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scn.units().len(), "duplicate unit labels");
    }

    #[test]
    fn budgets_cover_the_estimate_with_headroom() {
        let scn = Scenario::generate(&small(11)).unwrap();
        for (mi, _) in scn.config().modes.iter().enumerate() {
            let worst = (0..scn.config().minor_frames)
                .map(|f| {
                    EXEC_OVERHEAD
                        + scn
                            .frame_tasks(mi, f)
                            .iter()
                            .map(|&ti| {
                                let ui = scn.tasks()[ti].unit_for_mode[mi].unwrap();
                                DISPATCH_OVERHEAD + scn.units()[ui].estimate
                            })
                            .sum::<u64>()
                })
                .max()
                .unwrap();
            assert_eq!(scn.budget(mi), worst * 125 / 100);
        }
    }

    #[test]
    fn sweep_spec_lowering_covers_every_unit() {
        let scn = Scenario::generate(&small(5)).unwrap();
        let spec = scn.to_sweep_spec();
        assert_eq!(spec.units().len(), scn.units().len());
        for (su, u) in spec.units().iter().zip(scn.units()) {
            assert_eq!(su.name, u.name);
        }
    }
}

/// Property-test generators over [`ScenarioConfig`], with structural
/// shrinking (fewer tasks, shorter major cycle, fewer modes, smaller
/// laws) so counterexamples come back minimal.
pub mod gens {
    use super::{default_modes, ScenarioConfig};
    use crate::prop::Gen;

    /// Small scenario configs sized for debug-mode property runs: 1–8
    /// tasks, laws of 4–24 symbols, major cycles up to 8 frames, all
    /// three default modes.
    #[must_use]
    pub fn small() -> Gen<ScenarioConfig> {
        Gen::new(|rng| ScenarioConfig {
            name: "pscn".into(),
            tasks: rng.gen_range(1..=8),
            min_symbols: 4,
            max_symbols: rng.gen_range(8..=24),
            minor_frames: 1 << rng.gen_range(0..=3u32),
            headroom_pct: rng.gen_range(10..=40),
            modes: default_modes(),
            seed: rng.next_u64(),
        })
        .with_shrink(shrink)
    }

    fn shrink(cfg: &ScenarioConfig) -> Vec<ScenarioConfig> {
        let mut out = Vec::new();
        if cfg.tasks > 1 {
            out.push(ScenarioConfig {
                tasks: cfg.tasks / 2,
                ..cfg.clone()
            });
            out.push(ScenarioConfig {
                tasks: cfg.tasks - 1,
                ..cfg.clone()
            });
        }
        if cfg.minor_frames > 1 {
            out.push(ScenarioConfig {
                minor_frames: cfg.minor_frames / 2,
                ..cfg.clone()
            });
        }
        if cfg.modes.len() > 1 {
            out.push(ScenarioConfig {
                modes: cfg.modes[..cfg.modes.len() - 1].to_vec(),
                ..cfg.clone()
            });
        }
        if cfg.max_symbols > cfg.min_symbols {
            out.push(ScenarioConfig {
                max_symbols: (cfg.min_symbols + cfg.max_symbols) / 2,
                ..cfg.clone()
            });
        }
        if cfg.seed != 0 {
            out.push(ScenarioConfig {
                seed: cfg.seed / 2,
                ..cfg.clone()
            });
        }
        out
    }
}
