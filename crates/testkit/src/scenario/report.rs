//! Schedulability verdict report: the scenario's joint property decided
//! against the sweep's WCET bounds, rendered and digested in a fixed
//! order so the report is bit-identical across `--jobs` counts.

use std::fmt::Write as _;

use vericomp_pipeline::hash::{Digest, Hasher};

/// One frame-level schedulability verdict: does every task released in
/// `frame` of `mode`, compiled under `config` for `machine`, fit the
/// mode's minor-cycle budget?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedVerdict {
    /// Mode name.
    pub mode: String,
    /// Minor frame index within the major cycle.
    pub frame: usize,
    /// Pass-config label of the sweep column.
    pub config: String,
    /// Machine label of the sweep column.
    pub machine: String,
    /// Tasks released in the frame under this mode.
    pub tasks: usize,
    /// Frame WCET: executive overhead plus, per task, dispatch overhead
    /// and the task's analyzed (not estimated) WCET bound.
    pub wcet: u64,
    /// The mode's minor-cycle budget.
    pub budget: u64,
}

impl SchedVerdict {
    /// Whether the frame fits its budget.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.wcet <= self.budget
    }
}

/// The scenario-level schedulability report: every [`SchedVerdict`] in
/// (mode, frame, config, machine) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedReport {
    /// Scenario name.
    pub scenario: String,
    /// Verdicts in deterministic order.
    pub verdicts: Vec<SchedVerdict>,
}

impl SchedReport {
    /// Whether every frame of every mode fits on every sweep column.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.verdicts.iter().all(SchedVerdict::feasible)
    }

    /// Number of over-budget verdicts.
    #[must_use]
    pub fn infeasible_count(&self) -> usize {
        self.verdicts.iter().filter(|v| !v.feasible()).count()
    }

    /// The over-budget verdicts, in report order.
    pub fn infeasible(&self) -> impl Iterator<Item = &SchedVerdict> {
        self.verdicts.iter().filter(|v| !v.feasible())
    }

    /// Digest over every verdict field, in report order — bit-identical
    /// across job counts because the order is a pure function of the
    /// scenario and the sweep axes.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        h.str(&self.scenario);
        for v in &self.verdicts {
            h.str(&v.mode)
                .u64(v.frame as u64)
                .str(&v.config)
                .str(&v.machine)
                .u64(v.tasks as u64)
                .u64(v.wcet)
                .u64(v.budget)
                .u64(u64::from(v.feasible()));
        }
        h.finish()
    }

    /// Renders the report as grep-friendly `sched:` lines — one per
    /// verdict plus a trailing summary — ending with a newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.verdicts {
            let state = if v.feasible() {
                "FITS".to_owned()
            } else {
                format!("OVER by {}", v.wcet - v.budget)
            };
            writeln!(
                out,
                "sched: {} mode={} frame={} config={} machine={} tasks={} wcet={} budget={} {state}",
                self.scenario, v.mode, v.frame, v.config, v.machine, v.tasks, v.wcet, v.budget
            )
            .expect("String write is infallible");
        }
        writeln!(
            out,
            "sched: {} verdicts={} infeasible={}",
            self.scenario,
            self.verdicts.len(),
            self.infeasible_count()
        )
        .expect("String write is infallible");
        out
    }
}
