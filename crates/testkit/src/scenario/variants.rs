//! Mode-variant derivation: nominal → degraded / fault-handling control
//! laws, by post-processing a validated node's instance list. Variants
//! share the nominal law's structure — only the symbols a mode is about
//! are touched — and a derivation that changes nothing returns `None` so
//! the scenario reuses the nominal compilation unit (structural dedup).

use vericomp_dataflow::node::{Node, SymId, SymbolInstance};
use vericomp_dataflow::symbol::Symbol;
use vericomp_minic::ast::Cmp;

/// Degraded-mode law: interpolation tables truncated to their cheapest
/// legal sizes, PID demoted to its proportional term, second-order IIR
/// sections demoted to first-order low-passes. Returns `None` when the
/// nominal law contains none of those symbols.
pub fn degraded(name: &str, nominal: &Node) -> Option<Node> {
    let mut instances: Vec<SymbolInstance> = nominal.instances().to_vec();
    let mut changed = false;
    for inst in &mut instances {
        match &inst.kind {
            Symbol::Lookup1dSearch {
                breakpoints,
                values,
            } if breakpoints.len() > 3 => {
                inst.kind = Symbol::Lookup1dSearch {
                    breakpoints: breakpoints[..3].to_vec(),
                    values: values[..3].to_vec(),
                };
                changed = true;
            }
            Symbol::Lookup1d { table, x0, dx } if table.len() > 4 => {
                inst.kind = Symbol::Lookup1d {
                    table: table[..4].to_vec(),
                    x0: *x0,
                    dx: *dx,
                };
                changed = true;
            }
            Symbol::Pid { kp, .. } => {
                inst.kind = Symbol::Gain(*kp);
                changed = true;
            }
            Symbol::SecondOrderFilter { b0, .. } => {
                inst.kind = Symbol::FirstOrderFilter(b0.abs().clamp(0.05, 0.95));
                changed = true;
            }
            _ => {}
        }
    }
    if !changed {
        return None;
    }
    Some(validated(name, instances))
}

/// Fault-handling law: the nominal law plus out-of-range monitors on up
/// to two float outputs — a `> 1e6` comparator debounced over two cycles,
/// latched to a `<output>_fl` boolean flag. Returns `None` when the law
/// has no float outputs to monitor.
pub fn fault_handling(name: &str, nominal: &Node) -> Option<Node> {
    let mut instances: Vec<SymbolInstance> = nominal.instances().to_vec();
    let monitored: Vec<(SymId, String)> = instances
        .iter()
        .filter_map(|inst| match &inst.kind {
            Symbol::Output(out) => Some((inst.inputs[0], out.clone())),
            _ => None,
        })
        .take(2)
        .collect();
    if monitored.is_empty() {
        return None;
    }
    for (wire, out) in monitored {
        let cmp = SymId(instances.len());
        instances.push(SymbolInstance {
            kind: Symbol::CmpConst(Cmp::Gt, 1e6),
            inputs: vec![wire],
        });
        let confirmed = SymId(instances.len());
        instances.push(SymbolInstance {
            kind: Symbol::Debounce(2),
            inputs: vec![cmp],
        });
        instances.push(SymbolInstance {
            kind: Symbol::OutputB(format!("{out}_fl")),
            inputs: vec![confirmed],
        });
    }
    Some(validated(name, instances))
}

fn validated(name: &str, instances: Vec<SymbolInstance>) -> Node {
    Node::validated(name.to_owned(), instances).expect("variant derivation preserves node validity")
}
