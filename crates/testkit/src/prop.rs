//! A minimal, hermetic property-testing harness (proptest stand-in).
//!
//! Design goals, in order: **replayability** (every case is derived from a
//! printed `u64` seed), **zero dependencies**, and **useful shrinking** for
//! the shapes this repository actually tests (integers, floats, vectors,
//! and custom ASTs via an explicit shrink function).
//!
//! ```
//! use vericomp_testkit::prop::{check, gens, Config};
//!
//! let pairs = gens::pair(gens::any_i32(), gens::any_i32());
//! check("add_commutes", &Config::with_cases(200), &pairs, |&(a, b)| {
//!     if a.wrapping_add(b) == b.wrapping_add(a) {
//!         Ok(())
//!     } else {
//!         Err("not commutative".into())
//!     }
//! });
//! ```
//!
//! # Conventions
//!
//! * `TESTKIT_CASES=<n>` overrides the per-property case count (scale up
//!   for soak runs, down for smoke runs).
//! * `TESTKIT_SEED=<u64|0xhex>` overrides the base seed. Case 0 runs on
//!   the base seed itself, so `TESTKIT_SEED=<failing seed>
//!   TESTKIT_CASES=1` replays a reported failure exactly.
//! * A property configured with a regression file re-runs every `tc <seed>`
//!   entry before generating novel cases, and appends the failing seed on
//!   any new failure. The parser also ingests proptest's legacy
//!   `.proptest-regressions` format (`cc <hash> # shrinks to …` lines);
//!   those hashes are proptest-internal and not replayable here, so they
//!   are preserved but skipped — the shrunk cases they describe are pinned
//!   as explicit test cases instead (see
//!   `crates/core/tests/folding_differential.rs`).

use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::rng::{mix, Rng};

/// Configuration of one property run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of novel cases (before `TESTKIT_CASES` override).
    pub cases: u32,
    /// Base seed; case `i` uses the base itself for `i == 0` and a derived
    /// sub-seed for `i > 0`.
    pub seed: u64,
    /// Maximum number of candidate evaluations during shrinking.
    pub max_shrink_evals: u32,
    /// Optional regression-seed file (proptest-regressions compatible).
    pub regressions: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x5EED_CC20_1101_F11C,
            max_shrink_evals: 4096,
            regressions: None,
        }
    }
}

impl Config {
    /// A config with the given case count and defaults elsewhere.
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Attaches a regression-seed file.
    #[must_use]
    pub fn with_regressions(mut self, path: impl Into<PathBuf>) -> Config {
        self.regressions = Some(path.into());
        self
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("TESTKIT_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("TESTKIT_CASES={v} is not a number")),
            Err(_) => self.cases,
        }
    }

    fn effective_seed(&self) -> u64 {
        match std::env::var("TESTKIT_SEED") {
            Ok(v) => parse_seed(&v).unwrap_or_else(|| panic!("TESTKIT_SEED={v} is not a seed")),
            Err(_) => self.seed,
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A value generator with an optional shrinker.
///
/// Unlike proptest's integrated value trees, shrinking here operates on the
/// generated *value* — simpler, and sufficient for integers, vectors and
/// explicit AST shrinkers.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut Rng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            sample: Rc::clone(&self.sample),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sampling function (no shrinking).
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Gen<T> {
        Gen {
            sample: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attaches a shrink function producing *strictly simpler* candidates.
    #[must_use]
    pub fn with_shrink(self, s: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            sample: self.sample,
            shrink: Rc::new(s),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Rng) -> T {
        (self.sample)(rng)
    }

    /// Produces shrink candidates for a value.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value (shrinking does not survive a map — attach
    /// a new shrinker with [`Gen::with_shrink`] if needed).
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen::new(move |rng| f((sample)(rng)))
    }
}

/// Ready-made generators.
pub mod gens {
    use super::{shrink, Gen};
    use crate::rng::Rng;

    /// Constant generator.
    pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
        Gen::new(move |_| v.clone())
    }

    /// Any `i32` (full range), shrinking toward zero.
    pub fn any_i32() -> Gen<i32> {
        Gen::new(|rng| rng.next_u64() as i32).with_shrink(|&v| shrink::int(i64::from(v)))
    }

    /// Any `u32`, shrinking toward zero.
    pub fn any_u32() -> Gen<u32> {
        Gen::new(Rng::next_u32).with_shrink(|&v| shrink::uint(u64::from(v)))
    }

    /// Any `u64`, shrinking toward zero.
    pub fn any_u64() -> Gen<u64> {
        Gen::new(Rng::next_u64).with_shrink(|&v| shrink::uint(v))
    }

    /// Any `i16`, shrinking toward zero.
    pub fn any_i16() -> Gen<i16> {
        Gen::new(|rng| rng.next_u64() as i16).with_shrink(|&v| shrink::int(i64::from(v)))
    }

    /// Any `u16`, shrinking toward zero.
    pub fn any_u16() -> Gen<u16> {
        Gen::new(|rng| rng.next_u64() as u16).with_shrink(|&v| shrink::uint(u64::from(v)))
    }

    /// Any bit pattern as `f64` — includes NaNs, infinities and subnormals
    /// with realistic probability. Shrinks toward simple finite values.
    pub fn any_f64() -> Gen<f64> {
        Gen::new(|rng| f64::from_bits(rng.next_u64())).with_shrink(|&v| shrink::float(v))
    }

    /// `i32` in `lo..hi`, shrinking toward zero within the range.
    pub fn i32_range(lo: i32, hi: i32) -> Gen<i32> {
        Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
            shrink::int_raw(i64::from(v))
                .into_iter()
                .filter(|&c| (i64::from(lo)..i64::from(hi)).contains(&c))
                .map(|c| c as i32)
                .collect()
        })
    }

    /// `u32` in `lo..hi`, shrinking toward `lo` within the range.
    pub fn u32_range(lo: u32, hi: u32) -> Gen<u32> {
        Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
            shrink::uint_raw(u64::from(v))
                .into_iter()
                .filter(|&c| (u64::from(lo)..u64::from(hi)).contains(&c))
                .map(|c| c as u32)
                .collect()
        })
    }

    /// `u8` in `lo..hi`, shrinking toward `lo` within the range.
    pub fn u8_range(lo: u8, hi: u8) -> Gen<u8> {
        Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
            shrink::uint_raw(u64::from(v))
                .into_iter()
                .filter(|&c| (u64::from(lo)..u64::from(hi)).contains(&c))
                .map(|c| c as u8)
                .collect()
        })
    }

    /// Finite `f64` in `lo..hi` (no shrinking — the range may exclude the
    /// simple values shrinking would steer toward).
    pub fn f64_range(lo: f64, hi: f64) -> Gen<f64> {
        Gen::new(move |rng| rng.gen_range(lo..hi))
    }

    /// Uniform choice among alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn one_of<T: 'static>(options: Vec<Gen<T>>) -> Gen<T> {
        assert!(!options.is_empty(), "one_of needs at least one option");
        let shrinks: Vec<Gen<T>> = options.clone();
        Gen::new(move |rng| {
            let i = rng.gen_range(0..options.len());
            options[i].sample(rng)
        })
        .with_shrink(move |v| {
            // union of the alternatives' shrinkers: candidates not derived
            // from v's actual alternative are harmless extras, because the
            // runner re-checks every candidate against the property
            shrinks.iter().flat_map(|g| g.shrink(v)).collect()
        })
    }

    /// A vector of `len_lo..len_hi` elements. Shrinks by removing chunks
    /// and elements (never below `len_lo`), then element-wise.
    ///
    /// # Panics
    ///
    /// Panics on an empty length range.
    pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, len_lo: usize, len_hi: usize) -> Gen<Vec<T>> {
        assert!(len_lo < len_hi, "empty length range");
        let e = elem.clone();
        Gen::new(move |rng| {
            let n = rng.gen_range(len_lo..len_hi);
            (0..n).map(|_| e.sample(rng)).collect()
        })
        .with_shrink(move |v: &Vec<T>| shrink::vec(v, len_lo, &|x| elem.shrink(x)))
    }

    /// Pairs two generators; shrinks each side independently.
    pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
        let (sa, sb) = (a.clone(), b.clone());
        Gen::new(move |rng| (a.sample(rng), b.sample(rng))).with_shrink(move |(x, y)| {
            let mut out: Vec<(A, B)> = sa.shrink(x).into_iter().map(|x2| (x2, y.clone())).collect();
            out.extend(sb.shrink(y).into_iter().map(|y2| (x.clone(), y2)));
            out
        })
    }

    /// Recursive generator: `depth` levels where each inner level picks the
    /// leaf or one more application of `branch` — the `prop_recursive`
    /// analog.
    pub fn recursive<T: 'static>(
        leaf: Gen<T>,
        depth: u32,
        branch: impl Fn(Gen<T>) -> Gen<T>,
    ) -> Gen<T> {
        let mut g = leaf.clone();
        for _ in 0..depth {
            let inner = branch(g);
            g = one_of(vec![leaf.clone(), inner]);
        }
        g
    }
}

/// Value-level shrink candidate producers.
pub mod shrink {
    /// Signed integers toward zero: the zero itself, halving, the
    /// off-by-one step, and the sign flip for negatives. Ordered most
    /// aggressive first — the greedy runner takes the first candidate that
    /// still fails, so ordering is what makes shrinking converge fast.
    #[must_use]
    pub fn int_raw(v: i64) -> Vec<i64> {
        let mut out: Vec<i64> = Vec::new();
        if v != 0 {
            out.push(0);
            out.push(v / 2);
            if v < 0 {
                out.push(-v); // prefer positive counterexamples
            }
            out.push(v - v.signum());
        }
        let mut seen: Vec<i64> = Vec::new();
        out.retain(|&c| {
            let fresh = c != v && !seen.contains(&c);
            seen.push(c);
            fresh
        });
        out
    }

    /// [`int_raw`] converted into any narrower integer type.
    #[must_use]
    pub fn int<T: TryFrom<i64>>(v: i64) -> Vec<T> {
        int_raw(v)
            .into_iter()
            .filter_map(|c| T::try_from(c).ok())
            .collect()
    }

    /// Unsigned integers toward zero, most aggressive candidates first.
    #[must_use]
    pub fn uint_raw(v: u64) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        if v != 0 {
            out.push(0);
            out.push(v / 2);
            out.push(v - 1);
        }
        let mut seen: Vec<u64> = Vec::new();
        out.retain(|&c| {
            let fresh = c != v && !seen.contains(&c);
            seen.push(c);
            fresh
        });
        out
    }

    /// [`uint_raw`] converted into any narrower integer type.
    #[must_use]
    pub fn uint<T: TryFrom<u64>>(v: u64) -> Vec<T> {
        uint_raw(v)
            .into_iter()
            .filter_map(|c| T::try_from(c).ok())
            .collect()
    }

    /// Floats toward simple finite values.
    #[must_use]
    pub fn float(v: f64) -> Vec<f64> {
        if v == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0, 1.0, -1.0];
        if v.is_finite() {
            out.push(v / 2.0);
            out.push(v.trunc());
        }
        out.retain(|&c| c.to_bits() != v.to_bits());
        out.dedup_by(|a, b| a.to_bits() == b.to_bits());
        out
    }

    /// Vectors: drop the back half, drop single elements, shrink elements
    /// in place — never shrinking below `min_len`.
    #[must_use]
    pub fn vec<T: Clone>(v: &[T], min_len: usize, elem: &dyn Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = Vec::new();
        if v.len() > min_len {
            let half = (v.len() / 2).max(min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            // drop each element in turn (bounded for long vectors)
            for i in 0..v.len().min(16) {
                let mut w = v.to_vec();
                w.remove(i);
                if w.len() >= min_len {
                    out.push(w);
                }
            }
        }
        // shrink each element in place (bounded)
        for i in 0..v.len().min(16) {
            for cand in elem(&v[i]) {
                let mut w = v.to_vec();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

/// A parsed regression file (compatible with proptest's format).
#[derive(Debug, Default, Clone)]
pub struct Regressions {
    /// Replayable testkit seeds (`tc <seed>` lines).
    pub seeds: Vec<u64>,
    /// Count of legacy proptest `cc <hash>` entries (not replayable here).
    pub legacy: usize,
}

impl Regressions {
    /// Parses the file content; unknown lines are ignored.
    #[must_use]
    pub fn parse(text: &str) -> Regressions {
        let mut r = Regressions::default();
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("tc ") {
                let token = rest.split_whitespace().next().unwrap_or("");
                if let Some(seed) = parse_seed(token) {
                    r.seeds.push(seed);
                }
            } else if line.starts_with("cc ") {
                r.legacy += 1;
            }
        }
        r
    }

    /// Loads a regression file, tolerating absence.
    #[must_use]
    pub fn load(path: &Path) -> Regressions {
        match fs::read_to_string(path) {
            Ok(text) => Regressions::parse(&text),
            Err(_) => Regressions::default(),
        }
    }
}

fn append_regression(path: &Path, seed: u64, name: &str) {
    let header = "\
# Seeds for failure cases the testkit property harness has found in the\n\
# past. `tc <seed>` entries are re-run before any novel cases; legacy\n\
# proptest `cc <hash>` entries are preserved but not replayable. Check\n\
# this file in to source control.\n";
    let exists = path.exists();
    let res = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| {
            if !exists {
                f.write_all(header.as_bytes())?;
            }
            writeln!(f, "tc 0x{seed:016x} # {name}")
        });
    if let Err(e) = res {
        eprintln!("testkit: could not record regression seed in {path:?}: {e}");
    }
}

/// Runs a property over generated cases; panics with a replayable seed on
/// the first (shrunk) counterexample.
///
/// # Panics
///
/// Panics when the property fails; the message contains the case seed, the
/// original and shrunk counterexamples, and replay instructions.
pub fn check<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let cases = cfg.effective_cases();
    let base = cfg.effective_seed();

    // regression seeds first — exactly proptest's discipline
    if let Some(path) = &cfg.regressions {
        let reg = Regressions::load(path);
        for &seed in &reg.seeds {
            run_one(name, cfg, gen, &prop, seed, None, "regression");
        }
    }

    for i in 0..cases {
        // case 0 runs the base seed itself, so TESTKIT_SEED=<reported>
        // TESTKIT_CASES=1 is an exact replay
        let case_seed = if i == 0 {
            base
        } else {
            mix(base, u64::from(i))
        };
        run_one(
            name,
            cfg,
            gen,
            &prop,
            case_seed,
            cfg.regressions.as_deref(),
            "case",
        );
    }
}

/// Re-runs the single case derived from `case_seed` (the replay entry
/// point: this is what a printed failure seed reproduces).
pub fn replay<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
    case_seed: u64,
) {
    run_one(name, cfg, gen, &prop, case_seed, None, "replay");
}

fn run_one<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    case_seed: u64,
    record: Option<&Path>,
    kind: &str,
) {
    let mut rng = Rng::seed_from_u64(case_seed);
    let value = gen.sample(&mut rng);
    let Err(err) = prop(&value) else { return };

    // greedy shrink: take the first failing candidate, repeat
    let mut current = value;
    let mut current_err = err;
    let mut evals = 0u32;
    'outer: while evals < cfg.max_shrink_evals {
        for cand in gen.shrink(&current) {
            evals += 1;
            if evals >= cfg.max_shrink_evals {
                break 'outer;
            }
            if let Err(e) = prop(&cand) {
                current = cand;
                current_err = e;
                continue 'outer;
            }
        }
        break;
    }

    if let Some(path) = record {
        append_regression(path, case_seed, name);
    }
    panic!(
        "property `{name}` failed on {kind} seed 0x{case_seed:016x}\n\
         minimal counterexample (after {evals} shrink evals): {current:?}\n\
         error: {current_err}\n\
         replay: TESTKIT_SEED=0x{case_seed:016x} TESTKIT_CASES=1 cargo test …"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = std::cell::Cell::new(0u32);
        let cfg = Config::with_cases(50);
        check("count", &cfg, &gens::any_u32(), |_| {
            n.set(n.get() + 1);
            Ok(())
        });
        assert_eq!(n.get(), cfg.effective_cases());
    }

    #[test]
    fn failing_property_shrinks_to_minimal_int() {
        let res = std::panic::catch_unwind(|| {
            let cfg = Config::with_cases(200);
            check("ge100", &cfg, &gens::any_i32(), |&v| {
                if v.unsigned_abs() < 100 {
                    Ok(())
                } else {
                    Err(format!("|{v}| >= 100"))
                }
            });
        });
        let msg = *res.expect_err("must fail").downcast::<String>().unwrap();
        // greedy halving toward zero lands exactly on the boundary
        assert!(
            msg.contains("counterexample") && (msg.contains(": 100") || msg.contains(": -100")),
            "unexpected shrink result: {msg}"
        );
    }

    #[test]
    fn vec_shrinking_reaches_small_witness() {
        let res = std::panic::catch_unwind(|| {
            let cfg = Config::with_cases(100);
            let gen = gens::vec_of(gens::u32_range(0, 1000), 1, 50);
            check("no_big_elem", &cfg, &gen, |v| {
                if v.iter().all(|&x| x < 900) {
                    Ok(())
                } else {
                    Err("contains big element".into())
                }
            });
        });
        let msg = *res.expect_err("must fail").downcast::<String>().unwrap();
        // a minimal witness is a single element at the boundary
        assert!(msg.contains("[900]"), "not shrunk to [900]: {msg}");
    }

    #[test]
    fn replay_reproduces_case_deterministically() {
        // find a failing seed, then verify replay reports exactly it
        let mut failing = None;
        for i in 0..64 {
            let seed = mix(1234, i);
            let v = gens::any_u64().sample(&mut Rng::seed_from_u64(seed));
            if v % 3 == 0 {
                failing = Some((seed, v));
                break;
            }
        }
        let (seed, v) = failing.expect("a third of seeds fail");
        let res = std::panic::catch_unwind(move || {
            replay(
                "mod3",
                &Config::default(),
                &gens::any_u64(),
                |&x| {
                    if x % 3 == 0 {
                        Err(format!("{x} divisible"))
                    } else {
                        Ok(())
                    }
                },
                seed,
            );
        });
        let msg = *res.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains(&format!("0x{seed:016x}")), "{msg}");
        // the original (pre-shrink) value comes from the same stream
        let again = gens::any_u64().sample(&mut Rng::seed_from_u64(seed));
        assert_eq!(v, again);
    }

    #[test]
    fn regression_file_roundtrip_and_legacy_ingestion() {
        let text = "# comment\n\
                    cc a398267d86bbba07 # shrinks to e = …\n\
                    tc 0x00000000000000ff # float_folding\n\
                    tc 42 # decimal form\n";
        let r = Regressions::parse(text);
        assert_eq!(r.legacy, 1);
        assert_eq!(r.seeds, vec![0xff, 42]);
    }

    #[test]
    fn failures_append_to_regression_file() {
        let dir = std::env::temp_dir().join("vericomp-testkit-prop-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("reg-{}.txt", std::process::id()));
        let _ = fs::remove_file(&path);
        let res = std::panic::catch_unwind({
            let path = path.clone();
            move || {
                let cfg = Config::with_cases(5).with_regressions(path);
                check("always_fails", &cfg, &gens::any_u32(), |_| Err("no".into()));
            }
        });
        assert!(res.is_err());
        let reg = Regressions::load(&path);
        assert_eq!(reg.seeds.len(), 1, "one seed recorded");
        let _ = fs::remove_file(&path);
    }
}
