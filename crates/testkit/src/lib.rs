//! `vericomp-testkit` — the repository's hermetic testing toolkit.
//!
//! Replaces the external `rand`, `proptest` and `criterion` dev-dependency
//! surface with small in-repo equivalents, so `cargo build && cargo test`
//! works fully offline with path-only dependencies:
//!
//! * [`rng`] — seedable SplitMix64 / xoshiro256\*\* PRNG with the slice of
//!   the `rand` API the codebase used (`seed_from_u64`, `gen_range`,
//!   `gen_bool`).
//! * [`prop`] — a minimal property-testing harness: generator combinators,
//!   a run loop with greedy shrinking, `TESTKIT_CASES` / `TESTKIT_SEED`
//!   environment overrides, and a persisted-regression-seed file format
//!   that also ingests legacy `proptest-regressions` files.
//! * [`fleet`] — the seeded random flight-control workload generator
//!   (moved here from `vericomp-dataflow`, which keeps only the curated
//!   `named_suite`), with a validated config builder and a golden-digest
//!   pinned seed → fleet stability guarantee.
//! * [`scenario`] — the scenario suite: generated multi-rate cyclic
//!   executives with operating modes (nominal/degraded/fault-handling)
//!   and declarative per-frame WCET-budget properties, lowered to
//!   `SweepSpec`s and decided against `run_sweep` bounds into a
//!   deterministic schedulability report.
//! * [`bench`] — a plain-`Instant` benchmark harness emitting
//!   `BENCH_<group>.json` machine-readable summaries.
//! * [`oracle`] — the cross-layer differential fuzz oracle behind the
//!   `fuzz_pipeline` binary: random dataflow nodes through
//!   lower → optimize → regalloc → schedule → encode → decode under all
//!   four compiler configurations, cross-checking interpreter vs.
//!   simulator bit-exactly (NaN/±inf included), translation-validator
//!   acceptance, binary round-trips, and WCET-bound domination.
//!
//! Every random artifact in the repository is replayable from a single
//! `u64` seed; failures print the seed and the environment incantation
//! that reproduces them.

#![warn(missing_docs)]

pub mod bench;
pub mod fleet;
pub mod oracle;
pub mod prop;
pub mod rng;
pub mod scenario;
