//! Seeded random workload fleets for the Table 1 statistics, fuzzing and
//! soak tests (moved here from `vericomp-dataflow` so the dataflow crate
//! stays dependency-free; the curated `named_suite` remains in
//! `vericomp_dataflow::fleet`).
//!
//! The symbol census is modeled on flight-control laws: dominated by
//! gains, sums and filters, with a sprinkling of saturations, limiters,
//! lookups, comparators and boolean logic.

use vericomp_dataflow::node::{FWire, Node, NodeBuilder};
use vericomp_minic::ast::Cmp;

use crate::rng::Rng;

/// Configuration of the random fleet generator.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Minimum symbols per node.
    pub min_symbols: usize,
    /// Maximum symbols per node.
    pub max_symbols: usize,
    /// RNG seed (the fleet is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 100,
            min_symbols: 20,
            max_symbols: 80,
            seed: 0xF11C,
        }
    }
}

/// Generates a deterministic random fleet with a symbol census modeled on
/// flight-control laws (dominated by gains/sums/filters).
pub fn random_fleet(cfg: &FleetConfig) -> Vec<Node> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    (0..cfg.nodes)
        .map(|i| random_node(&format!("node{i:03}"), &mut rng, cfg))
        .collect()
}

fn random_node(name: &str, rng: &mut Rng, cfg: &FleetConfig) -> Node {
    let mut b = NodeBuilder::new(name);
    let target = rng.gen_range(cfg.min_symbols..=cfg.max_symbols);
    let mut fw: Vec<FWire> = Vec::new();
    let mut bw = Vec::new();

    // sources
    let n_inputs = rng.gen_range(1..=3);
    for k in 0..n_inputs {
        fw.push(b.global_input(format!("{name}_in{k}")));
    }
    if rng.gen_bool(0.4) {
        fw.push(b.acquisition(rng.gen_range(0..4)));
    }

    let mut count = fw.len();
    while count < target {
        let pick = |rng: &mut Rng, v: &Vec<FWire>| v[rng.gen_range(0..v.len())];
        let roll: f64 = rng.f64();
        if roll < 0.22 {
            let x = pick(rng, &fw);
            fw.push(b.gain(x, rng.gen_range(-3.0..3.0)));
        } else if roll < 0.40 {
            let x = pick(rng, &fw);
            let y = pick(rng, &fw);
            let w = match rng.gen_range(0..4) {
                0 => b.sum(x, y),
                1 => b.sub(x, y),
                2 => b.mul(x, y),
                _ => b.min(x, y),
            };
            fw.push(w);
        } else if roll < 0.60 {
            let x = pick(rng, &fw);
            fw.push(b.first_order_filter(x, rng.gen_range(0.05..0.6)));
        } else if roll < 0.70 {
            let x = pick(rng, &fw);
            let lo = rng.gen_range(-20.0..-1.0);
            let hi = rng.gen_range(1.0..20.0);
            fw.push(b.saturation(x, lo, hi));
        } else if roll < 0.76 {
            let x = pick(rng, &fw);
            fw.push(b.rate_limiter(x, rng.gen_range(0.1..2.0)));
        } else if roll < 0.82 {
            let x = pick(rng, &fw);
            fw.push(b.delay(x));
        } else if roll < 0.86 {
            let x = pick(rng, &fw);
            fw.push(b.pid(
                x,
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.0..0.5),
                rng.gen_range(0.0..0.5),
            ));
        } else if roll < 0.90 {
            let x = pick(rng, &fw);
            let n = rng.gen_range(4..9);
            let table: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            fw.push(b.lookup1d(x, table, -5.0, 10.0 / (n as f64 - 1.0)));
        } else if roll < 0.92 {
            let x = pick(rng, &fw);
            bw.push(b.cmp_const(x, Cmp::Gt, rng.gen_range(-5.0..5.0)));
        } else if roll < 0.94 {
            let x = pick(rng, &fw);
            let w = match rng.gen_range(0..3) {
                0 => b.deadband(x, rng.gen_range(0.1..2.0)),
                1 => b.second_order_filter(
                    x,
                    rng.gen_range(0.1..0.8),
                    rng.gen_range(-0.4..0.4),
                    rng.gen_range(-0.6..0.6),
                ),
                _ => b.abs(x),
            };
            fw.push(w);
        } else if roll < 0.95 && !bw.is_empty() {
            let c = bw[rng.gen_range(0..bw.len())];
            bw.push(b.debounce(c, rng.gen_range(1..5)));
        } else if roll < 0.97 && !bw.is_empty() {
            let c = bw[rng.gen_range(0..bw.len())];
            let x = pick(rng, &fw);
            let y = pick(rng, &fw);
            fw.push(b.switch_if(c, x, y));
        } else if bw.len() >= 2 {
            let c1 = bw[rng.gen_range(0..bw.len())];
            let c2 = bw[rng.gen_range(0..bw.len())];
            bw.push(match rng.gen_range(0..3) {
                0 => b.and(c1, c2),
                1 => b.or(c1, c2),
                _ => b.xor(c1, c2),
            });
        } else {
            let x = pick(rng, &fw);
            fw.push(b.abs(x));
        }
        count += 1;
    }

    // sinks: a couple of outputs and maybe an actuator
    let outs = rng.gen_range(1..=2);
    for k in 0..outs {
        let x = fw[fw.len() - 1 - k * 2 % fw.len()];
        b.output(format!("{name}_out{k}"), x);
    }
    if rng.gen_bool(0.3) {
        let x = fw[fw.len() - 1];
        b.actuator(rng.gen_range(8..12), x);
    }
    if let Some(&c) = bw.last() {
        b.output_b(format!("{name}_flag"), c);
    }
    b.build()
        .expect("generated nodes are well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::interp::{Interp, Value};

    #[test]
    fn random_fleet_is_deterministic() {
        let cfg = FleetConfig {
            nodes: 5,
            ..FleetConfig::default()
        };
        let a = random_fleet(&cfg);
        let b = random_fleet(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_minic(), y.to_minic());
        }
        let c = random_fleet(&FleetConfig { seed: 999, ..cfg });
        assert_ne!(a[0].to_minic(), c[0].to_minic());
    }

    #[test]
    fn random_fleet_typechecks_and_runs() {
        let cfg = FleetConfig {
            nodes: 20,
            min_symbols: 10,
            max_symbols: 40,
            ..Default::default()
        };
        for node in random_fleet(&cfg) {
            let p = node.to_minic();
            vericomp_minic::typeck::check(&p).unwrap_or_else(|e| panic!("{}: {e}", node.name()));
            let mut it = Interp::new(&p);
            // set declared inputs to something nonzero
            for g in &p.globals {
                if g.name.contains("_in") {
                    let _ = it.set_global(&g.name, Value::F(1.5));
                }
            }
            it.call("step", &[])
                .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        }
    }

    #[test]
    fn fleet_sizes_respect_bounds() {
        let cfg = FleetConfig {
            nodes: 10,
            min_symbols: 15,
            max_symbols: 30,
            seed: 7,
        };
        for n in random_fleet(&cfg) {
            assert!(n.len() >= 15, "{} has {}", n.name(), n.len());
        }
    }
}
