//! Seeded random workload fleets for the Table 1 statistics, fuzzing and
//! soak tests (moved here from `vericomp-dataflow` so the dataflow crate
//! stays dependency-free; the curated `named_suite` remains in
//! `vericomp_dataflow::fleet`).
//!
//! The symbol census is modeled on flight-control laws: dominated by
//! gains, sums and filters, with a sprinkling of saturations, limiters,
//! lookups, comparators and boolean logic.
//!
//! # Seed → fleet stability guarantee
//!
//! Given equal [`FleetConfig`] values, [`random_fleet`] produces
//! **byte-identical generated sources** — every downstream artifact digest,
//! WCET bound and benchmark workload is a pure function of the config. Two
//! further invariants are part of the contract and pinned by the golden
//! fleet-digest test in this module (and relied on by every `BENCH_*.json`
//! trajectory):
//!
//! * **Prefix stability** — growing `nodes` never changes earlier nodes:
//!   the first *k* nodes of a `nodes = n` fleet equal the `nodes = k` fleet
//!   for every `k <= n` (each node draws from the shared stream only while
//!   it is being generated).
//! * **Pinned stream layout** — edits to the generator that change how many
//!   draws a symbol consumes shift every later symbol and are **breaking**:
//!   they must update the golden digest below and note the break in
//!   CHANGELOG.md.

use std::fmt;

use vericomp_dataflow::node::{FWire, Node, NodeBuilder};
use vericomp_minic::ast::Cmp;
use vericomp_pipeline::hash::{Digest, Hasher};

use crate::rng::Rng;

/// Configuration of the random fleet generator.
///
/// Construct with [`FleetConfig::builder`] to get validation up front, or
/// via struct-update syntax on [`FleetConfig::default`] (in which case
/// [`random_fleet`] validates and panics on nonsense bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Minimum symbols per node.
    pub min_symbols: usize,
    /// Maximum symbols per node.
    pub max_symbols: usize,
    /// RNG seed (the fleet is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 100,
            min_symbols: 20,
            max_symbols: 80,
            seed: 0xF11C,
        }
    }
}

/// Why a [`FleetConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `nodes` was zero.
    NoNodes,
    /// `min_symbols` was below the generator's floor of 1.
    SymbolFloor,
    /// `min_symbols > max_symbols`.
    InvertedSymbolRange {
        /// The declared minimum.
        min: usize,
        /// The declared maximum.
        max: usize,
    },
    /// `max_symbols` beyond the supported ceiling (huge nodes make the
    /// downstream compiler quadratic corners visible long before they make
    /// interesting workloads).
    SymbolCeiling {
        /// The declared maximum.
        max: usize,
    },
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoNodes => write!(f, "fleet needs at least one node"),
            FleetConfigError::SymbolFloor => write!(f, "min_symbols must be at least 1"),
            FleetConfigError::InvertedSymbolRange { min, max } => {
                write!(f, "inverted symbol range: min {min} > max {max}")
            }
            FleetConfigError::SymbolCeiling { max } => {
                write!(
                    f,
                    "max_symbols {max} beyond the supported ceiling {MAX_SYMBOLS_CEILING}"
                )
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Upper bound on `max_symbols` accepted by the validator.
pub const MAX_SYMBOLS_CEILING: usize = 10_000;

impl FleetConfig {
    /// Starts a validated builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            cfg: FleetConfig::default(),
        }
    }

    /// Checks the config against the generator's documented domain.
    ///
    /// # Errors
    ///
    /// The first [`FleetConfigError`] found.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.nodes == 0 {
            return Err(FleetConfigError::NoNodes);
        }
        if self.min_symbols < 1 {
            return Err(FleetConfigError::SymbolFloor);
        }
        if self.min_symbols > self.max_symbols {
            return Err(FleetConfigError::InvertedSymbolRange {
                min: self.min_symbols,
                max: self.max_symbols,
            });
        }
        if self.max_symbols > MAX_SYMBOLS_CEILING {
            return Err(FleetConfigError::SymbolCeiling {
                max: self.max_symbols,
            });
        }
        Ok(())
    }
}

/// Validated builder for [`FleetConfig`] — the only constructor that can't
/// hand the generator an out-of-domain config.
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    cfg: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the node count.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Sets the per-node symbol-count range (inclusive on both ends).
    #[must_use]
    pub fn symbols(mut self, min: usize, max: usize) -> Self {
        self.cfg.min_symbols = min;
        self.cfg.max_symbols = max;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// The first [`FleetConfigError`] found.
    pub fn build(self) -> Result<FleetConfig, FleetConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Generates a deterministic random fleet with a symbol census modeled on
/// flight-control laws (dominated by gains/sums/filters). See the module
/// docs for the seed → fleet stability guarantee.
///
/// # Panics
///
/// Panics when `cfg` fails [`FleetConfig::validate`] — construct configs
/// through [`FleetConfig::builder`] to get the error as a value instead.
pub fn random_fleet(cfg: &FleetConfig) -> Vec<Node> {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid FleetConfig: {e}"));
    let mut rng = Rng::seed_from_u64(cfg.seed);
    (0..cfg.nodes)
        .map(|i| {
            random_node_named(
                &format!("node{i:03}"),
                &mut rng,
                cfg.min_symbols,
                cfg.max_symbols,
            )
        })
        .collect()
}

/// A digest of every node's generated source, in fleet order — the value
/// the golden-digest test pins, and what benches/scenarios use to assert a
/// workload hasn't silently shifted.
#[must_use]
pub fn fleet_digest(nodes: &[Node]) -> Digest {
    let mut h = Hasher::new();
    for node in nodes {
        h.str(node.name());
        h.str(&vericomp_minic::pretty::program_to_c(&node.to_minic()));
    }
    h.finish()
}

/// One random node drawn from the shared stream — the symbol census behind
/// both [`random_fleet`] and the scenario suite's task generator.
pub(crate) fn random_node_named(
    name: &str,
    rng: &mut Rng,
    min_symbols: usize,
    max_symbols: usize,
) -> Node {
    let mut b = NodeBuilder::new(name);
    let target = rng.gen_range(min_symbols..=max_symbols);
    let mut fw: Vec<FWire> = Vec::new();
    let mut bw = Vec::new();

    // sources
    let n_inputs = rng.gen_range(1..=3);
    for k in 0..n_inputs {
        fw.push(b.global_input(format!("{name}_in{k}")));
    }
    if rng.gen_bool(0.4) {
        fw.push(b.acquisition(rng.gen_range(0..4)));
    }

    let mut count = fw.len();
    while count < target {
        let pick = |rng: &mut Rng, v: &Vec<FWire>| v[rng.gen_range(0..v.len())];
        let roll: f64 = rng.f64();
        if roll < 0.22 {
            let x = pick(rng, &fw);
            fw.push(b.gain(x, rng.gen_range(-3.0..3.0)));
        } else if roll < 0.40 {
            let x = pick(rng, &fw);
            let y = pick(rng, &fw);
            let w = match rng.gen_range(0..4) {
                0 => b.sum(x, y),
                1 => b.sub(x, y),
                2 => b.mul(x, y),
                _ => b.min(x, y),
            };
            fw.push(w);
        } else if roll < 0.60 {
            let x = pick(rng, &fw);
            fw.push(b.first_order_filter(x, rng.gen_range(0.05..0.6)));
        } else if roll < 0.70 {
            let x = pick(rng, &fw);
            let lo = rng.gen_range(-20.0..-1.0);
            let hi = rng.gen_range(1.0..20.0);
            fw.push(b.saturation(x, lo, hi));
        } else if roll < 0.76 {
            let x = pick(rng, &fw);
            fw.push(b.rate_limiter(x, rng.gen_range(0.1..2.0)));
        } else if roll < 0.82 {
            let x = pick(rng, &fw);
            fw.push(b.delay(x));
        } else if roll < 0.86 {
            let x = pick(rng, &fw);
            fw.push(b.pid(
                x,
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.0..0.5),
                rng.gen_range(0.0..0.5),
            ));
        } else if roll < 0.90 {
            let x = pick(rng, &fw);
            let n = rng.gen_range(4..9);
            let table: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            fw.push(b.lookup1d(x, table, -5.0, 10.0 / (n as f64 - 1.0)));
        } else if roll < 0.92 {
            let x = pick(rng, &fw);
            bw.push(b.cmp_const(x, Cmp::Gt, rng.gen_range(-5.0..5.0)));
        } else if roll < 0.94 {
            let x = pick(rng, &fw);
            let w = match rng.gen_range(0..3) {
                0 => b.deadband(x, rng.gen_range(0.1..2.0)),
                1 => b.second_order_filter(
                    x,
                    rng.gen_range(0.1..0.8),
                    rng.gen_range(-0.4..0.4),
                    rng.gen_range(-0.6..0.6),
                ),
                _ => b.abs(x),
            };
            fw.push(w);
        } else if roll < 0.95 && !bw.is_empty() {
            let c = bw[rng.gen_range(0..bw.len())];
            bw.push(b.debounce(c, rng.gen_range(1..5)));
        } else if roll < 0.97 && !bw.is_empty() {
            let c = bw[rng.gen_range(0..bw.len())];
            let x = pick(rng, &fw);
            let y = pick(rng, &fw);
            fw.push(b.switch_if(c, x, y));
        } else if bw.len() >= 2 {
            let c1 = bw[rng.gen_range(0..bw.len())];
            let c2 = bw[rng.gen_range(0..bw.len())];
            bw.push(match rng.gen_range(0..3) {
                0 => b.and(c1, c2),
                1 => b.or(c1, c2),
                _ => b.xor(c1, c2),
            });
        } else {
            let x = pick(rng, &fw);
            fw.push(b.abs(x));
        }
        count += 1;
    }

    // sinks: a couple of outputs and maybe an actuator
    let outs = rng.gen_range(1..=2);
    for k in 0..outs {
        let x = fw[fw.len() - 1 - k * 2 % fw.len()];
        b.output(format!("{name}_out{k}"), x);
    }
    if rng.gen_bool(0.3) {
        let x = fw[fw.len() - 1];
        b.actuator(rng.gen_range(8..12), x);
    }
    if let Some(&c) = bw.last() {
        b.output_b(format!("{name}_flag"), c);
    }
    b.build()
        .expect("generated nodes are well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_minic::interp::{Interp, Value};

    #[test]
    fn random_fleet_is_deterministic() {
        let cfg = FleetConfig {
            nodes: 5,
            ..FleetConfig::default()
        };
        let a = random_fleet(&cfg);
        let b = random_fleet(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_minic(), y.to_minic());
        }
        let c = random_fleet(&FleetConfig { seed: 999, ..cfg });
        assert_ne!(a[0].to_minic(), c[0].to_minic());
    }

    #[test]
    fn random_fleet_typechecks_and_runs() {
        let cfg = FleetConfig {
            nodes: 20,
            min_symbols: 10,
            max_symbols: 40,
            ..Default::default()
        };
        for node in random_fleet(&cfg) {
            let p = node.to_minic();
            vericomp_minic::typeck::check(&p).unwrap_or_else(|e| panic!("{}: {e}", node.name()));
            let mut it = Interp::new(&p);
            // set declared inputs to something nonzero
            for g in &p.globals {
                if g.name.contains("_in") {
                    let _ = it.set_global(&g.name, Value::F(1.5));
                }
            }
            it.call("step", &[])
                .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        }
    }

    #[test]
    fn builder_validates_and_round_trips() {
        let cfg = FleetConfig::builder()
            .nodes(7)
            .symbols(5, 9)
            .seed(42)
            .build()
            .expect("valid config");
        assert_eq!(
            cfg,
            FleetConfig {
                nodes: 7,
                min_symbols: 5,
                max_symbols: 9,
                seed: 42
            }
        );
        assert_eq!(
            FleetConfig::builder().nodes(0).build(),
            Err(FleetConfigError::NoNodes)
        );
        assert_eq!(
            FleetConfig::builder().symbols(0, 4).build(),
            Err(FleetConfigError::SymbolFloor)
        );
        assert_eq!(
            FleetConfig::builder().symbols(9, 5).build(),
            Err(FleetConfigError::InvertedSymbolRange { min: 9, max: 5 })
        );
        assert_eq!(
            FleetConfig::builder().symbols(5, 20_000).build(),
            Err(FleetConfigError::SymbolCeiling { max: 20_000 })
        );
    }

    #[test]
    fn growing_the_fleet_is_prefix_stable() {
        let small = random_fleet(&FleetConfig::builder().nodes(5).build().unwrap());
        let large = random_fleet(&FleetConfig::builder().nodes(12).build().unwrap());
        assert_eq!(
            fleet_digest(&small),
            fleet_digest(&large[..5]),
            "first 5 nodes shifted when the fleet grew"
        );
    }

    /// The seed → fleet stability guarantee, pinned. If this digest moves,
    /// the generator's draw stream changed and every downstream bench
    /// trajectory (BENCH_*.json) and scenario budget resets — update the
    /// constant only alongside a CHANGELOG.md note.
    #[test]
    fn golden_fleet_digest_is_pinned() {
        let fleet = random_fleet(&FleetConfig::default());
        assert_eq!(
            fleet_digest(&fleet).to_string(),
            GOLDEN_DEFAULT_FLEET_DIGEST,
            "default fleet drifted from the pinned golden digest"
        );
    }

    const GOLDEN_DEFAULT_FLEET_DIGEST: &str = "2d1b7524d648962a51853e67f71ed7af";

    #[test]
    fn fleet_sizes_respect_bounds() {
        let cfg = FleetConfig {
            nodes: 10,
            min_symbols: 15,
            max_symbols: 30,
            seed: 7,
        };
        for n in random_fleet(&cfg) {
            assert!(n.len() >= 15, "{} has {}", n.name(), n.len());
        }
    }
}
