//! The cross-layer differential fuzz oracle.
//!
//! One *case* is one randomly generated dataflow node pushed through the
//! entire pipeline under **all four** compiler configurations, with the
//! translation validators force-enabled, and cross-checked layer by layer:
//!
//! 1. **codegen** — the node's MiniC program typechecks (by construction);
//! 2. **compiler** — compilation succeeds and no translation validator
//!    rejects an unmutated pass result;
//! 3. **binary** — the emitted program round-trips bit-exactly through the
//!    real 32-bit PowerPC encoding;
//! 4. **semantics** — the MPC755-like simulator agrees with the MiniC
//!    reference interpreter on every scalar global, every I/O port
//!    (actuator commands included) and the annotation trace, bit-exactly,
//!    NaN/±inf included, over several activations with randomized inputs
//!    (a slice of which are non-finite on purpose);
//! 5. **WCET** — the static analyzer's bound dominates the measured cycle
//!    count of every activation.
//!
//! Any failure carries the case seed; `fuzz_pipeline --replay 0x<seed>`
//! reproduces it deterministically.

use std::fmt;

use vericomp_arch::Program;
use vericomp_core::{CompileError, Compiler, OptLevel, PassConfig};
use vericomp_mach::Simulator;
use vericomp_minic::ast::GlobalDef;
use vericomp_minic::interp::{Interp, Value};
use vericomp_wcet as wcet;

use crate::fleet::{random_fleet, FleetConfig};
use crate::rng::{mix, Rng};

/// Shape of the generated cases.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Activations simulated per case and configuration.
    pub steps: u32,
    /// Minimum symbols per generated node.
    pub min_symbols: usize,
    /// Maximum symbols per generated node.
    pub max_symbols: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            steps: 3,
            min_symbols: 8,
            max_symbols: 40,
        }
    }
}

/// Counters accumulated over a fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Compilations performed (case × configuration).
    pub compilations: u64,
    /// Encode/decode round-trips checked.
    pub roundtrips: u64,
    /// Interpreter-vs-simulator activations compared.
    pub activations: u64,
    /// Scalar globals + I/O ports compared bit-exactly.
    pub values_compared: u64,
    /// WCET bound vs measured-cycles checks.
    pub wcet_checks: u64,
    /// Smallest observed `wcet - cycles` slack (tightness telemetry).
    pub min_wcet_slack: u64,
}

impl OracleStats {
    fn absorb(&mut self, other: &OracleStats) {
        self.compilations += other.compilations;
        self.roundtrips += other.roundtrips;
        self.activations += other.activations;
        self.values_compared += other.values_compared;
        self.wcet_checks += other.wcet_checks;
        self.min_wcet_slack = self.min_wcet_slack.min(other.min_wcet_slack);
    }
}

/// A cross-check violation, tagged with the layer that caught it.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// Compilation failed (non-validator error).
    Compile {
        /// Configuration.
        level: OptLevel,
        /// Compiler error text.
        error: String,
    },
    /// A translation validator rejected an unmutated compilation.
    Validator {
        /// Configuration.
        level: OptLevel,
        /// Validator error text.
        error: String,
    },
    /// Binary encode→decode did not reproduce the instruction sequence.
    Roundtrip {
        /// Configuration.
        level: OptLevel,
        /// What went wrong (decode error or first diverging index).
        detail: String,
    },
    /// Interpreter and simulator disagreed.
    Diverge {
        /// Configuration.
        level: OptLevel,
        /// Activation index.
        step: u32,
        /// What diverged (global name, `io[port]`, or `trace`).
        what: String,
    },
    /// The interpreter itself failed (generated program must not).
    Interp {
        /// Activation index.
        step: u32,
        /// Interpreter error text.
        error: String,
    },
    /// The simulator faulted or ran out of fuel.
    Sim {
        /// Configuration.
        level: OptLevel,
        /// Activation index.
        step: u32,
        /// Simulator error text.
        error: String,
    },
    /// The WCET analyzer failed on a compiled binary.
    Analysis {
        /// Configuration.
        level: OptLevel,
        /// Analyzer error text.
        error: String,
    },
    /// The WCET bound did not dominate a measured activation.
    WcetViolation {
        /// Configuration.
        level: OptLevel,
        /// Activation index.
        step: u32,
        /// The static bound.
        wcet: u64,
        /// The measured cycle count exceeding it.
        cycles: u64,
    },
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::Compile { level, error } => write!(f, "[{level}] compile: {error}"),
            OracleFailure::Validator { level, error } => {
                write!(
                    f,
                    "[{level}] validator rejected unmutated compilation: {error}"
                )
            }
            OracleFailure::Roundtrip { level, detail } => {
                write!(f, "[{level}] encode/decode roundtrip: {detail}")
            }
            OracleFailure::Diverge { level, step, what } => {
                write!(
                    f,
                    "[{level}] step {step}: interpreter/simulator diverge on {what}"
                )
            }
            OracleFailure::Interp { step, error } => {
                write!(f, "reference interpreter failed at step {step}: {error}")
            }
            OracleFailure::Sim { level, step, error } => {
                write!(f, "[{level}] simulator failed at step {step}: {error}")
            }
            OracleFailure::Analysis { level, error } => {
                write!(f, "[{level}] WCET analysis failed: {error}")
            }
            OracleFailure::WcetViolation {
                level,
                step,
                wcet,
                cycles,
            } => write!(
                f,
                "[{level}] WCET bound {wcet} < measured {cycles} cycles at step {step}"
            ),
        }
    }
}

/// Deterministic input for a given case, activation and input slot: mostly
/// tame finite values, with a deliberate slice of IEEE corner cases (NaN,
/// ±inf, −0.0, huge, subnormal) — the territory where compilers break.
fn input_value(case_seed: u64, step: u32, slot: u32) -> f64 {
    let h = mix(case_seed, (u64::from(step) << 32) | u64::from(slot));
    match h % 16 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 1e308,
        5 => 5e-324,
        _ => {
            let mut r = Rng::seed_from_u64(h);
            (r.f64() - 0.5) * 2.0e3
        }
    }
}

/// Runs one oracle case. `case_seed` fully determines the node, the
/// inputs, and therefore the verdict.
///
/// # Errors
///
/// The first cross-check violation, tagged with layer and configuration.
pub fn run_case(case_seed: u64, cfg: &OracleConfig) -> Result<OracleStats, OracleFailure> {
    let node = random_fleet(&FleetConfig {
        nodes: 1,
        min_symbols: cfg.min_symbols,
        max_symbols: cfg.max_symbols,
        seed: case_seed,
    })
    .remove(0);
    let src = node.to_minic();

    let io_ports: Vec<u32> = node
        .instances()
        .iter()
        .filter_map(|i| match i.kind {
            vericomp_dataflow::Symbol::Acquisition(p) => Some(p),
            _ => None,
        })
        .collect();
    let input_globals: Vec<String> = src
        .globals
        .iter()
        .filter(|g| g.name.contains("_in") && matches!(g.def, GlobalDef::ScalarF64(_)))
        .map(|g| g.name.clone())
        .collect();

    let mut stats = OracleStats {
        min_wcet_slack: u64::MAX,
        ..OracleStats::default()
    };

    for level in OptLevel::all() {
        // validators force-enabled on every configuration: a rejection of
        // an unmutated compilation is a validator (or compiler) bug
        let passes = PassConfig {
            validators: true,
            ..PassConfig::for_level(level)
        };
        let binary = match Compiler::new(level).compile_with_passes(&src, node.step_name(), &passes)
        {
            Ok(b) => b,
            Err(CompileError::Validation(e)) => {
                return Err(OracleFailure::Validator {
                    level,
                    error: e.to_string(),
                })
            }
            Err(e) => {
                return Err(OracleFailure::Compile {
                    level,
                    error: e.to_string(),
                })
            }
        };
        stats.compilations += 1;

        // layer: binary encoding
        let words = binary.encode_text();
        match Program::decode_text(&binary.config, &words) {
            Ok(decoded) => {
                if decoded != binary.code {
                    let index = decoded
                        .iter()
                        .zip(&binary.code)
                        .position(|(a, b)| a != b)
                        .unwrap_or(decoded.len().min(binary.code.len()));
                    return Err(OracleFailure::Roundtrip {
                        level,
                        detail: format!("diverges at instruction {index}"),
                    });
                }
            }
            Err(e) => {
                return Err(OracleFailure::Roundtrip {
                    level,
                    detail: format!("decode failed: {e}"),
                })
            }
        }
        stats.roundtrips += 1;

        // layer: WCET bound
        let analyzed = wcet::Analyzer::default()
            .analyze(&wcet::AnalysisRequest::new(&binary, node.step_name()))
            .map(wcet::Analysis::into_report);
        let report = match analyzed {
            Ok(r) => r,
            Err(e) => {
                return Err(OracleFailure::Analysis {
                    level,
                    error: e.to_string(),
                })
            }
        };
        stats.wcet_checks += 1;

        // layer: semantics, interpreter vs simulator
        let mut interp = Interp::new(&src);
        let mut sim = Simulator::new(binary);
        for step in 0..cfg.steps {
            for (k, port) in io_ports.iter().enumerate() {
                let v = input_value(case_seed, step, k as u32);
                interp.set_io(*port, v);
                sim.set_io_f64(*port, v);
            }
            for (k, name) in input_globals.iter().enumerate() {
                let v = input_value(case_seed, step, 100 + k as u32);
                interp
                    .set_global(name, Value::F(v))
                    .expect("input global exists");
                sim.set_global_f64(name, 0, v).expect("input global exists");
            }

            if let Err(e) = interp.call(node.step_name(), &[]) {
                return Err(OracleFailure::Interp {
                    step,
                    error: e.to_string(),
                });
            }
            let outcome = match sim.run(10_000_000) {
                Ok(o) => o,
                Err(e) => {
                    return Err(OracleFailure::Sim {
                        level,
                        step,
                        error: e.to_string(),
                    })
                }
            };
            stats.activations += 1;

            // scalar globals, bit-exact
            for g in &src.globals {
                match g.def {
                    GlobalDef::ScalarF64(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::F(v) => v,
                            _ => unreachable!("typechecked"),
                        };
                        let b = sim.global_f64(&g.name, 0).expect("declared");
                        stats.values_compared += 1;
                        if a.to_bits() != b.to_bits() {
                            return Err(OracleFailure::Diverge {
                                level,
                                step,
                                what: format!("global {}: interp {a:?} vs sim {b:?}", g.name),
                            });
                        }
                    }
                    GlobalDef::ScalarI32(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::I(v) => v,
                            _ => unreachable!("typechecked"),
                        };
                        let b = sim.global_i32(&g.name, 0).expect("declared");
                        stats.values_compared += 1;
                        if a != b {
                            return Err(OracleFailure::Diverge {
                                level,
                                step,
                                what: format!("global {}: interp {a} vs sim {b}", g.name),
                            });
                        }
                    }
                    _ => {}
                }
            }

            // I/O ports — actuator commands included
            for port in 0..16u32 {
                let a = interp.io(port);
                let b = sim.io_f64(port);
                stats.values_compared += 1;
                if a.to_bits() != b.to_bits() {
                    return Err(OracleFailure::Diverge {
                        level,
                        step,
                        what: format!("io[{port}]: interp {a:?} vs sim {b:?}"),
                    });
                }
            }

            // annotation traces — order and bit-exact values
            let src_trace = interp.take_trace();
            if !traces_match(&outcome.annotations, &src_trace) {
                return Err(OracleFailure::Diverge {
                    level,
                    step,
                    what: "trace".into(),
                });
            }

            // WCET bound must dominate every measured activation
            if report.wcet < outcome.stats.cycles {
                return Err(OracleFailure::WcetViolation {
                    level,
                    step,
                    wcet: report.wcet,
                    cycles: outcome.stats.cycles,
                });
            }
            stats.min_wcet_slack = stats.min_wcet_slack.min(report.wcet - outcome.stats.cycles);
        }
    }
    Ok(stats)
}

fn traces_match(
    machine: &[vericomp_mach::AnnotEvent],
    source: &[vericomp_minic::interp::TraceEvent],
) -> bool {
    use vericomp_mach::AnnotValue;
    machine.len() == source.len()
        && machine.iter().zip(source).all(|(m, s)| {
            m.format == s.format
                && m.values.len() == s.values.len()
                && m.values
                    .iter()
                    .zip(&s.values)
                    .all(|(mv, sv)| match (mv, sv) {
                        (AnnotValue::I32(a), Value::I(b)) => a == b,
                        (AnnotValue::F64(a), Value::F(b)) => a.to_bits() == b.to_bits(),
                        _ => false,
                    })
        })
}

/// Outcome of a whole fuzz run.
#[derive(Debug)]
pub struct RunSummary {
    /// Cases that passed.
    pub passed: u64,
    /// Aggregate counters.
    pub stats: OracleStats,
    /// The failing case, if any: `(case index, seed, failure)`.
    pub failure: Option<(u64, u64, OracleFailure)>,
}

/// Runs `cases` oracle cases derived from `base_seed` (case 0 = the base
/// seed itself, so a reported seed replays directly), stopping at the
/// first failure.
pub fn run(
    base_seed: u64,
    cases: u64,
    cfg: &OracleConfig,
    mut progress: impl FnMut(u64, &OracleStats),
) -> RunSummary {
    let mut stats = OracleStats {
        min_wcet_slack: u64::MAX,
        ..OracleStats::default()
    };
    for i in 0..cases {
        let case_seed = if i == 0 { base_seed } else { mix(base_seed, i) };
        match run_case(case_seed, cfg) {
            Ok(s) => stats.absorb(&s),
            Err(e) => {
                return RunSummary {
                    passed: i,
                    stats,
                    failure: Some((i, case_seed, e)),
                }
            }
        }
        progress(i + 1, &stats);
    }
    RunSummary {
        passed: cases,
        stats,
        failure: None,
    }
}

/// Runs the oracle cases on the pipeline's work-stealing pool.
///
/// Replayability is identical to [`run`]: every case's seed is derived
/// from its **index** (`mix(base_seed, i)`, case 0 = the base seed), never
/// from the worker executing it, so a printed seed replays with
/// `--replay` regardless of `jobs`. On failure the *minimum-index*
/// failing case is reported — cases below that index are never skipped,
/// so the report is deterministic even under racy scheduling; cases above
/// it may or may not have run, so aggregate counters can exceed the
/// serial run's (the verdict never differs).
///
/// `jobs = 0` selects the machine's available parallelism.
pub fn run_parallel(
    base_seed: u64,
    cases: u64,
    cfg: &OracleConfig,
    jobs: usize,
    progress: impl FnMut(u64, &OracleStats) + Send + 'static,
) -> RunSummary {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    use vericomp_pipeline::ThreadPool;

    let pool = ThreadPool::new(jobs);
    let cfg = *cfg;
    // Atomic-min of the failing indices: cases at or above it stop being
    // scheduled, cases below it always complete.
    let stop_at = Arc::new(AtomicU64::new(u64::MAX));
    let agg = Arc::new(Mutex::new((
        OracleStats {
            min_wcet_slack: u64::MAX,
            ..OracleStats::default()
        },
        0u64,
    )));
    let progress = Arc::new(Mutex::new(progress));

    type CaseFailure = (u64, u64, OracleFailure);
    let tasks: Vec<Box<dyn FnOnce() -> Option<CaseFailure> + Send>> = (0..cases)
        .map(|i| {
            let stop_at = Arc::clone(&stop_at);
            let agg = Arc::clone(&agg);
            let progress = Arc::clone(&progress);
            Box::new(move || {
                if i >= stop_at.load(Ordering::SeqCst) {
                    return None;
                }
                let case_seed = if i == 0 { base_seed } else { mix(base_seed, i) };
                match run_case(case_seed, &cfg) {
                    Ok(s) => {
                        let mut a = agg.lock().expect("oracle stats lock");
                        a.0.absorb(&s);
                        a.1 += 1;
                        let (stats, done) = *a;
                        drop(a);
                        (progress.lock().expect("oracle progress lock"))(done, &stats);
                        None
                    }
                    Err(e) => {
                        stop_at.fetch_min(i, Ordering::SeqCst);
                        Some((i, case_seed, e))
                    }
                }
            }) as Box<dyn FnOnce() -> Option<CaseFailure> + Send>
        })
        .collect();

    let failure = pool
        .run_all(tasks)
        .into_iter()
        .flatten()
        .min_by_key(|(i, _, _)| *i);
    let (stats, _) = *agg.lock().expect("oracle stats lock");
    match failure {
        Some((i, seed, e)) => RunSummary {
            passed: i,
            stats,
            failure: Some((i, seed, e)),
        },
        None => RunSummary {
            passed: cases,
            stats,
            failure: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_accepts_a_small_deterministic_batch() {
        let cfg = OracleConfig {
            steps: 2,
            min_symbols: 6,
            max_symbols: 18,
        };
        let summary = run(0xBEEF, 4, &cfg, |_, _| {});
        if let Some((i, seed, e)) = &summary.failure {
            panic!("case {i} (seed 0x{seed:016x}) failed: {e}");
        }
        assert_eq!(summary.passed, 4);
        assert!(summary.stats.compilations >= 16);
        assert!(summary.stats.activations >= 32);
    }

    #[test]
    fn parallel_run_matches_serial_on_passing_batch() {
        let cfg = OracleConfig {
            steps: 2,
            min_symbols: 6,
            max_symbols: 14,
        };
        let serial = run(0xBEEF, 4, &cfg, |_, _| {});
        let parallel = run_parallel(0xBEEF, 4, &cfg, 4, |_, _| {});
        assert!(serial.failure.is_none() && parallel.failure.is_none());
        assert_eq!(parallel.passed, serial.passed);
        // same per-index seeds => identical aggregate counters
        assert_eq!(parallel.stats.compilations, serial.stats.compilations);
        assert_eq!(parallel.stats.activations, serial.stats.activations);
        assert_eq!(parallel.stats.values_compared, serial.stats.values_compared);
        assert_eq!(parallel.stats.min_wcet_slack, serial.stats.min_wcet_slack);
    }

    #[test]
    fn case_verdict_is_deterministic() {
        let cfg = OracleConfig::default();
        let a = run_case(0x1234, &cfg).expect("passes");
        let b = run_case(0x1234, &cfg).expect("passes");
        assert_eq!(a.values_compared, b.values_compared);
        assert_eq!(a.min_wcet_slack, b.min_wcet_slack);
    }
}
