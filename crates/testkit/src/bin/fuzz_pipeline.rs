//! Cross-layer differential fuzz oracle for the whole compilation pipeline.
//!
//! ```text
//! cargo run --release -p vericomp-testkit --bin fuzz_pipeline -- \
//!     --cases 10000 --seed 0xCC2011
//! ```
//!
//! Each case generates a random flight-control dataflow node, compiles it
//! under all four configurations (pattern −O0, optimized w/o regalloc,
//! verified, full) with translation validators force-enabled, and
//! cross-checks: interpreter vs. MPC755 simulator bit-exactly (NaN and
//! ±inf inputs included), encode→decode round-trips, validator acceptance
//! of unmutated compilations, and WCET-bound domination of measured
//! cycles. On failure the case seed is printed; replay it with
//! `--replay 0x<seed>`.

use std::process::ExitCode;

use vericomp_testkit::oracle::{self, OracleConfig};

struct Args {
    cases: u64,
    seed: u64,
    steps: u32,
    jobs: usize,
    replay: Option<u64>,
}

const USAGE: &str =
    "usage: fuzz_pipeline [--cases N] [--seed S] [--steps N] [--jobs N] [--replay S]
  --cases N    number of cases to run (default 1000)
  --seed S     base seed, decimal or 0x-hex (default 0xCC2011)
  --steps N    activations simulated per case and config (default 3)
  --jobs N     worker threads; seeds stay per-case-index, so any reported
               seed replays identically at any job count (default 1, 0 = all cores)
  --replay S   run exactly one case with this seed (as printed on failure)";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 1000,
        seed: 0xCC2011,
        steps: 3,
        jobs: 1,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| parse_u64(&v))
                .ok_or_else(|| format!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--cases" => args.cases = value("--cases")?,
            "--seed" => args.seed = value("--seed")?,
            "--steps" => args.steps = value("--steps")?.min(u64::from(u32::MAX)) as u32,
            "--jobs" => args.jobs = value("--jobs")?.min(1024) as usize,
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = OracleConfig {
        steps: args.steps.max(1),
        ..OracleConfig::default()
    };

    if let Some(seed) = args.replay {
        println!("replaying single case, seed 0x{seed:016x}");
        return match oracle::run_case(seed, &cfg) {
            Ok(stats) => {
                println!(
                    "case passed: {} compilations, {} activations, {} values compared, \
                     min WCET slack {} cycles",
                    stats.compilations,
                    stats.activations,
                    stats.values_compared,
                    stats.min_wcet_slack,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("FAILURE: {e}");
                eprintln!("replay: fuzz_pipeline --replay 0x{seed:016x}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fuzz_pipeline: {} cases, base seed 0x{:x}, {} activations/case, 4 configs, {} job(s)",
        args.cases,
        args.seed,
        cfg.steps,
        if args.jobs == 0 {
            "all".to_string()
        } else {
            args.jobs.to_string()
        },
    );
    let tick = (args.cases / 20).max(1);
    let cases = args.cases;
    let progress = move |done: u64, stats: &oracle::OracleStats| {
        if done % tick == 0 || done == cases {
            println!(
                "  {done}/{cases} cases ok ({} compilations, {} activations, {} values)",
                stats.compilations, stats.activations, stats.values_compared
            );
        }
    };
    let summary = if args.jobs == 1 {
        oracle::run(args.seed, args.cases, &cfg, progress)
    } else {
        oracle::run_parallel(args.seed, args.cases, &cfg, args.jobs, progress)
    };

    match summary.failure {
        None => {
            let s = &summary.stats;
            println!("all {} cases passed", summary.passed);
            println!(
                "  compilations:      {} (validators on, 0 rejections)",
                s.compilations
            );
            println!(
                "  encode/decode:     {} round-trips, 0 divergences",
                s.roundtrips
            );
            println!(
                "  interp vs sim:     {} activations, {} values compared bit-exactly, 0 divergences",
                s.activations, s.values_compared
            );
            println!(
                "  WCET:              {} bounds checked, 0 violations, min slack {} cycles",
                s.wcet_checks, s.min_wcet_slack
            );
            ExitCode::SUCCESS
        }
        Some((index, seed, failure)) => {
            eprintln!("FAILURE at case {index} (seed 0x{seed:016x}): {failure}");
            eprintln!(
                "replay: cargo run --release -p vericomp-testkit --bin fuzz_pipeline -- \
                 --replay 0x{seed:016x} --steps {}",
                cfg.steps
            );
            ExitCode::FAILURE
        }
    }
}
