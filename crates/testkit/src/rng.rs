//! Seedable, dependency-free pseudo-random numbers.
//!
//! SplitMix64 (Steele/Lea/Flood) expands a `u64` seed and derives
//! independent streams; xoshiro256\*\* (Blackman/Vigna) is the workhorse
//! generator. Both are tiny, fast, and — crucially for this repository —
//! fully deterministic across platforms and toolchain versions, so every
//! generated workload, property-test case and fuzz-oracle case is
//! replayable from a single `u64`.
//!
//! The API mirrors the small slice of the `rand` crate the codebase used
//! (`seed_from_u64`, `gen_range` over ranges, `gen_bool`), so call sites
//! port mechanically.

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence, advancing `state`.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mix of a base seed and an index into a derived seed — used to
/// give every property-test / fuzz case its own replayable sub-seed.
#[inline]
#[must_use]
pub fn mix(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// xoshiro256\*\* generator, seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`,
    /// `rng.gen_range(1..=3)`, `rng.gen_range(-3.0..3.0)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Derives an independent generator; the parent advances by one step.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn full_u64_range_samples() {
        let mut rng = Rng::seed_from_u64(1);
        let mut any_high = false;
        for _ in 0..100 {
            let v: u64 = rng.gen_range(0..=u64::MAX);
            any_high |= v > u64::MAX / 2;
        }
        assert!(any_high);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} suspicious");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
    }

    #[test]
    fn mix_derives_distinct_streams() {
        let seeds: Vec<u64> = (0..64).map(|i| mix(0xCC2011, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seeds collide");
    }
}
