//! WCET-guided search over the `PassConfig` lattice.
//!
//! The paper's §4 sketches WCET-driven compilation after the WCC compiler
//! of Falk et al. — *"optimizations are evaluated using a WCET analysis
//! tool and only applied when shown to be beneficial"*. The first cut of
//! that driver probed five hand-picked candidates; with warm cache hits at
//! ~1 ms per cell, walking the lattice itself becomes affordable. This
//! module turns per-node candidate selection into a **deterministic
//! frontier search** over the ~2^9 lattice of tunable pass flags:
//!
//! * **Seeds.** The search starts from a caller-supplied seed frontier
//!   (default: the `verified` baseline and the validated full optimizer).
//!   Every seed — and every probe after it — has `validators: true`
//!   pinned, so the search can never trade correctness for time.
//! * **Expansion.** Each generation expands every frontier config by
//!   flipping one pass flag at a time; a neighbor joins the next frontier
//!   only when its analyzed bound strictly improves on its parent's, so
//!   the search floods downhill from the seeds and terminates.
//! * **Dominance pruning.** After each generation the search scans every
//!   probed pair `(c, c|F)`: if enabling flag `F` never reduced the WCET
//!   bound in any probed context (and at least
//!   [`SearchSpec::prune_trials`] contexts were seen), expansions through
//!   enabling `F` stop. Every pruning decision is recorded in the result
//!   ([`NodeSearch::pruned`]) so it is auditable.
//! * **Batched probes.** Each frontier generation is one [`SweepSpec`]
//!   submitted to [`Pipeline::run_sweep`], so probes overlap on the
//!   work-stealing pool and land in the content-addressed
//!   [`ArtifactStore`](crate::store::ArtifactStore) — re-searching after a
//!   node edit replays every unchanged probe from cache.
//!
//! The search is bit-deterministic: probe order, winner, pruning
//! decisions and [`SearchResult::digest`] depend only on the spec and the
//! (pure) compile/analyze functions, never on scheduling. Cache hit rates
//! are reported but excluded from the digest.
//!
//! ```
//! use vericomp_dataflow::fleet;
//! use vericomp_pipeline::{Pipeline, SearchSpec};
//!
//! let nodes = fleet::named_suite();
//! let spec = SearchSpec::new().nodes(&nodes[..2]);
//! let result = Pipeline::in_memory().search_wcet(&spec)?;
//! for node in &result.nodes {
//!     assert!(node.winner.passes.validators);
//!     assert!(node.winner.wcet <= node.probed[0].wcet); // never worse than a seed
//! }
//! # Ok::<(), vericomp_pipeline::PipelineError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use vericomp_arch::MachineConfig;
use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::{Application, ApplicationError, Node};

use crate::hash::{Digest, Hasher};
use crate::service::{Pipeline, PipelineError};
use crate::stats::{saturating_nanos, PipelineStats};
use crate::store::Artifact;
use crate::sweep::{SweepSpec, SweepUnit};
use crate::trace::{RunTrace, Span};

/// The tunable pass flags of the lattice, in canonical bit order.
/// `validators` is **not** part of the lattice — it is pinned `true` on
/// every probe.
pub const LATTICE_FLAGS: [&str; 9] = [
    "mem2reg",
    "constprop",
    "cse",
    "dce",
    "tunnel",
    "strength",
    "schedule",
    "sda",
    "full-palette",
];

/// Size of the search lattice (every combination of the nine tunable
/// flags; `validators` is pinned).
pub const LATTICE_SIZE: usize = 1 << LATTICE_FLAGS.len();

/// The lattice coordinates of a pass selection: one bit per
/// [`LATTICE_FLAGS`] entry. `validators` does not participate.
#[must_use]
pub fn config_bits(passes: &PassConfig) -> u16 {
    let flags = [
        passes.mem2reg,
        passes.constprop,
        passes.cse,
        passes.dce,
        passes.tunnel,
        passes.strength,
        passes.schedule,
        passes.sda,
        passes.full_palette,
    ];
    flags
        .iter()
        .enumerate()
        .fold(0u16, |acc, (i, &on)| acc | (u16::from(on) << i))
}

/// The pass selection at some lattice coordinates, with `validators`
/// pinned `true` (the search invariant).
#[must_use]
pub fn bits_config(bits: u16) -> PassConfig {
    let on = |i: usize| bits & (1 << i) != 0;
    PassConfig {
        mem2reg: on(0),
        constprop: on(1),
        cse: on(2),
        dce: on(3),
        tunnel: on(4),
        strength: on(5),
        schedule: on(6),
        sda: on(7),
        full_palette: on(8),
        validators: true,
    }
}

/// A human-readable label for lattice coordinates, relative to the nearer
/// of the two preset anchors: `verified`, `opt-full`, or e.g.
/// `verified+strength`, `opt-full-schedule-sda`. Injective over bits.
#[must_use]
pub fn describe_bits(bits: u16) -> String {
    let verified = config_bits(&PassConfig::for_level(OptLevel::Verified));
    let full = config_bits(&PassConfig::for_level(OptLevel::OptFull));
    if bits == verified {
        return "verified".to_owned();
    }
    if bits == full {
        return "opt-full".to_owned();
    }
    let (base, name) = if (bits ^ verified).count_ones() <= (bits ^ full).count_ones() {
        (verified, "verified")
    } else {
        (full, "opt-full")
    };
    let mut label = name.to_owned();
    for (i, flag) in LATTICE_FLAGS.iter().enumerate() {
        if bits & (1 << i) != 0 && base & (1 << i) == 0 {
            label.push('+');
            label.push_str(flag);
        }
    }
    for (i, flag) in LATTICE_FLAGS.iter().enumerate() {
        if bits & (1 << i) == 0 && base & (1 << i) != 0 {
            label.push('-');
            label.push_str(flag);
        }
    }
    label
}

/// The search request: which units to optimize, from which seed frontier,
/// on which machine, under which budget.
#[derive(Debug, Clone)]
pub struct SearchSpec {
    units: Vec<SweepUnit>,
    seeds: Vec<(String, PassConfig)>,
    machine: Option<(String, MachineConfig)>,
    max_probes: usize,
    prune_trials: u32,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            units: Vec::new(),
            seeds: Vec::new(),
            machine: None,
            max_probes: LATTICE_SIZE,
            prune_trials: 2,
        }
    }
}

impl SearchSpec {
    /// An empty spec: no units, default seeds
    /// ([`SearchSpec::default_seeds`]), the pipeline's machine, and a
    /// probe budget of the full lattice.
    #[must_use]
    pub fn new() -> SearchSpec {
        SearchSpec::default()
    }

    /// The default seed frontier when none is given: the `verified`
    /// baseline and the validated full optimizer — the two anchors the
    /// search expands between.
    #[must_use]
    pub fn default_seeds() -> Vec<(String, PassConfig)> {
        let full = PassConfig {
            validators: true,
            ..PassConfig::for_level(OptLevel::OptFull)
        };
        vec![
            (
                "verified".to_owned(),
                PassConfig::for_level(OptLevel::Verified),
            ),
            ("opt-full(validated)".to_owned(), full),
        ]
    }

    /// Appends a prepared unit to the unit axis.
    #[must_use]
    pub fn unit(mut self, unit: SweepUnit) -> Self {
        self.units.push(unit);
        self
    }

    /// Appends a dataflow node to the unit axis.
    #[must_use]
    pub fn node(self, node: &Node) -> Self {
        self.unit(SweepUnit::from_node(node))
    }

    /// Appends every node to the unit axis, in order.
    #[must_use]
    pub fn nodes<'a>(mut self, nodes: impl IntoIterator<Item = &'a Node>) -> Self {
        for node in nodes {
            self = self.node(node);
        }
        self
    }

    /// Appends a linked [`Application`] image to the unit axis.
    ///
    /// # Errors
    ///
    /// [`ApplicationError`] from linking the application's translation
    /// unit.
    pub fn application(self, app: &Application) -> Result<Self, ApplicationError> {
        Ok(self.unit(SweepUnit::from_application(app)?))
    }

    /// Appends a labeled seed to the seed frontier. `validators` is
    /// forced `true` at probe time regardless of the passed value.
    #[must_use]
    pub fn seed(mut self, label: &str, passes: &PassConfig) -> Self {
        self.seeds.push((label.to_owned(), *passes));
        self
    }

    /// The single target machine of the search (defaults to the
    /// pipeline's own machine, labeled `default`).
    #[must_use]
    pub fn machine(mut self, label: &str, machine: &MachineConfig) -> Self {
        self.machine = Some((label.to_owned(), machine.clone()));
        self
    }

    /// Caps the number of distinct lattice points probed per unit
    /// (seeds always probe; the cap stops further expansion). Clamped to
    /// [`LATTICE_SIZE`] — beyond it there is nothing left to probe.
    #[must_use]
    pub fn max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes.min(LATTICE_SIZE);
        self
    }

    /// Minimum number of probed `(c, c|F)` contexts before flag `F` may
    /// be dominance-pruned (default 2; `0` behaves as `1` — a pruning
    /// decision needs at least one observed context).
    #[must_use]
    pub fn prune_trials(mut self, trials: u32) -> Self {
        self.prune_trials = trials.max(1);
        self
    }

    /// The unit axis.
    #[must_use]
    pub fn units(&self) -> &[SweepUnit] {
        &self.units
    }

    /// The seed frontier (empty means [`SearchSpec::default_seeds`]).
    #[must_use]
    pub fn seeds(&self) -> &[(String, PassConfig)] {
        &self.seeds
    }
}

/// One probed lattice point of a node's search.
#[derive(Debug, Clone)]
pub struct ProbedConfig {
    /// Display label (a seed's given label, or the canonical
    /// [`describe_bits`] name for expanded configs).
    pub label: String,
    /// Lattice coordinates ([`config_bits`]).
    pub bits: u16,
    /// The probed pass selection (`validators` always `true`).
    pub passes: PassConfig,
    /// The analyzed WCET bound, in cycles.
    pub wcet: u64,
    /// The frontier generation that probed it (0 = seed).
    pub generation: u32,
    /// Label of the frontier config this probe was expanded from
    /// (`None` for seeds).
    pub parent: Option<String>,
}

/// One auditable dominance-pruning decision: after `generation`, enabling
/// `flag` had been observed in `trials` probed contexts without ever
/// reducing the WCET bound, so expansions enabling it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunedFlag {
    /// The pruned flag, one of [`LATTICE_FLAGS`].
    pub flag: &'static str,
    /// Number of probed `(c, c|flag)` contexts behind the decision.
    pub trials: u32,
    /// Generation after which the decision fired.
    pub generation: u32,
}

/// The completed search of one unit.
#[derive(Debug, Clone)]
pub struct NodeSearch {
    /// Unit name.
    pub unit: String,
    /// The winning probe: smallest WCET bound, earliest probe wins ties
    /// (seeds probe first, so a tie with a seed resolves to the seed).
    pub winner: ProbedConfig,
    /// The winning artifact (binary + replayable verdict + WCET report).
    pub artifact: Arc<Artifact>,
    /// Every probed lattice point, in probe order (seeds first).
    pub probed: Vec<ProbedConfig>,
    /// Dominance-pruning decisions, in the order they fired.
    pub pruned: Vec<PrunedFlag>,
    /// Frontier generations probed (1 = seeds only).
    pub generations: u32,
    /// Summed pipeline metrics of this unit's probe sweeps (`wall_ns` is
    /// the summed per-generation wall time).
    pub stats: PipelineStats,
}

impl NodeSearch {
    /// Number of distinct lattice points probed.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probed.len() as u64
    }

    /// Fraction of probes served from the artifact cache, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// The probed WCET bound at a pass selection's lattice point
    /// (`validators` is pinned, so selections differing only in it look
    /// up the same probe), or `None` if the search never probed it.
    #[must_use]
    pub fn wcet_of(&self, passes: &PassConfig) -> Option<u64> {
        let bits = config_bits(passes);
        self.probed.iter().find(|p| p.bits == bits).map(|p| p.wcet)
    }
}

/// Result of [`Pipeline::search_wcet`]: one [`NodeSearch`] per unit, in
/// spec order, plus aggregate metrics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Per-unit searches, in unit order.
    pub nodes: Vec<NodeSearch>,
    /// Aggregate pipeline metrics over every probe sweep of the search
    /// (`wall_ns` is the summed wall time of the sequential generations).
    pub stats: PipelineStats,
    trace: RunTrace,
}

impl SearchResult {
    /// The search's span trace on one continuous timeline: every
    /// generation's stage and per-pass spans, plus the probe-provenance
    /// events (`search:generation`, `search:probe`, `search:admitted`,
    /// `search:pruned-flag`).
    #[must_use]
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Total probes across all units.
    #[must_use]
    pub fn total_probes(&self) -> u64 {
        self.nodes.iter().map(NodeSearch::probes).sum()
    }

    /// Total pruning decisions across all units.
    #[must_use]
    pub fn total_pruned(&self) -> u64 {
        self.nodes.iter().map(|n| n.pruned.len() as u64).sum()
    }

    /// A digest of the full search trace — per unit: winner, every probed
    /// lattice point with its bound and generation, and every pruning
    /// decision. Equal digests mean the searches took identical paths to
    /// identical winners. Cache hit rates and timings are deliberately
    /// excluded: they vary with cache state, the trace must not.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        for node in &self.nodes {
            h.str(&node.unit)
                .str(&node.winner.label)
                .u32(u32::from(node.winner.bits))
                .u64(node.winner.wcet)
                .u32(node.generations);
            h.u32(node.probed.len() as u32);
            for p in &node.probed {
                h.str(&p.label)
                    .u32(u32::from(p.bits))
                    .u64(p.wcet)
                    .u32(p.generation);
            }
            h.u32(node.pruned.len() as u32);
            for d in &node.pruned {
                h.str(d.flag).u32(d.trials).u32(d.generation);
            }
        }
        h.finish()
    }
}

impl fmt::Display for SearchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "search {} units: {} probes, {} pruned flags, {:.1}% cache hits",
            self.nodes.len(),
            self.total_probes(),
            self.total_pruned(),
            self.stats.hit_rate() * 100.0,
        )
    }
}

/// The per-unit search state while generations run.
struct UnitSearch {
    /// Probes in probe order.
    probed: Vec<ProbedConfig>,
    /// bits → index into `probed`.
    index: BTreeMap<u16, usize>,
    /// label → bits, to keep labels injective.
    labels: BTreeMap<String, u16>,
    /// Winner index into `probed` (first strict minimum).
    winner: usize,
    /// The winner's artifact.
    artifact: Option<Arc<Artifact>>,
    /// Frontier of the *next* expansion: bits, in probe order.
    frontier: Vec<u16>,
    /// Per-flag pruned marker.
    flag_pruned: [bool; LATTICE_FLAGS.len()],
    /// Pruning decisions, in firing order.
    pruned: Vec<PrunedFlag>,
    generations: u32,
    stats: PipelineStats,
}

impl UnitSearch {
    fn new() -> UnitSearch {
        UnitSearch {
            probed: Vec::new(),
            index: BTreeMap::new(),
            labels: BTreeMap::new(),
            winner: 0,
            artifact: None,
            frontier: Vec::new(),
            flag_pruned: [false; LATTICE_FLAGS.len()],
            pruned: Vec::new(),
            generations: 0,
            stats: PipelineStats::default(),
        }
    }

    /// A unique display label for `bits` (canonical name, de-collided
    /// against seed labels if necessary).
    fn label_for(&self, bits: u16) -> String {
        let canonical = describe_bits(bits);
        match self.labels.get(&canonical) {
            Some(&taken) if taken != bits => format!("{canonical}#{bits:03x}"),
            _ => canonical,
        }
    }

    /// Records one probe's result; updates the winner (strictly-less
    /// scan: the first minimum wins ties).
    fn record(
        &mut self,
        label: String,
        bits: u16,
        wcet: u64,
        generation: u32,
        parent: Option<String>,
        artifact: &Arc<Artifact>,
    ) {
        let idx = self.probed.len();
        self.labels.insert(label.clone(), bits);
        self.index.insert(bits, idx);
        self.probed.push(ProbedConfig {
            label,
            bits,
            passes: bits_config(bits),
            wcet,
            generation,
            parent,
        });
        if self.artifact.is_none() || wcet < self.probed[self.winner].wcet {
            self.winner = idx;
            self.artifact = Some(Arc::clone(artifact));
        }
    }

    /// Scans every probed `(c, c|F)` pair and prunes flags that never
    /// helped across at least `min_trials` contexts.
    fn update_pruning(&mut self, min_trials: u32, generation: u32) {
        for (i, flag) in LATTICE_FLAGS.iter().enumerate() {
            if self.flag_pruned[i] {
                continue;
            }
            let mask = 1u16 << i;
            let mut trials = 0u32;
            let mut helped = false;
            for (&bits, &without) in &self.index {
                if bits & mask != 0 {
                    continue;
                }
                if let Some(&with) = self.index.get(&(bits | mask)) {
                    trials += 1;
                    if self.probed[with].wcet < self.probed[without].wcet {
                        helped = true;
                        break;
                    }
                }
            }
            if trials >= min_trials && !helped {
                self.flag_pruned[i] = true;
                self.pruned.push(PrunedFlag {
                    flag,
                    trials,
                    generation,
                });
            }
        }
    }

    /// The next generation's probe list: every frontier config expanded
    /// by one flag flip, skipping probed points, duplicate schedules and
    /// flips that *enable* a pruned flag. Respects the probe budget.
    fn expansions(&self, max_probes: usize) -> Vec<(u16, u16)> {
        let mut scheduled: Vec<(u16, u16)> = Vec::new();
        let mut seen: BTreeMap<u16, ()> = BTreeMap::new();
        for &from in &self.frontier {
            for (i, _) in LATTICE_FLAGS.iter().enumerate() {
                if self.probed.len() + scheduled.len() >= max_probes {
                    return scheduled;
                }
                let mask = 1u16 << i;
                let to = from ^ mask;
                let enabling = to & mask != 0;
                if enabling && self.flag_pruned[i] {
                    continue;
                }
                if self.index.contains_key(&to) || seen.contains_key(&to) {
                    continue;
                }
                seen.insert(to, ());
                scheduled.push((to, from));
            }
        }
        scheduled
    }

    fn finish(mut self, unit: String) -> NodeSearch {
        let winner = self.probed[self.winner].clone();
        NodeSearch {
            unit,
            winner,
            artifact: self.artifact.take().expect("at least one probe"),
            probed: self.probed,
            pruned: self.pruned,
            generations: self.generations,
            stats: self.stats,
        }
    }
}

impl Pipeline {
    /// Runs the WCET-guided lattice search of a [`SearchSpec`]: per unit,
    /// a deterministic frontier search from the seed configs, one batched
    /// probe sweep per generation, dominance pruning recorded in the
    /// result. Every probe keeps `validators: true`.
    ///
    /// # Errors
    ///
    /// The first [`PipelineError`] any probe hit.
    ///
    /// # Panics
    ///
    /// Panics when the seed frontier is empty **and**
    /// [`SearchSpec::default_seeds`] was disabled by a zero probe budget —
    /// i.e. never in practice; seeds always probe.
    pub fn search_wcet(&self, spec: &SearchSpec) -> Result<SearchResult, PipelineError> {
        let seeds = if spec.seeds.is_empty() {
            SearchSpec::default_seeds()
        } else {
            spec.seeds.clone()
        };
        let machine = spec
            .machine
            .clone()
            .unwrap_or_else(|| ("default".to_owned(), self.machine().clone()));

        // one epoch for the whole search: every generation's spans land on
        // a single timeline
        let epoch = Instant::now();
        let mut aggregate = PipelineStats::default();
        let mut wall_sum = 0u64;
        let mut trace = RunTrace::new();
        let mut nodes = Vec::with_capacity(spec.units.len());
        for unit in &spec.units {
            let search = self.search_unit(unit, &seeds, &machine, spec, epoch, &mut trace)?;
            aggregate.merge(&search.stats);
            // units search sequentially: the aggregate wall is their sum,
            // not the max the concurrent-cell merge takes
            wall_sum = wall_sum.saturating_add(search.stats.wall_ns);
            nodes.push(search);
        }
        aggregate.wall_ns = wall_sum;
        Ok(SearchResult {
            nodes,
            stats: aggregate,
            trace,
        })
    }

    /// One unit's frontier search. Sweep spans and provenance events
    /// append to `trace`, timestamped against the search-wide `epoch`.
    fn search_unit(
        &self,
        unit: &SweepUnit,
        seeds: &[(String, PassConfig)],
        machine: &(String, MachineConfig),
        spec: &SearchSpec,
        epoch: Instant,
        trace: &mut RunTrace,
    ) -> Result<NodeSearch, PipelineError> {
        let now_ns = || saturating_nanos(Instant::now().saturating_duration_since(epoch));
        let mut state = UnitSearch::new();

        // Generation 0: the seed frontier. Seeds sharing lattice
        // coordinates (duplicate bit patterns under different labels)
        // probe once and report under the first label.
        let mut seed_batch: Vec<(String, u16)> = Vec::new();
        for (label, passes) in seeds {
            let bits = config_bits(passes);
            if !seed_batch.iter().any(|(_, b)| *b == bits) {
                seed_batch.push((label.clone(), bits));
            }
        }
        trace.push(Span::event(
            "search:generation",
            0,
            now_ns(),
            &format!("unit={} gen=0 probes={}", unit.name, seed_batch.len()),
        ));
        let results = self.probe_batch(unit, machine, &seed_batch, epoch)?;
        state.stats.merge(&results.stats);
        let mut wall_sum = results.stats.wall_ns;
        trace.merge(results.trace);
        for ((label, bits), (wcet, artifact)) in seed_batch.iter().zip(&results.cells) {
            state.record(label.clone(), *bits, *wcet, 0, None, artifact);
            state.frontier.push(*bits);
        }
        state.generations = 1;

        // Expansion generations: flood downhill until the frontier dries
        // up or the probe budget is spent.
        loop {
            let pruned_before = state.pruned.len();
            state.update_pruning(spec.prune_trials, state.generations - 1);
            for d in &state.pruned[pruned_before..] {
                trace.push(Span::event(
                    "search:pruned-flag",
                    0,
                    now_ns(),
                    &format!(
                        "unit={} flag={} trials={} gen={}",
                        unit.name, d.flag, d.trials, d.generation
                    ),
                ));
            }
            let scheduled = state.expansions(spec.max_probes);
            if scheduled.is_empty() {
                break;
            }
            let generation = state.generations;
            let batch: Vec<(String, u16)> = scheduled
                .iter()
                .map(|&(bits, _)| (state.label_for(bits), bits))
                .collect();
            trace.push(Span::event(
                "search:generation",
                0,
                now_ns(),
                &format!("unit={} gen={generation} probes={}", unit.name, batch.len()),
            ));
            let results = self.probe_batch(unit, machine, &batch, epoch)?;
            state.stats.merge(&results.stats);
            wall_sum = wall_sum.saturating_add(results.stats.wall_ns);
            trace.merge(results.trace);
            let mut next_frontier = Vec::new();
            for (((label, bits), &(_, parent)), (wcet, artifact)) in
                batch.iter().zip(&scheduled).zip(&results.cells)
            {
                let parent_idx = state.index[&parent];
                let parent_label = state.probed[parent_idx].label.clone();
                let parent_wcet = state.probed[parent_idx].wcet;
                let flipped = LATTICE_FLAGS[(bits ^ parent).trailing_zeros() as usize];
                trace.push(Span::event(
                    "search:probe",
                    0,
                    now_ns(),
                    &format!("unit={} config={label} flipped={flipped}", unit.name),
                ));
                state.record(
                    label.clone(),
                    *bits,
                    *wcet,
                    generation,
                    Some(parent_label),
                    artifact,
                );
                if *wcet < parent_wcet {
                    trace.push(Span::event(
                        "search:admitted",
                        0,
                        now_ns(),
                        &format!("unit={} config={label}", unit.name),
                    ));
                    next_frontier.push(*bits);
                }
            }
            state.frontier = next_frontier;
            state.generations += 1;
        }
        // the generations ran sequentially, so the unit's wall is the sum
        // of the per-sweep walls — the concurrent-cell merge above took
        // the max instead (documented on `NodeSearch::stats`)
        state.stats.wall_ns = wall_sum;
        Ok(state.finish(unit.name.clone()))
    }

    /// Probes one batch of lattice points as a single sweep (1 unit × k
    /// configs × 1 machine) and returns `(wcet, artifact)` per point, in
    /// batch order.
    fn probe_batch(
        &self,
        unit: &SweepUnit,
        machine: &(String, MachineConfig),
        batch: &[(String, u16)],
        epoch: Instant,
    ) -> Result<ProbeBatch, PipelineError> {
        let mut sweep = SweepSpec::new()
            .unit(unit.clone())
            .machine(&machine.0, &machine.1);
        for (label, bits) in batch {
            sweep = sweep.config(label, &bits_config(*bits));
        }
        let mut result = self.run_sweep_at(&sweep, epoch)?;
        Ok(ProbeBatch {
            cells: result
                .cells()
                .iter()
                .map(|c| (c.wcet(), Arc::clone(&c.outcome.artifact)))
                .collect(),
            trace: result.take_trace(),
            stats: result.stats,
        })
    }
}

/// One generation's probe results, in batch order.
struct ProbeBatch {
    cells: Vec<(u64, Arc<Artifact>)>,
    stats: PipelineStats,
    trace: RunTrace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_dataflow::fleet;

    #[test]
    fn bits_roundtrip_and_labels() {
        let verified = PassConfig::for_level(OptLevel::Verified);
        let full = PassConfig::for_level(OptLevel::OptFull);
        assert_eq!(bits_config(config_bits(&verified)), verified);
        assert_eq!(bits_config(config_bits(&full)), full);
        // validators is not a lattice coordinate
        let unvalidated = PassConfig {
            validators: false,
            ..full
        };
        assert_eq!(config_bits(&unvalidated), config_bits(&full));
        // every lattice point round-trips and has validators pinned
        for bits in 0..LATTICE_SIZE as u16 {
            let p = bits_config(bits);
            assert!(p.validators);
            assert_eq!(config_bits(&p), bits);
        }
        assert_eq!(describe_bits(config_bits(&verified)), "verified");
        assert_eq!(describe_bits(config_bits(&full)), "opt-full");
        assert_eq!(
            describe_bits(config_bits(&PassConfig {
                strength: true,
                ..verified
            })),
            "verified+strength"
        );
        assert_eq!(
            describe_bits(config_bits(&PassConfig { sda: false, ..full })),
            "opt-full-sda"
        );
        // opt-full minus schedule+sda IS verified+strength: the nearer
        // anchor names it
        assert_eq!(
            describe_bits(config_bits(&PassConfig {
                schedule: false,
                sda: false,
                ..full
            })),
            "verified+strength"
        );
        // labels are injective: distinct bits never share a label
        let mut seen = std::collections::BTreeMap::new();
        for bits in 0..LATTICE_SIZE as u16 {
            let label = describe_bits(bits);
            assert!(
                seen.insert(label.clone(), bits).is_none(),
                "label `{label}` names two lattice points"
            );
        }
    }

    #[test]
    fn search_beats_or_matches_every_seed_and_pins_validators() {
        let nodes: Vec<_> = fleet::named_suite().into_iter().take(3).collect();
        let spec = SearchSpec::new().nodes(&nodes);
        let result = Pipeline::in_memory().search_wcet(&spec).expect("search");
        assert_eq!(result.nodes.len(), 3);
        for node in &result.nodes {
            // winner never worse than any probe, in particular any seed
            for p in &node.probed {
                assert!(node.winner.wcet <= p.wcet, "{}: winner beaten", node.unit);
                assert!(p.passes.validators, "{}: unvalidated probe", node.unit);
            }
            // seeds probe first
            assert_eq!(node.probed[0].label, "verified");
            assert_eq!(node.probed[0].generation, 0);
            assert!(node.generations >= 1);
            // the winner artifact matches the winner's recorded bound
            assert_eq!(node.artifact.report.wcet, node.winner.wcet);
            assert!(node.artifact.verdict.allocation_checked);
        }
    }

    #[test]
    fn duplicate_seed_bits_probe_once_under_the_first_label() {
        let nodes: Vec<_> = fleet::named_suite().into_iter().take(1).collect();
        let verified = PassConfig::for_level(OptLevel::Verified);
        let spec = SearchSpec::new()
            .nodes(&nodes)
            .seed("verified", &verified)
            .seed("verified-again", &verified)
            .max_probes(1);
        let result = Pipeline::in_memory().search_wcet(&spec).expect("search");
        let node = &result.nodes[0];
        assert_eq!(node.probes(), 1);
        assert_eq!(node.probed[0].label, "verified");
        assert_eq!(node.wcet_of(&verified), Some(node.winner.wcet));
    }

    #[test]
    fn probe_budget_caps_expansion_but_seeds_always_probe() {
        let nodes: Vec<_> = fleet::named_suite().into_iter().take(1).collect();
        let spec = SearchSpec::new().nodes(&nodes).max_probes(4);
        let result = Pipeline::in_memory().search_wcet(&spec).expect("search");
        let node = &result.nodes[0];
        assert!(node.probes() <= 4, "budget exceeded: {}", node.probes());
        assert!(node.probes() >= 2, "seeds must probe");
    }

    #[test]
    fn warm_research_replays_every_probe_and_keeps_the_digest() {
        let nodes: Vec<_> = fleet::named_suite().into_iter().take(2).collect();
        let spec = SearchSpec::new().nodes(&nodes);
        let pipeline = Pipeline::in_memory();
        let cold = pipeline.search_wcet(&spec).expect("cold search");
        let warm = pipeline.search_wcet(&spec).expect("warm search");
        assert_eq!(cold.digest(), warm.digest(), "search trace diverged");
        assert_eq!(warm.stats.jobs_run, 0);
        assert_eq!(warm.stats.jobs_cached, cold.stats.jobs_total());
        assert!(warm.stats.hit_rate() > 0.99);
        // hit rates differ between the runs, the digest must not care
        assert!(cold.stats.hit_rate() < warm.stats.hit_rate());
    }

    #[test]
    fn pruning_decisions_are_recorded_and_audited() {
        // search enough nodes that at least one flag gets pruned on at
        // least one node (schedule/sda typically never help the bound)
        let nodes: Vec<_> = fleet::named_suite().into_iter().take(4).collect();
        let spec = SearchSpec::new().nodes(&nodes);
        let result = Pipeline::in_memory().search_wcet(&spec).expect("search");
        assert!(
            result.total_pruned() > 0,
            "dominance pruning never fired across {} nodes",
            result.nodes.len()
        );
        for node in &result.nodes {
            for d in &node.pruned {
                assert!(LATTICE_FLAGS.contains(&d.flag));
                assert!(d.trials >= 2, "pruned below the trial floor");
                // audit: re-derive the decision from the probe trace —
                // enabling the flag must never have reduced the bound
                // among pairs probed at decision time
                let i = LATTICE_FLAGS.iter().position(|f| *f == d.flag).unwrap();
                let mask = 1u16 << i;
                let at_decision: Vec<_> = node
                    .probed
                    .iter()
                    .filter(|p| p.generation <= d.generation)
                    .collect();
                for p in &at_decision {
                    if p.bits & mask != 0 {
                        continue;
                    }
                    if let Some(with) = at_decision.iter().find(|q| q.bits == p.bits | mask) {
                        assert!(
                            with.wcet >= p.wcet,
                            "{}: {} was pruned but helped ({} < {})",
                            node.unit,
                            d.flag,
                            with.wcet,
                            p.wcet
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_units_yield_empty_result() {
        let result = Pipeline::in_memory()
            .search_wcet(&SearchSpec::new())
            .expect("empty search");
        assert!(result.nodes.is_empty());
        assert_eq!(result.total_probes(), 0);
        assert_eq!(result.stats.jobs_total(), 0);
    }
}
