//! # vericomp-pipeline — the parallel compilation service
//!
//! The paper's evaluation compiles and WCET-analyzes dozens of nodes per
//! experiment, and the production setting it models (§2: thousands of
//! generated files per flight-control release) makes compilation
//! *throughput* part of the adoption story. This crate turns the repo's
//! node → binary → WCET pipeline into schedulable, cacheable jobs:
//!
//! * [`pool`] — a std-only work-stealing thread pool and a
//!   dependency-aware [`JobGraph`], no external crates;
//! * [`hash`] — stable 128-bit content digests ([`Digest`]);
//! * [`store`] — the content-addressed [`ArtifactStore`]: compiled
//!   binaries, translation-validator verdicts and WCET reports keyed by
//!   [`artifact_key`], with optional on-disk persistence;
//! * [`stats`] — [`PipelineStats`] run metrics (jobs run/cached, per-stage
//!   wall time, cache hit rate);
//! * [`service`] — the [`Pipeline`] driver tying them together (the
//!   `compile_fleet` binary lives in the root `vericomp` crate, where it
//!   can also reach the testkit scenario suite);
//! * [`sweep`] — the first-class compile request: a [`SweepSpec`] matrix
//!   of (units × configs × machines) that [`Pipeline::run_sweep`] shards
//!   across the pool with full cross-cell cache reuse, returning a
//!   [`SweepResult`] with indexed lookup and per-axis aggregation;
//! * [`search`] — the closed-loop optimizer on top of the sweeps:
//!   [`Pipeline::search_wcet`] runs a deterministic, dominance-pruned
//!   frontier search over the `PassConfig` lattice per node, probing each
//!   generation as one batched sweep so re-search after an edit replays
//!   from cache, with `validators: true` pinned on every probe;
//! * [`trace`] — structured run telemetry: every sweep and search records
//!   per-job stage spans, nested per-pass spans and search provenance
//!   events into a [`RunTrace`], exportable as Chrome trace-event JSON
//!   (Perfetto-loadable) or a deterministic text [`Profile`];
//! * [`proto`] / [`server`] / [`client`] — the compile service: a
//!   content-negotiated `.vcart`-style wire protocol over a Unix socket
//!   (units travel by [`source_digest`] through a `have`/`need`
//!   exchange; bodies and the big sweep payload ride in length-prefixed
//!   blobs), a long-lived [`Server`] daemon owning one warm sharded
//!   [`ArtifactStore`] (size-bounded, deterministic eviction) plus a
//!   bounded digest-addressed parse cache — each distinct unit parses
//!   once per digest across requests, batches and clients — and the
//!   blocking [`Client`], whose warm repeat requests ship zero unit
//!   bodies. Every served response digest is bit-identical to a solo
//!   [`Pipeline::run_sweep`] of the same request.
//!
//! ## Correctness story
//!
//! Translation validation (paper §3.5) already makes every compilation
//! carry its own evidence: the validators accept or the compiler fails.
//! The cache preserves that story by construction — an artifact is
//! inserted only on the success path, *after* the validators accepted, and
//! a cache hit replays the stored [`Verdict`] for inputs whose digest is
//! identical to the validated run's. Incremental rebuilds need no dirty
//! bits: a changed node changes its generated source and therefore its
//! key, so exactly the dirty cone misses.
//!
//! ```
//! use vericomp_pipeline::{Pipeline, SweepSpec};
//! use vericomp_core::OptLevel;
//! use vericomp_dataflow::fleet;
//!
//! let pipeline = Pipeline::in_memory();
//! let nodes = fleet::named_suite();
//! let spec = SweepSpec::new()
//!     .nodes(&nodes[..4])
//!     .levels([OptLevel::PatternO0, OptLevel::Verified]);
//! let cold = pipeline.run_sweep(&spec)?;
//! let warm = pipeline.run_sweep(&spec)?;
//! assert_eq!(warm.stats.jobs_cached, 8);       // everything replayed
//! assert_eq!(cold.digest(), warm.digest());    // bit-identical outputs
//! let cell = &warm[(nodes[0].name(), "verified", "default")];
//! assert!(cell.outcome.cached);
//! # Ok::<(), vericomp_pipeline::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod hash;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod recorder;
pub mod search;
pub mod server;
pub mod service;
pub mod stats;
pub mod store;
pub mod sweep;
pub mod trace;

pub use client::{Client, ClientError};
pub use hash::{Digest, Hasher};
pub use metrics::{bucket_index, bucket_upper, Histogram, Registry, HIST_BUCKETS};
pub use pool::{JobGraph, JobId, ThreadPool};
pub use proto::{
    cells_digest, frame_text, normalize_spec, read_frame, CellSummary, ProtoError, Request,
    Response, ServerStats, SweepResponse, WireSweep, WireUnit, MAX_BLOB_BYTES, PROTO_MINOR,
    PROTO_VERSION,
};
pub use recorder::{FlightRecorder, RecorderEvent, DEFAULT_RECORDER_CAP};
pub use search::{
    bits_config, config_bits, describe_bits, NodeSearch, ProbedConfig, PrunedFlag, SearchResult,
    SearchSpec, LATTICE_FLAGS, LATTICE_SIZE,
};
pub use server::{Server, ServerOptions};
pub use service::{
    CompileUnit, CompileUnitBuilder, FleetResult, OptionsError, Pipeline, PipelineError,
    PipelineOptions, PipelineOptionsBuilder, UnitOutcome, MAX_JOBS,
};
pub use stats::{saturating_nanos, PipelineStats, StatsCell};
pub use store::{
    artifact_key, machine_digest, source_digest, Artifact, ArtifactStore, ParsedUnit, StoreConfig,
    Verdict, FORMAT_VERSION,
};
pub use sweep::{ReanalysisAudit, SweepCell, SweepResult, SweepSpec, SweepUnit};
pub use trace::{Profile, ProfileRow, RunTrace, Span, SpanKind, TraceSink, STAGE_NAMES};
