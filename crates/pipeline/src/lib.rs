//! # vericomp-pipeline — the parallel compilation service
//!
//! The paper's evaluation compiles and WCET-analyzes dozens of nodes per
//! experiment, and the production setting it models (§2: thousands of
//! generated files per flight-control release) makes compilation
//! *throughput* part of the adoption story. This crate turns the repo's
//! node → binary → WCET pipeline into schedulable, cacheable jobs:
//!
//! * [`pool`] — a std-only work-stealing thread pool and a
//!   dependency-aware [`JobGraph`], no external crates;
//! * [`hash`] — stable 128-bit content digests ([`Digest`]);
//! * [`store`] — the content-addressed [`ArtifactStore`]: compiled
//!   binaries, translation-validator verdicts and WCET reports keyed by
//!   [`artifact_key`], with optional on-disk persistence;
//! * [`stats`] — [`PipelineStats`] run metrics (jobs run/cached, per-stage
//!   wall time, cache hit rate);
//! * [`service`] — the [`Pipeline`] driver tying them together, plus the
//!   `compile_fleet` binary.
//!
//! ## Correctness story
//!
//! Translation validation (paper §3.5) already makes every compilation
//! carry its own evidence: the validators accept or the compiler fails.
//! The cache preserves that story by construction — an artifact is
//! inserted only on the success path, *after* the validators accepted, and
//! a cache hit replays the stored [`Verdict`] for inputs whose digest is
//! identical to the validated run's. Incremental rebuilds need no dirty
//! bits: a changed node changes its generated source and therefore its
//! key, so exactly the dirty cone misses.
//!
//! ```
//! use vericomp_pipeline::{CompileUnit, Pipeline};
//! use vericomp_core::{OptLevel, PassConfig};
//! use vericomp_dataflow::fleet;
//!
//! let pipeline = Pipeline::in_memory();
//! let nodes = fleet::named_suite();
//! let passes = PassConfig::for_level(OptLevel::Verified);
//! let cold = pipeline.compile_fleet(&nodes[..4], &passes, "verified")?;
//! let warm = pipeline.compile_fleet(&nodes[..4], &passes, "verified")?;
//! assert_eq!(warm.stats.jobs_cached, 4);       // everything replayed
//! assert_eq!(cold.digest(), warm.digest());    // bit-identical outputs
//! # Ok::<(), vericomp_pipeline::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
pub mod pool;
pub mod service;
pub mod stats;
pub mod store;

pub use hash::{Digest, Hasher};
pub use pool::{JobGraph, JobId, ThreadPool};
pub use service::{
    CompileUnit, FleetResult, Pipeline, PipelineError, PipelineOptions, UnitOutcome,
};
pub use stats::{PipelineStats, StatsCell};
pub use store::{artifact_key, machine_digest, Artifact, ArtifactStore, Verdict, FORMAT_VERSION};
