//! Pipeline metrics: job counts, cache hit rate, per-stage wall time.
//!
//! Collection happens through [`StatsCell`], a lock-free atomic collector
//! shared by every worker; drivers snapshot it into the plain
//! [`PipelineStats`] value at the end of a run and print it with
//! [`PipelineStats::render`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Converts a [`Duration`] to whole nanoseconds, saturating at
/// `u64::MAX` instead of silently truncating the way `as_nanos() as u64`
/// does. Shared by every stats counter and trace span in the pipeline —
/// a `u64` holds ~584 years of nanoseconds, so saturation is the right
/// behavior for the pathological case, and truncation never is.
#[must_use]
pub fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A snapshot of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Units compiled from scratch (compile + validate + analyze ran).
    pub jobs_run: u64,
    /// Units served from the artifact cache (verdict replayed).
    pub jobs_cached: u64,
    /// Wall time summed across workers in the compile+validate stage.
    pub compile_ns: u64,
    /// Wall time summed across workers in the WCET-analysis stage.
    pub analyze_ns: u64,
    /// Wall time summed across workers in cache lookup/insert.
    pub store_ns: u64,
    /// End-to-end wall time of the run (single clock, not summed).
    pub wall_ns: u64,
}

impl PipelineStats {
    /// Total units processed.
    #[must_use]
    pub fn jobs_total(&self) -> u64 {
        self.jobs_run + self.jobs_cached
    }

    /// Fraction of units served from cache, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.jobs_total();
        if total == 0 {
            0.0
        } else {
            self.jobs_cached as f64 / total as f64
        }
    }

    /// Accumulates another run's (or cell's) counters into this one.
    /// Counters and stage times add; `wall_ns` takes the **max** — merged
    /// stats usually come from cells that ran concurrently, where summing
    /// their walls would fabricate an end-to-end time longer than the run
    /// itself. Callers merging *sequential* runs (e.g. the per-generation
    /// sweeps of a search) must accumulate their own wall sum and
    /// overwrite `wall_ns` after merging.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.jobs_run += other.jobs_run;
        self.jobs_cached += other.jobs_cached;
        self.compile_ns += other.compile_ns;
        self.analyze_ns += other.analyze_ns;
        self.store_ns += other.store_ns;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
    }

    /// Multi-line human-readable report, one `pipeline:`-prefixed line per
    /// metric so driver output stays greppable.
    #[must_use]
    pub fn render(&self) -> String {
        let ms = |ns: u64| Duration::from_nanos(ns).as_secs_f64() * 1e3;
        format!(
            "pipeline: jobs {} run, {} cached ({:.1}% hit rate)\n\
             pipeline: stage wall time: compile {:.2} ms, analyze {:.2} ms, store {:.2} ms\n\
             pipeline: end-to-end {:.2} ms",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate() * 100.0,
            ms(self.compile_ns),
            ms(self.analyze_ns),
            ms(self.store_ns),
            ms(self.wall_ns),
        )
    }

    /// One-line JSON object over every field plus the derived hit rate —
    /// the one schema every `BENCH_*.json` stats block shares, so
    /// benchmark trajectories can be diffed across PRs without scraping
    /// hand-formatted text.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"jobs_run\": {}, \"jobs_cached\": {}, \"hit_rate\": {:.6}, \
             \"compile_ns\": {}, \"analyze_ns\": {}, \"store_ns\": {}, \"wall_ns\": {}}}",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate(),
            self.compile_ns,
            self.analyze_ns,
            self.store_ns,
            self.wall_ns,
        )
    }

    /// One-line summary for drivers that print many runs (e.g. the fleet
    /// binary's `--search` mode prints one line per search). Deliberately
    /// omits wall times so the line is stable across reruns of identical
    /// work — only the counters, which are deterministic.
    #[must_use]
    pub fn render_compact(&self) -> String {
        format!(
            "pipeline: {} run / {} cached ({:.1}% hit rate)",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate() * 100.0,
        )
    }
}

/// Thread-safe stats collector. All counters are relaxed — they are
/// telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct StatsCell {
    jobs_run: AtomicU64,
    jobs_cached: AtomicU64,
    compile_ns: AtomicU64,
    analyze_ns: AtomicU64,
    store_ns: AtomicU64,
}

impl StatsCell {
    /// A zeroed collector.
    #[must_use]
    pub fn new() -> StatsCell {
        StatsCell::default()
    }

    /// Records one from-scratch compilation.
    pub fn count_run(&self) {
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache hit.
    pub fn count_cached(&self) {
        self.jobs_cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds compile-stage wall time.
    pub fn add_compile(&self, d: Duration) {
        self.compile_ns
            .fetch_add(saturating_nanos(d), Ordering::Relaxed);
    }

    /// Adds analysis-stage wall time.
    pub fn add_analyze(&self, d: Duration) {
        self.analyze_ns
            .fetch_add(saturating_nanos(d), Ordering::Relaxed);
    }

    /// Adds store lookup/insert wall time.
    pub fn add_store(&self, d: Duration) {
        self.store_ns
            .fetch_add(saturating_nanos(d), Ordering::Relaxed);
    }

    /// Snapshots the counters, stamping `wall` as the end-to-end time.
    #[must_use]
    pub fn snapshot(&self, wall: Duration) -> PipelineStats {
        PipelineStats {
            jobs_run: self.jobs_run.load(Ordering::Relaxed),
            jobs_cached: self.jobs_cached.load(Ordering::Relaxed),
            compile_ns: self.compile_ns.load(Ordering::Relaxed),
            analyze_ns: self.analyze_ns.load(Ordering::Relaxed),
            store_ns: self.store_ns.load(Ordering::Relaxed),
            wall_ns: saturating_nanos(wall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_render() {
        let cell = StatsCell::new();
        for _ in 0..3 {
            cell.count_run();
        }
        cell.count_cached();
        cell.add_compile(Duration::from_millis(2));
        let stats = cell.snapshot(Duration::from_millis(5));
        assert_eq!(stats.jobs_total(), 4);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        let text = stats.render();
        assert!(text.contains("3 run"));
        assert!(text.contains("1 cached"));
        assert!(text.contains("25.0% hit rate"));
        let compact = stats.render_compact();
        assert_eq!(compact, "pipeline: 3 run / 1 cached (25.0% hit rate)");
    }

    #[test]
    fn empty_run_has_zero_hit_rate() {
        assert_eq!(PipelineStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters_but_takes_the_max_wall() {
        let a = PipelineStats {
            jobs_run: 2,
            jobs_cached: 1,
            compile_ns: 100,
            analyze_ns: 10,
            store_ns: 1,
            wall_ns: 500,
        };
        let b = PipelineStats {
            jobs_run: 1,
            jobs_cached: 3,
            compile_ns: 50,
            analyze_ns: 20,
            store_ns: 2,
            wall_ns: 300,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.jobs_run, 3);
        assert_eq!(merged.jobs_cached, 4);
        assert_eq!(merged.compile_ns, 150);
        assert_eq!(merged.analyze_ns, 30);
        assert_eq!(merged.store_ns, 3);
        // concurrent cells: the merged wall is the longest cell, never the
        // sum (which would exceed the run's own end-to-end clock)
        assert_eq!(merged.wall_ns, 500);
    }

    #[test]
    fn to_json_is_a_single_line_with_every_field() {
        let stats = PipelineStats {
            jobs_run: 3,
            jobs_cached: 1,
            compile_ns: 42,
            analyze_ns: 7,
            store_ns: 5,
            wall_ns: 60,
        };
        let json = stats.to_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs_run\": 3"));
        assert!(json.contains("\"jobs_cached\": 1"));
        assert!(json.contains("\"hit_rate\": 0.250000"));
        assert!(json.contains("\"compile_ns\": 42"));
        assert!(json.contains("\"analyze_ns\": 7"));
        assert!(json.contains("\"store_ns\": 5"));
        assert!(json.contains("\"wall_ns\": 60"));
    }

    #[test]
    fn nanosecond_conversion_saturates_instead_of_truncating() {
        assert_eq!(saturating_nanos(Duration::from_nanos(17)), 17);
        assert_eq!(saturating_nanos(Duration::from_nanos(u64::MAX)), u64::MAX);
        // past u64::MAX nanoseconds (~584 years) the old cast wrapped;
        // the helper pins to the ceiling
        assert_eq!(saturating_nanos(Duration::MAX), u64::MAX);
        assert_eq!(
            saturating_nanos(Duration::from_secs(u64::MAX / 1_000_000_000 + 1)),
            u64::MAX
        );
    }
}
