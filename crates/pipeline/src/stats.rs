//! Pipeline metrics: job counts, cache hit rate, per-stage wall time.
//!
//! Collection happens through [`StatsCell`], a lock-free atomic collector
//! shared by every worker; drivers snapshot it into the plain
//! [`PipelineStats`] value at the end of a run and print it with
//! [`PipelineStats::render`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A snapshot of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Units compiled from scratch (compile + validate + analyze ran).
    pub jobs_run: u64,
    /// Units served from the artifact cache (verdict replayed).
    pub jobs_cached: u64,
    /// Wall time summed across workers in the compile+validate stage.
    pub compile_ns: u64,
    /// Wall time summed across workers in the WCET-analysis stage.
    pub analyze_ns: u64,
    /// Wall time summed across workers in cache lookup/insert.
    pub store_ns: u64,
    /// End-to-end wall time of the run (single clock, not summed).
    pub wall_ns: u64,
}

impl PipelineStats {
    /// Total units processed.
    #[must_use]
    pub fn jobs_total(&self) -> u64 {
        self.jobs_run + self.jobs_cached
    }

    /// Fraction of units served from cache, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.jobs_total();
        if total == 0 {
            0.0
        } else {
            self.jobs_cached as f64 / total as f64
        }
    }

    /// Accumulates another run's (or cell's) counters into this one.
    /// Counters and stage times add; `wall_ns` adds too, which makes the
    /// merge of per-cell stats a *summed* wall (callers tracking a single
    /// end-to-end clock should overwrite `wall_ns` after merging).
    pub fn merge(&mut self, other: &PipelineStats) {
        self.jobs_run += other.jobs_run;
        self.jobs_cached += other.jobs_cached;
        self.compile_ns += other.compile_ns;
        self.analyze_ns += other.analyze_ns;
        self.store_ns += other.store_ns;
        self.wall_ns += other.wall_ns;
    }

    /// Multi-line human-readable report, one `pipeline:`-prefixed line per
    /// metric so driver output stays greppable.
    #[must_use]
    pub fn render(&self) -> String {
        let ms = |ns: u64| Duration::from_nanos(ns).as_secs_f64() * 1e3;
        format!(
            "pipeline: jobs {} run, {} cached ({:.1}% hit rate)\n\
             pipeline: stage wall time: compile {:.2} ms, analyze {:.2} ms, store {:.2} ms\n\
             pipeline: end-to-end {:.2} ms",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate() * 100.0,
            ms(self.compile_ns),
            ms(self.analyze_ns),
            ms(self.store_ns),
            ms(self.wall_ns),
        )
    }

    /// One-line summary for drivers that print many runs (e.g. the fleet
    /// binary's `--search` mode prints one line per search). Deliberately
    /// omits wall times so the line is stable across reruns of identical
    /// work — only the counters, which are deterministic.
    #[must_use]
    pub fn render_compact(&self) -> String {
        format!(
            "pipeline: {} run / {} cached ({:.1}% hit rate)",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate() * 100.0,
        )
    }
}

/// Thread-safe stats collector. All counters are relaxed — they are
/// telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct StatsCell {
    jobs_run: AtomicU64,
    jobs_cached: AtomicU64,
    compile_ns: AtomicU64,
    analyze_ns: AtomicU64,
    store_ns: AtomicU64,
}

impl StatsCell {
    /// A zeroed collector.
    #[must_use]
    pub fn new() -> StatsCell {
        StatsCell::default()
    }

    /// Records one from-scratch compilation.
    pub fn count_run(&self) {
        self.jobs_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache hit.
    pub fn count_cached(&self) {
        self.jobs_cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds compile-stage wall time.
    pub fn add_compile(&self, d: Duration) {
        self.compile_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds analysis-stage wall time.
    pub fn add_analyze(&self, d: Duration) {
        self.analyze_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds store lookup/insert wall time.
    pub fn add_store(&self, d: Duration) {
        self.store_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshots the counters, stamping `wall` as the end-to-end time.
    #[must_use]
    pub fn snapshot(&self, wall: Duration) -> PipelineStats {
        PipelineStats {
            jobs_run: self.jobs_run.load(Ordering::Relaxed),
            jobs_cached: self.jobs_cached.load(Ordering::Relaxed),
            compile_ns: self.compile_ns.load(Ordering::Relaxed),
            analyze_ns: self.analyze_ns.load(Ordering::Relaxed),
            store_ns: self.store_ns.load(Ordering::Relaxed),
            wall_ns: wall.as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_render() {
        let cell = StatsCell::new();
        for _ in 0..3 {
            cell.count_run();
        }
        cell.count_cached();
        cell.add_compile(Duration::from_millis(2));
        let stats = cell.snapshot(Duration::from_millis(5));
        assert_eq!(stats.jobs_total(), 4);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        let text = stats.render();
        assert!(text.contains("3 run"));
        assert!(text.contains("1 cached"));
        assert!(text.contains("25.0% hit rate"));
        let compact = stats.render_compact();
        assert_eq!(compact, "pipeline: 3 run / 1 cached (25.0% hit rate)");
    }

    #[test]
    fn empty_run_has_zero_hit_rate() {
        assert_eq!(PipelineStats::default().hit_rate(), 0.0);
    }
}
