//! Std-only metrics registry: counters, gauges, and power-of-two-bucket
//! latency histograms for the long-lived compile service.
//!
//! [`Profile`](crate::trace::Profile) aggregates one finished run;
//! [`Registry`] accumulates *across* runs — the daemon keeps one for its
//! whole lifetime and serves it over the `metrics` admin request. The
//! same discipline separates what is and is not deterministic:
//!
//! * **Counters** count work (requests, batches, cache hits). For a
//!   fixed workload they are a pure function of the requests served, so
//!   [`Registry::counter_digest`] hashes them.
//! * **Gauges** sample instantaneous state (queue depth, resident
//!   bytes). Excluded from the digest.
//! * **Histograms** bucket observations by power of two. Bucket
//!   *contents* encode timings and are excluded; the total observation
//!   *count* per histogram is work, and is hashed.
//!
//! Rendering is deterministic (sorted [`BTreeMap`] order) in both the
//! greppable `metrics:` text table and the single-line JSON object; the
//! counter-digest footer is always the last `metrics:` line, mirroring
//! `Profile::render`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::hash::{Digest, Hasher};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, else the position of the
/// value's highest set bit plus one (so bucket `i` covers
/// `[2^(i-1), 2^i - 1]`; bucket 64 tops out at `u64::MAX`).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold — the value a quantile query
/// reports for any observation in the bucket (an upper bound, never an
/// underestimate).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A power-of-two-bucket histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes, queue depths). Fixed 65 buckets, no
/// allocation per observation, ~1.5 bits of relative precision — enough
/// to tell a 2 ms p99 from a 200 ms one, which is what an SLO gate
/// needs.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (0 < q ≤ 1) as a bucket upper bound: the value
    /// reported for the observation of rank `max(1, ceil(q·count))` in
    /// sorted order. Exact in rank — only the value is rounded up to its
    /// bucket boundary, so the estimate never understates the true
    /// quantile. `None` on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The registry: named counters, gauges, and histograms behind one
/// coarse mutex each. Registration is implicit — the first `incr` /
/// `set_gauge` / `observe` of a name creates it — and iteration order is
/// the sorted name order, so two registries fed the same updates render
/// identically regardless of arrival interleaving of *distinct* names.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn incr(&self, name: &str, by: u64) {
        let mut m = self.counters.lock().expect("metrics lock");
        *m.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of the named counter, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the named gauge to an instantaneous sample.
    pub fn set_gauge(&self, name: &str, v: u64) {
        let mut m = self.gauges.lock().expect("metrics lock");
        m.insert(name.to_owned(), v);
    }

    /// Raises the named gauge to `v` if `v` is larger (peak tracking).
    pub fn raise_gauge(&self, name: &str, v: u64) {
        let mut m = self.gauges.lock().expect("metrics lock");
        let g = m.entry(name.to_owned()).or_insert(0);
        if v > *g {
            *g = v;
        }
    }

    /// Current value of the named gauge, 0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .lock()
            .expect("metrics lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut m = self.histograms.lock().expect("metrics lock");
        m.entry(name.to_owned()).or_default().record(v);
    }

    /// A snapshot clone of the named histogram, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .lock()
            .expect("metrics lock")
            .get(name)
            .cloned()
    }

    /// The `q`-quantile of the named histogram (`None` when the
    /// histogram is absent or empty).
    #[must_use]
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.histograms
            .lock()
            .expect("metrics lock")
            .get(name)
            .and_then(|h| h.quantile(q))
    }

    /// Digest of the deterministic subset: counter (name, value) pairs
    /// and histogram (name, observation count) pairs, in sorted name
    /// order. Gauges and bucket contents are timing-dependent and are
    /// excluded — the same rule as [`Profile::counter_digest`]
    /// (crate::trace::Profile::counter_digest): identities and counts,
    /// never timings.
    #[must_use]
    pub fn counter_digest(&self) -> Digest {
        let mut h = Hasher::new();
        for (name, v) in self.counters.lock().expect("metrics lock").iter() {
            h.str("counter").str(name).u64(*v);
        }
        for (name, hist) in self.histograms.lock().expect("metrics lock").iter() {
            h.str("hist").str(name).u64(hist.count());
        }
        h.finish()
    }

    /// The aligned text table, one `metrics:`-prefixed line per entry
    /// (counters, then gauges, then histograms with p50/p90/p99), the
    /// counter-digest footer always last — greppable like the
    /// `profile:` and `server:` lines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters.lock().expect("metrics lock").iter() {
            let _ = writeln!(out, "metrics: counter {name:<28} {v:>12}");
        }
        for (name, v) in self.gauges.lock().expect("metrics lock").iter() {
            let _ = writeln!(out, "metrics: gauge   {name:<28} {v:>12}");
        }
        for (name, hist) in self.histograms.lock().expect("metrics lock").iter() {
            let _ = writeln!(
                out,
                "metrics: hist    {name:<28} {:>12} obs p50 {} p90 {} p99 {}",
                hist.count(),
                hist.quantile(0.50).unwrap_or(0),
                hist.quantile(0.90).unwrap_or(0),
                hist.quantile(0.99).unwrap_or(0),
            );
        }
        let _ = writeln!(out, "metrics: counter digest: {}", self.counter_digest());
        out
    }

    /// Single-line JSON object: `counters`, `gauges`, `histograms`
    /// (count, sum, p50/p90/p99 and the non-empty `[upper, count]`
    /// buckets), and the counter digest — the schema `vericomp_serve
    /// --metrics-json` persists and `BENCH_daemon.json` embeds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {v}");
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.lock().expect("metrics lock").iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {v}");
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, hist)) in self
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{name}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                hist.count(),
                hist.sum(),
                hist.quantile(0.50).unwrap_or(0),
                hist.quantile(0.90).unwrap_or(0),
                hist.quantile(0.99).unwrap_or(0),
            );
            let mut first = true;
            for (b, &n) in hist.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{}, {n}]", bucket_upper(b));
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "}}, \"counter_digest\": \"{}\"}}",
            self.counter_digest()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value sits at or below its bucket's upper bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "v={v}");
        }
    }

    #[test]
    fn quantiles_on_small_sets() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.record(1);
        // Single observation: every quantile is its bucket upper.
        assert_eq!(h.quantile(0.01), Some(1));
        assert_eq!(h.quantile(1.0), Some(1));
        for v in [2u64, 3, 100, 1000] {
            h.record(v);
        }
        // 5 obs sorted: 1,2,3,100,1000 → rank(0.5)=3 → value 3 → upper 3.
        assert_eq!(h.quantile(0.5), Some(3));
        // rank(0.99)=5 → value 1000 → bucket 10 upper 1023.
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn digest_hashes_counters_and_hist_counts_only() {
        let a = Registry::new();
        let b = Registry::new();
        a.incr("requests", 3);
        b.incr("requests", 3);
        a.observe("request_wall_ns", 1_000);
        b.observe("request_wall_ns", 9_999_999); // different timing
        a.set_gauge("queue_depth", 7); // gauges excluded
        assert_eq!(a.counter_digest(), b.counter_digest());
        b.incr("requests", 1); // counts do matter
        assert_ne!(a.counter_digest(), b.counter_digest());
    }

    #[test]
    fn render_ends_with_digest_footer() {
        let r = Registry::new();
        r.incr("requests", 2);
        r.observe("lat", 42);
        let text = r.render();
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("metrics: counter digest: "), "{last}");
        assert!(text.contains("metrics: counter requests"));
        assert!(text.contains("metrics: hist    lat"));
    }

    #[test]
    fn json_shape() {
        let r = Registry::new();
        r.incr("a", 1);
        r.set_gauge("g", 2);
        r.observe("h", 3);
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\": {\"a\": 1}"));
        assert!(json.contains("\"gauges\": {\"g\": 2}"));
        assert!(json.contains("\"h\": {\"count\": 1, \"sum\": 3,"));
        assert!(json.contains("\"buckets\": [[3, 1]]"));
        assert!(json.contains("\"counter_digest\": \""));
    }
}
