//! The compile-service client: a blocking request/response connection
//! over a Unix domain socket, with digest-negotiated unit upload.
//!
//! One [`Client`] is one connection. Requests are serialized with
//! [`proto::encode_request`](crate::proto::encode_request), written
//! whole, and the response frame is read back with
//! [`proto::read_frame`](crate::proto::read_frame) — the same framing
//! the server's reader threads use, so either side can be tested against
//! the other with nothing but a socket pair.
//!
//! **Negotiation.** [`run_sweep`](Client::run_sweep) never uploads a
//! unit body the server already holds: digests the server has not yet
//! acknowledged on this connection go through a `have`/`need` exchange,
//! and only the `need`ed bodies travel. Digests acknowledged earlier on
//! the same connection skip the exchange entirely — a warm repeat
//! request is a single roundtrip carrying `unit-ref` lines and **zero
//! bodies**. If the server evicted a digest between negotiation and
//! execution (its `unknown unit digest` error), the client retries once
//! with every body attached — correctness never depends on the server's
//! cache state.
//!
//! The client re-verifies every sweep response's digest against its
//! cells ([`SweepResponse::verify`]); a server (or transport) that
//! corrupts a cell is detected at the edge, not downstream.

use std::collections::HashSet;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::hash::Digest;
use crate::proto::{
    decode_response, encode_request, read_frame, ProtoError, Request, Response, ServerStats,
    SweepResponse, WireSweep, PROTO_MINOR, PROTO_VERSION,
};
use crate::sweep::SweepSpec;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, early EOF).
    Io(io::Error),
    /// The peer sent a malformed document.
    Proto(ProtoError),
    /// The server understood the request and rejected it.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// One connection to a running `vericomp_serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    /// Source digests the server has acknowledged holding (negotiated
    /// `have` answers and successfully served sweeps). Purely an upload
    /// optimization: a stale entry costs one retry, never correctness.
    acknowledged: HashSet<u128>,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (no daemon, stale socket, …).
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        Ok(Client {
            reader: BufReader::new(stream),
            acknowledged: HashSet::new(),
        })
    }

    /// Reads one response frame as text.
    fn read_document(&mut self) -> Result<String, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(frame) => String::from_utf8(frame)
                .map_err(|_| ClientError::Proto(ProtoError("frame is not valid UTF-8".into()))),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            ))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = encode_request(request)?;
        let stream = self.reader.get_mut();
        stream.write_all(text.as_bytes())?;
        stream.flush()?;
        let doc = self.read_document()?;
        match decode_response(&doc)? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Ok(other),
        }
    }

    /// One sweep submission with a given upload set and trace id.
    fn submit(
        &mut self,
        spec: &SweepSpec,
        trace: u64,
        upload: impl Fn(Digest) -> bool,
    ) -> Result<SweepResponse, ClientError> {
        let wire = WireSweep::from_spec(spec, upload).with_trace(trace);
        match self.roundtrip(&Request::Sweep(wire))? {
            Response::Sweep(sweep) => {
                // a served sweep implies every digest is now cached
                for unit in spec.units() {
                    self.acknowledged.insert(unit.source_digest().0);
                }
                Ok(sweep)
            }
            _ => Err(ClientError::Proto(ProtoError(
                "expected a sweep response".into(),
            ))),
        }
    }

    /// Submits a sweep and waits for the served result, negotiating unit
    /// upload by digest (see the module docs). The spec's axes must be
    /// explicit — run it through
    /// [`normalize_spec`](crate::proto::normalize_spec) first so defaults
    /// match a solo `run_sweep`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, malformed peer output
    /// (including a digest that does not match the cells), or a
    /// server-side rejection.
    pub fn run_sweep(&mut self, spec: &SweepSpec) -> Result<SweepResponse, ClientError> {
        self.run_sweep_traced(spec, 0)
    }

    /// Like [`run_sweep`](Client::run_sweep), additionally tagging the
    /// request with a nonzero trace id (proto 2.1): the response then
    /// carries the server-side spans of exactly this request, each
    /// tagged `trace=<id>`, for merging onto the client's timeline. A
    /// server without trace support (proto 2.0) is reported as a clear
    /// versioned error instead of its raw `unknown request tag`.
    ///
    /// # Errors
    ///
    /// As [`run_sweep`](Client::run_sweep), plus the versioned
    /// capability error described above.
    pub fn run_sweep_traced(
        &mut self,
        spec: &SweepSpec,
        trace: u64,
    ) -> Result<SweepResponse, ClientError> {
        let result = self.run_sweep_inner(spec, trace);
        if trace != 0 {
            if let Err(ClientError::Server(msg)) = &result {
                if msg.contains("unknown request tag `trace`") {
                    return Err(ClientError::Server(format!(
                        "server speaks protocol {PROTO_VERSION}.0 without trace support; \
                         tracing needs {PROTO_VERSION}.{PROTO_MINOR} — upgrade the daemon \
                         or retry without --trace"
                    )));
                }
            }
        }
        result
    }

    fn run_sweep_inner(
        &mut self,
        spec: &SweepSpec,
        trace: u64,
    ) -> Result<SweepResponse, ClientError> {
        // negotiate only the digests this connection has not yet seen
        // acknowledged; a fully-warm request skips the extra roundtrip
        let mut offer: Vec<Digest> = Vec::new();
        let mut offered: HashSet<u128> = HashSet::new();
        for unit in spec.units() {
            let d = unit.source_digest();
            if !self.acknowledged.contains(&d.0) && offered.insert(d.0) {
                offer.push(d);
            }
        }
        let need: HashSet<u128> = if offer.is_empty() {
            HashSet::new()
        } else {
            match self.roundtrip(&Request::Have(offer.clone()))? {
                Response::Need(need) => {
                    // digests offered but not needed are already cached
                    for d in &offer {
                        if !need.contains(d) {
                            self.acknowledged.insert(d.0);
                        }
                    }
                    need.into_iter().map(|d| d.0).collect()
                }
                _ => {
                    return Err(ClientError::Proto(ProtoError(
                        "expected a need response".into(),
                    )))
                }
            }
        };

        match self.submit(spec, trace, |d| need.contains(&d.0)) {
            // the server can evict a digest between our negotiation and
            // the sweep landing; one full re-upload always resolves it
            Err(ClientError::Server(msg)) if msg.contains("unknown unit digest") => {
                for unit in spec.units() {
                    self.acknowledged.remove(&unit.source_digest().0);
                }
                self.submit(spec, trace, |_| true)
            }
            other => other,
        }
    }

    /// Fetches a [`ServerStats`] snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or malformed peer output.
    pub fn server_stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Proto(ProtoError(
                "expected a stats response".into(),
            ))),
        }
    }

    /// Fetches the server's metrics registry as its JSON rendering
    /// (proto 2.1; see [`Registry::to_json`](crate::metrics::Registry::to_json)
    /// for the schema).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or malformed peer output.
    pub fn server_metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(json) => Ok(json),
            _ => Err(ClientError::Proto(ProtoError(
                "expected a metrics response".into(),
            ))),
        }
    }

    /// Fetches the server's flight-recorder ring as JSON (proto 2.1).
    /// A `--no-recorder` daemon answers with a server error.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, malformed peer output, or
    /// a disabled recorder.
    pub fn recorder_dump(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::RecorderDump)? {
            Response::Recorder(json) => Ok(json),
            _ => Err(ClientError::Proto(ProtoError(
                "expected a recorder response".into(),
            ))),
        }
    }

    /// Asks the daemon to drain its queue and stop.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or malformed peer output.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Proto(ProtoError(
                "expected an ok response".into(),
            ))),
        }
    }
}
