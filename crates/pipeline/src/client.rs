//! The compile-service client: a blocking request/response connection
//! over a Unix domain socket.
//!
//! One [`Client`] is one connection. Requests are serialized with
//! [`proto::encode_request`](crate::proto::encode_request), written
//! whole, and the response document is read back line-by-line until its
//! `end` terminator — the same framing discipline the server's reader
//! threads use, so either side can be tested against the other with
//! nothing but a socket pair.
//!
//! The client re-verifies every sweep response's digest against its
//! cells ([`SweepResponse::verify`]); a server (or transport) that
//! corrupts a cell is detected at the edge, not downstream.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::proto::{
    decode_response, encode_request, ProtoError, Request, Response, ServerStats, SweepResponse,
};
use crate::sweep::SweepSpec;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, early EOF).
    Io(io::Error),
    /// The peer sent a malformed document.
    Proto(ProtoError),
    /// The server understood the request and rejected it.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// One connection to a running `vericomp_serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (no daemon, stale socket, …).
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Reads one line-framed document (through its `end` line).
    fn read_document(&mut self) -> Result<String, ClientError> {
        let mut doc = String::new();
        loop {
            let start = doc.len();
            let n = self.reader.read_line(&mut doc)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                )));
            }
            if doc[start..].trim_end_matches('\n') == "end" {
                return Ok(doc);
            }
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = encode_request(request)?;
        let stream = self.reader.get_mut();
        stream.write_all(text.as_bytes())?;
        stream.flush()?;
        let doc = self.read_document()?;
        match decode_response(&doc)? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Ok(other),
        }
    }

    /// Submits a sweep and waits for the served result. The spec's axes
    /// must be explicit — run it through
    /// [`normalize_spec`](crate::proto::normalize_spec) first so defaults
    /// match a solo `run_sweep`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, malformed peer output
    /// (including a digest that does not match the cells), or a
    /// server-side rejection.
    pub fn run_sweep(&mut self, spec: &SweepSpec) -> Result<SweepResponse, ClientError> {
        match self.roundtrip(&Request::Sweep(spec.clone()))? {
            Response::Sweep(sweep) => Ok(sweep),
            _ => Err(ClientError::Proto(ProtoError(
                "expected a sweep response".into(),
            ))),
        }
    }

    /// Fetches a [`ServerStats`] snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or malformed peer output.
    pub fn server_stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Proto(ProtoError(
                "expected a stats response".into(),
            ))),
        }
    }

    /// Asks the daemon to drain its queue and stop.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or malformed peer output.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Proto(ProtoError(
                "expected an ok response".into(),
            ))),
        }
    }
}
