//! The content-addressed artifact store.
//!
//! An **artifact** is everything the pipeline produces for one compilation
//! unit: the linked binary, the translation-validator verdict it was
//! accepted under, and its WCET report. Artifacts are addressed by a
//! [`Digest`] of everything that determines them — the generated source
//! text, the entry point, the exact [`PassConfig`], the full
//! [`MachineConfig`], and the toolchain generation stamps
//! ([`FORMAT_VERSION`], [`vericomp_dataflow::SYMBOL_LIBRARY_VERSION`]) —
//! so a hit is a proof-carrying replay, never a guess.
//!
//! **Correctness invariant (paper §3.5 / translation validation):** an
//! artifact is only ever inserted *after* its translation validators
//! accepted the compilation — the compiler fails closed on rejection, so a
//! stored binary carries the same credibility token as a fresh one. Cache
//! hits replay the stored [`Verdict`] instead of re-running the
//! validators; the [`Artifact::key`] ties that verdict to the exact inputs.
//!
//! Persistence is a directory of `<digest-hex>.vcart` files in a plain
//! line-oriented text format (no serde in the workspace). Instructions are
//! stored as the *encoded* 32-bit words and decoded on load through the
//! same `decode` the WCET analyzer uses, so a disk round-trip exercises
//! the tested binary round-trip path. Unreadable, truncated or
//! version-skewed files are treated as misses, never as errors.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vericomp_arch::program::{
    AnnotationEntry, ArgLoc, DataValue, ElemTy, FuncSym, GlobalSym, Program,
};
use vericomp_arch::reg::{Fpr, Gpr};
use vericomp_arch::MachineConfig;
use vericomp_core::PassConfig;
use vericomp_minic::ast::Program as MinicProgram;
use vericomp_wcet::WcetReport;

use crate::hash::{Digest, Hasher};

/// Version stamp of the cache key derivation *and* the on-disk artifact
/// format. Bump it whenever either changes — stale files then simply stop
/// hitting.
pub const FORMAT_VERSION: u32 = 1;

/// Digest of a machine configuration (every field).
#[must_use]
pub fn machine_digest(config: &MachineConfig) -> Digest {
    let mut h = Hasher::new();
    h.u32(config.icache.size_bytes)
        .u32(config.icache.ways)
        .u32(config.icache.line_bytes)
        .u32(config.dcache.size_bytes)
        .u32(config.dcache.ways)
        .u32(config.dcache.line_bytes)
        .u32(config.mem_latency)
        .u32(config.fetch_latency)
        .u32(config.io_latency)
        .u32(config.text_base)
        .u32(config.data_base)
        .u32(config.stack_top)
        .u32(config.io_base)
        .u32(config.io_size)
        .u32(config.lat_int)
        .u32(config.lat_mul)
        .u32(config.lat_div)
        .u32(config.lat_fp)
        .u32(config.lat_fmadd)
        .u32(config.lat_fdiv)
        .u32(config.lat_fmove)
        .u32(config.lat_conv)
        .u32(config.lat_load)
        .u32(config.branch_penalty);
    h.finish()
}

/// The content-addressed cache key of one compilation unit.
///
/// `source` is the pretty-printed MiniC translation unit — the compiler's
/// exact input, which makes the key insensitive to *how* the unit was
/// produced (hand-written, node codegen, application linking) and
/// sensitive to *any* change in what gets compiled.
#[must_use]
pub fn artifact_key(
    source: &str,
    entry: &str,
    passes: &PassConfig,
    config: &MachineConfig,
) -> Digest {
    let mut h = Hasher::new();
    h.u32(FORMAT_VERSION)
        .u32(vericomp_dataflow::SYMBOL_LIBRARY_VERSION)
        .str(source)
        .str(entry)
        .bool(passes.mem2reg)
        .bool(passes.constprop)
        .bool(passes.cse)
        .bool(passes.dce)
        .bool(passes.tunnel)
        .bool(passes.strength)
        .bool(passes.schedule)
        .bool(passes.sda)
        .bool(passes.full_palette)
        .bool(passes.validators)
        .u64(machine_digest(config).0 as u64)
        .u64((machine_digest(config).0 >> 64) as u64);
    h.finish()
}

/// The content identity of one canonical (pretty-printed) MiniC source
/// text — the unit of the wire protocol's `have`/`need` negotiation and
/// the address of the store's parse cache.
///
/// Deliberately keyed on the text alone (no entry, passes or machine):
/// one parsed AST serves every cell the unit appears in, whatever the
/// other axes say.
#[must_use]
pub fn source_digest(canonical: &str) -> Digest {
    let mut h = Hasher::new();
    h.str(canonical);
    h.finish()
}

/// One parse-cache entry: the canonical source text and the AST parsed
/// from it, both shared.
///
/// Invariant: `ast` is exactly `parse(&canonical)` and — because
/// parse∘pretty is identity on ASTs (`tests/parser_roundtrip.rs`) —
/// `program_to_c(&ast) == *canonical`. That makes `canonical` valid
/// [`artifact_key`] material for any cell built from `ast`, which is
/// what lets the daemon skip both the parse and the pretty-print on
/// warm requests without perturbing a single cache key.
#[derive(Debug, Clone)]
pub struct ParsedUnit {
    /// The canonical pretty-printed source (the digest preimage).
    pub canonical: Arc<String>,
    /// The AST parsed from `canonical`.
    pub ast: Arc<MinicProgram>,
}

/// The translation-validation verdict an artifact was accepted under.
///
/// Derived from the [`PassConfig`] the unit compiled with: the allocation
/// checker runs unconditionally (the backend's safety net), the tunneling
/// and scheduling validators run when the corresponding pass ran with
/// `validators` set. A cache hit replays this verdict instead of
/// re-validating — sound because the key covers every compilation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The register-allocation checker accepted (always runs).
    pub allocation_checked: bool,
    /// The branch-tunneling validator ran and accepted.
    pub tunnel_validated: bool,
    /// The list-scheduling validator ran and accepted.
    pub schedule_validated: bool,
}

impl Verdict {
    /// The verdict implied by a successful compilation under `passes`.
    #[must_use]
    pub fn from_passes(passes: &PassConfig) -> Verdict {
        Verdict {
            allocation_checked: true,
            tunnel_validated: passes.tunnel && passes.validators,
            schedule_validated: passes.schedule && passes.validators,
        }
    }

    /// Human-readable form, e.g. `allocation+tunnel validated`.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.allocation_checked {
            parts.push("allocation");
        }
        if self.tunnel_validated {
            parts.push("tunnel");
        }
        if self.schedule_validated {
            parts.push("schedule");
        }
        format!("{} validated", parts.join("+"))
    }
}

/// One cached compilation product: binary + verdict + WCET report.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The content-addressed key this artifact was stored under.
    pub key: Digest,
    /// Entry-point function name.
    pub entry: String,
    /// Display label of the configuration (e.g. `verified`).
    pub label: String,
    /// The linked binary.
    pub program: Program,
    /// The validator verdict the compilation was accepted under.
    pub verdict: Verdict,
    /// The static WCET report of `entry`.
    pub report: WcetReport,
}

impl Artifact {
    /// The artifact's size in bytes in the `.vcart` wire/disk encoding —
    /// the unit of the store's byte accounting. Deterministic: the
    /// encoding is a pure function of the artifact.
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        encode_artifact(self).len() as u64
    }

    /// A digest of the artifact's *outputs* (encoded text, annotation
    /// table, WCET bound) — used by determinism gates to compare serial
    /// and parallel builds bit-for-bit.
    #[must_use]
    pub fn output_digest(&self) -> Digest {
        let mut h = Hasher::new();
        h.str(&self.entry).str(&self.label);
        for w in self.program.encode_text() {
            h.u32(w);
        }
        for a in &self.program.annotations {
            h.u32(u32::from(a.id)).str(&a.resolved_text());
        }
        h.u64(self.report.wcet);
        for (addr, bound) in &self.report.loop_bounds {
            h.u32(*addr).u64(*bound);
        }
        for (name, w) in &self.report.callees {
            h.str(name).u64(*w);
        }
        h.finish()
    }
}

/// Construction parameters of an [`ArtifactStore`].
///
/// The defaults reproduce the historical store exactly: one shard, no
/// size bound, no persistence.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Cache directory for `.vcart` persistence (`None` = memory only).
    pub dir: Option<PathBuf>,
    /// Number of shards the key space is split into (clamped to ≥ 1).
    /// Shard selection uses the top byte of the key digest, so a uniform
    /// content-addressed key population spreads evenly.
    pub shards: usize,
    /// Total resident-byte bound across all shards (`None` = unbounded).
    /// Enforced by [`ArtifactStore::enforce_bounds`], not inline on
    /// insert — callers pick the batch boundaries at which eviction may
    /// run, which keeps eviction order deterministic under concurrency.
    pub max_bytes: Option<u64>,
    /// Resident-byte bound of the parse cache (canonical source text is
    /// what gets accounted — the AST rides along, so this is a proxy
    /// bound, documented as such). `None` = unbounded; the default keeps
    /// a long-lived daemon from growing without limit.
    pub parse_bytes: Option<u64>,
}

impl StoreConfig {
    /// Default parse-cache bound: 64 MiB of canonical source text.
    pub const DEFAULT_PARSE_BYTES: u64 = 64 << 20;
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            dir: None,
            shards: 1,
            max_bytes: None,
            parse_bytes: Some(StoreConfig::DEFAULT_PARSE_BYTES),
        }
    }
}

/// One resident artifact plus its accounting metadata.
struct Entry {
    artifact: Arc<Artifact>,
    /// Size in the `.vcart` encoding ([`Artifact::encoded_len`]).
    bytes: u64,
    /// Epoch stamp of the last touch (lookup hit or insert). All touches
    /// within one batch carry the same stamp, so eviction order is
    /// invariant to thread interleaving inside the batch.
    stamp: u64,
}

#[derive(Default)]
struct ShardMap {
    entries: BTreeMap<u128, Entry>,
    bytes: u64,
}

/// One resident parse-cache entry plus its accounting metadata. Same
/// stamp discipline as artifact [`Entry`]s — the parse cache shares the
/// store's batch epoch, so its eviction order is deterministic too.
struct ParseEntry {
    unit: ParsedUnit,
    /// Accounted size: the canonical text length (AST size rides along).
    bytes: u64,
    stamp: u64,
}

#[derive(Default)]
struct ParseShard {
    entries: BTreeMap<u128, ParseEntry>,
    bytes: u64,
}

/// The artifact store: sharded in-memory maps, optionally backed by a
/// cache directory so repeated runs are warm, optionally size-bounded
/// with deterministic LRU-style eviction.
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    shards: Vec<Mutex<ShardMap>>,
    max_bytes: Option<u64>,
    /// Digest-addressed parsed-source cache (the daemon's "parse once
    /// per digest" store), sharded like the artifact maps and stamped by
    /// the same epoch.
    parse_shards: Vec<Mutex<ParseShard>>,
    parse_max_bytes: Option<u64>,
    /// Batch-granular logical clock: callers advance it once per batch
    /// (the daemon does so before every `run_sweep`), and every touch in
    /// between is stamped with the same value.
    epoch: AtomicU64,
    evictions: AtomicU64,
    parse_evictions: AtomicU64,
}

impl fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("entries", &self.resident())
            .field("bytes", &self.len_bytes())
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

impl ArtifactStore {
    /// A store without disk persistence (process-lifetime cache).
    #[must_use]
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::with_config(StoreConfig::default()).expect("memory store cannot fail")
    }

    /// A store persisted under `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn persistent(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        ArtifactStore::with_config(StoreConfig {
            dir: Some(dir.into()),
            ..StoreConfig::default()
        })
    }

    /// A store built from explicit [`StoreConfig`] parameters.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures when persistent.
    pub fn with_config(config: StoreConfig) -> io::Result<ArtifactStore> {
        if let Some(dir) = &config.dir {
            fs::create_dir_all(dir)?;
        }
        let shards = config.shards.max(1);
        Ok(ArtifactStore {
            dir: config.dir,
            shards: (0..shards)
                .map(|_| Mutex::new(ShardMap::default()))
                .collect(),
            max_bytes: config.max_bytes,
            parse_shards: (0..shards)
                .map(|_| Mutex::new(ParseShard::default()))
                .collect(),
            parse_max_bytes: config.parse_bytes,
            epoch: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            parse_evictions: AtomicU64::new(0),
        })
    }

    /// The backing directory, if persistent.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of shards the key space is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured resident-byte bound, if any.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Number of artifacts currently resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store lock").entries.len())
            .sum()
    }

    /// Total resident size in `.vcart`-encoded bytes.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store lock").bytes)
            .sum()
    }

    /// Number of entries evicted over the store's lifetime.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Advances the batch epoch. Call at a batch boundary (e.g. before
    /// each daemon `run_sweep`): every lookup hit and insert until the
    /// next call is stamped with the new epoch, so recency is counted
    /// per *batch*, not per thread-interleaved touch — the precondition
    /// for deterministic eviction order.
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// A digest of the resident key set, independent of shard count and
    /// of the order entries were touched within any batch. Two stores
    /// that hold the same artifacts agree, whatever their layout.
    #[must_use]
    pub fn store_digest(&self) -> Digest {
        let mut keys: Vec<u128> = Vec::with_capacity(self.resident());
        for shard in &self.shards {
            keys.extend(shard.lock().expect("store lock").entries.keys().copied());
        }
        keys.sort_unstable();
        let mut h = Hasher::new();
        h.u64(keys.len() as u64);
        for k in keys {
            h.u64(k as u64).u64((k >> 64) as u64);
        }
        h.finish()
    }

    /// Evicts entries until every shard fits its share of `max_bytes`
    /// (total bound divided evenly across shards). Within a shard the
    /// eviction order is ascending `(stamp, key)` — least-recent batch
    /// first, key order breaking ties — which is a pure function of the
    /// resident set and its stamps, so the post-eviction store digest is
    /// reproducible. Evicted entries also lose their `.vcart` file (a
    /// later request recompiles, and the determinism gates prove it
    /// recompiles to the identical digest). Returns the number evicted;
    /// a no-op without a configured bound.
    pub fn enforce_bounds(&self) -> u64 {
        let evicted = self.enforce_artifact_bounds();
        self.enforce_parse_bounds();
        evicted
    }

    fn enforce_artifact_bounds(&self) -> u64 {
        let Some(max_bytes) = self.max_bytes else {
            return 0;
        };
        let budget = max_bytes / self.shards.len() as u64;
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.lock().expect("store lock");
            while map.bytes > budget && !map.entries.is_empty() {
                let victim = map
                    .entries
                    .iter()
                    .min_by_key(|(key, e)| (e.stamp, **key))
                    .map(|(key, _)| *key)
                    .expect("non-empty shard");
                let entry = map.entries.remove(&victim).expect("victim resident");
                map.bytes -= entry.bytes;
                if let Some(path) = self.path_of(Digest(victim)) {
                    let _ = fs::remove_file(path);
                }
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Same ascending `(stamp, key)` discipline for the parse cache.
    /// Purely in-memory — nothing on disk to clean up — and counted
    /// separately: [`evictions`](ArtifactStore::evictions) keeps meaning
    /// artifact evictions only.
    fn enforce_parse_bounds(&self) -> u64 {
        let Some(max_bytes) = self.parse_max_bytes else {
            return 0;
        };
        let budget = max_bytes / self.parse_shards.len() as u64;
        let mut evicted = 0;
        for shard in &self.parse_shards {
            let mut map = shard.lock().expect("parse lock");
            while map.bytes > budget && !map.entries.is_empty() {
                let victim = map
                    .entries
                    .iter()
                    .min_by_key(|(key, e)| (e.stamp, **key))
                    .map(|(key, _)| *key)
                    .expect("non-empty shard");
                let entry = map.entries.remove(&victim).expect("victim resident");
                map.bytes -= entry.bytes;
                evicted += 1;
            }
        }
        self.parse_evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    fn parse_shard_of(&self, digest: Digest) -> &Mutex<ParseShard> {
        let idx = ((digest.0 >> 120) as usize) % self.parse_shards.len();
        &self.parse_shards[idx]
    }

    /// Looks a parsed unit up by source digest, stamping the entry with
    /// the current epoch on a hit (a parse hit is a touch — entries in
    /// active use survive eviction pressure).
    #[must_use]
    pub fn parse_lookup(&self, digest: Digest) -> Option<ParsedUnit> {
        let mut map = self.parse_shard_of(digest).lock().expect("parse lock");
        let epoch = self.epoch.load(Ordering::Relaxed);
        map.entries.get_mut(&digest.0).map(|e| {
            e.stamp = epoch;
            e.unit.clone()
        })
    }

    /// Whether a source digest is resident, stamping it on a hit — the
    /// server answers `have` negotiation with this, and the stamp keeps a
    /// just-negotiated digest from being evicted before its sweep runs
    /// (it can still lose the race under pressure; the protocol's
    /// re-upload path covers that).
    #[must_use]
    pub fn parse_contains(&self, digest: Digest) -> bool {
        let mut map = self.parse_shard_of(digest).lock().expect("parse lock");
        let epoch = self.epoch.load(Ordering::Relaxed);
        match map.entries.get_mut(&digest.0) {
            Some(e) => {
                e.stamp = epoch;
                true
            }
            None => false,
        }
    }

    /// Inserts a parsed unit under its source digest. The caller must
    /// guarantee `digest == source_digest(&unit.canonical)` — the wire
    /// decoder verifies uploaded bodies against their declared digest
    /// before anything reaches here.
    pub fn parse_insert(&self, digest: Digest, unit: ParsedUnit) {
        debug_assert_eq!(digest, source_digest(&unit.canonical));
        let bytes = unit.canonical.len() as u64;
        let mut map = self.parse_shard_of(digest).lock().expect("parse lock");
        let epoch = self.epoch.load(Ordering::Relaxed);
        match map.entries.insert(
            digest.0,
            ParseEntry {
                unit,
                bytes,
                stamp: epoch,
            },
        ) {
            Some(old) => map.bytes = map.bytes - old.bytes + bytes,
            None => map.bytes += bytes,
        }
    }

    /// Number of parsed units currently resident.
    #[must_use]
    pub fn parse_resident(&self) -> usize {
        self.parse_shards
            .iter()
            .map(|s| s.lock().expect("parse lock").entries.len())
            .sum()
    }

    /// Resident parse-cache size (canonical text bytes).
    #[must_use]
    pub fn parse_len_bytes(&self) -> u64 {
        self.parse_shards
            .iter()
            .map(|s| s.lock().expect("parse lock").bytes)
            .sum()
    }

    /// Parse-cache entries evicted over the store's lifetime.
    #[must_use]
    pub fn parse_evictions(&self) -> u64 {
        self.parse_evictions.load(Ordering::Relaxed)
    }

    fn shard_of(&self, key: Digest) -> &Mutex<ShardMap> {
        let idx = ((key.0 >> 120) as usize) % self.shards.len();
        &self.shards[idx]
    }

    fn path_of(&self, key: Digest) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.vcart")))
    }

    /// Looks an artifact up by key: memory first, then the cache
    /// directory. `config` rebuilds the program container on a disk hit
    /// and is checked against the stored machine digest; any mismatch or
    /// parse failure is a miss. A hit refreshes the entry's epoch stamp.
    #[must_use]
    pub fn lookup(&self, key: Digest, config: &MachineConfig) -> Option<Arc<Artifact>> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        {
            let mut map = self.shard_of(key).lock().expect("store lock");
            if let Some(entry) = map.entries.get_mut(&key.0) {
                entry.stamp = epoch;
                return Some(Arc::clone(&entry.artifact));
            }
        }
        let path = self.path_of(key)?;
        let text = fs::read_to_string(path).ok()?;
        let artifact = decode_artifact(&text, config)?;
        if artifact.key != key {
            return None;
        }
        let bytes = text.len() as u64;
        let artifact = Arc::new(artifact);
        let mut map = self.shard_of(key).lock().expect("store lock");
        let entry = Entry {
            artifact: Arc::clone(&artifact),
            bytes,
            stamp: epoch,
        };
        if let Some(old) = map.entries.insert(key.0, entry) {
            map.bytes -= old.bytes;
        }
        map.bytes += bytes;
        Some(artifact)
    }

    /// Inserts a **validated** artifact (memory + disk when persistent).
    ///
    /// Callers must uphold the store invariant: only artifacts whose
    /// compilation the translation validators accepted may be inserted —
    /// the pipeline service only reaches this call on the success path of
    /// `compile_with_passes`, which fails closed on rejection.
    ///
    /// # Errors
    ///
    /// Propagates disk-write failures (the in-memory insert still
    /// happened).
    pub fn insert(&self, artifact: Artifact) -> io::Result<Arc<Artifact>> {
        debug_assert!(artifact.verdict.allocation_checked);
        let key = artifact.key;
        let text = encode_artifact(&artifact);
        let bytes = text.len() as u64;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let artifact = Arc::new(artifact);
        {
            let mut map = self.shard_of(key).lock().expect("store lock");
            let entry = Entry {
                artifact: Arc::clone(&artifact),
                bytes,
                stamp: epoch,
            };
            if let Some(old) = map.entries.insert(key.0, entry) {
                map.bytes -= old.bytes;
            }
            map.bytes += bytes;
        }
        if let Some(path) = self.path_of(key) {
            // Write-then-rename keeps concurrent readers (other build
            // processes sharing the directory) away from torn files.
            let tmp = path.with_extension(format!("tmp{}", std::process::id()));
            fs::write(&tmp, text)?;
            fs::rename(&tmp, &path)?;
        }
        Ok(artifact)
    }
}

// ---------------------------------------------------------------------------
// on-disk format
// ---------------------------------------------------------------------------

fn elem_name(e: ElemTy) -> &'static str {
    match e {
        ElemTy::I32 => "i32",
        ElemTy::F64 => "f64",
    }
}

fn parse_elem(s: &str) -> Option<ElemTy> {
    match s {
        "i32" => Some(ElemTy::I32),
        "f64" => Some(ElemTy::F64),
        _ => None,
    }
}

fn argloc_name(a: &ArgLoc) -> String {
    match a {
        ArgLoc::Gpr(r) => format!("g{}", r.index()),
        ArgLoc::Fpr(r) => format!("f{}", r.index()),
        ArgLoc::Stack(off, e) => format!("s{off}:{}", elem_name(*e)),
        ArgLoc::Global(addr, e) => format!("m{addr}:{}", elem_name(*e)),
    }
}

fn parse_argloc(s: &str) -> Option<ArgLoc> {
    let (tag, rest) = s.split_at(1);
    match tag {
        "g" => Some(ArgLoc::Gpr(Gpr::try_new(rest.parse().ok()?)?)),
        "f" => Some(ArgLoc::Fpr(Fpr::try_new(rest.parse().ok()?)?)),
        "s" => {
            let (off, e) = rest.split_once(':')?;
            Some(ArgLoc::Stack(off.parse().ok()?, parse_elem(e)?))
        }
        "m" => {
            let (addr, e) = rest.split_once(':')?;
            Some(ArgLoc::Global(addr.parse().ok()?, parse_elem(e)?))
        }
        _ => None,
    }
}

/// Serializes an artifact to the `.vcart` text format.
#[must_use]
pub fn encode_artifact(a: &Artifact) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "vericomp-artifact {FORMAT_VERSION}");
    let _ = writeln!(s, "key {}", a.key);
    let _ = writeln!(s, "machine {}", machine_digest(&a.program.config));
    let _ = writeln!(s, "entry {}", a.entry);
    let _ = writeln!(s, "label {}", a.label);
    let _ = writeln!(
        s,
        "verdict alloc={} tunnel={} sched={}",
        u8::from(a.verdict.allocation_checked),
        u8::from(a.verdict.tunnel_validated),
        u8::from(a.verdict.schedule_validated),
    );
    let _ = writeln!(s, "wcet {}", a.report.wcet);
    let _ = writeln!(s, "blocks {}", a.report.block_count);
    for (addr, bound) in &a.report.loop_bounds {
        let _ = writeln!(s, "loopbound {addr} {bound}");
    }
    for (name, w) in &a.report.callees {
        let _ = writeln!(s, "callee {w} {name}");
    }
    for (addr, cost) in &a.report.block_costs {
        let _ = writeln!(s, "blockcost {addr} {cost}");
    }
    let _ = writeln!(s, "prog-entry {}", a.program.entry);
    let _ = writeln!(s, "constpool {}", a.program.const_pool_base);
    let _ = writeln!(s, "sda {}", a.program.sda_base);
    let words = a.program.encode_text();
    let _ = writeln!(s, "code {}", words.len());
    for chunk in words.chunks(8) {
        let line: Vec<String> = chunk.iter().map(|w| format!("{w:08x}")).collect();
        let _ = writeln!(s, "{}", line.join(" "));
    }
    for f in &a.program.functions {
        let _ = writeln!(s, "func {} {} {}", f.entry, f.len_words, f.name);
    }
    for g in &a.program.globals {
        let _ = writeln!(
            s,
            "globalsym {} {} {} {}",
            g.addr,
            elem_name(g.elem),
            g.len,
            g.name
        );
    }
    for (addr, value) in &a.program.data {
        match value {
            DataValue::I32(v) => {
                let _ = writeln!(s, "data {addr} i32 {v}");
            }
            DataValue::F64(v) => {
                let _ = writeln!(s, "data {addr} f64 {:016x}", v.to_bits());
            }
        }
    }
    for ann in &a.program.annotations {
        let locs: Vec<String> = ann.args.iter().map(argloc_name).collect();
        let _ = writeln!(
            s,
            "annot {} {} {}| {}",
            ann.id,
            ann.args.len(),
            locs.iter().map(|l| format!("{l} ")).collect::<String>(),
            ann.format
        );
    }
    s.push_str("end\n");
    s
}

/// Parses a `.vcart` document against a machine configuration. Returns
/// `None` on any malformation or on a machine-digest mismatch — corrupt
/// cache files degrade to misses.
#[must_use]
pub fn decode_artifact(text: &str, config: &MachineConfig) -> Option<Artifact> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("vericomp-artifact {FORMAT_VERSION}") {
        return None;
    }
    let mut key = None;
    let mut entry = None;
    let mut label = None;
    let mut verdict = None;
    let mut wcet = None;
    let mut block_count = 0usize;
    let mut loop_bounds = BTreeMap::new();
    let mut callees = BTreeMap::new();
    let mut block_costs = BTreeMap::new();
    let mut prog_entry = None;
    let mut const_pool_base = None;
    let mut sda_base = None;
    let mut code: Option<Vec<u32>> = None;
    let mut functions = Vec::new();
    let mut globals = Vec::new();
    let mut data = BTreeMap::new();
    let mut annotations = Vec::new();
    let mut saw_end = false;

    while let Some(line) = lines.next() {
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "key" => key = Digest::from_hex(rest),
            "machine" => {
                if Digest::from_hex(rest)? != machine_digest(config) {
                    return None;
                }
            }
            "entry" => entry = Some(rest.to_owned()),
            "label" => label = Some(rest.to_owned()),
            "verdict" => {
                let mut flags = [false; 3];
                for (i, part) in rest.split(' ').enumerate() {
                    let (_, v) = part.split_once('=')?;
                    flags[i] = v == "1";
                }
                verdict = Some(Verdict {
                    allocation_checked: flags[0],
                    tunnel_validated: flags[1],
                    schedule_validated: flags[2],
                });
            }
            "wcet" => wcet = rest.parse().ok(),
            "blocks" => block_count = rest.parse().ok()?,
            "loopbound" => {
                let (addr, bound) = rest.split_once(' ')?;
                loop_bounds.insert(addr.parse().ok()?, bound.parse().ok()?);
            }
            "callee" => {
                let (w, name) = rest.split_once(' ')?;
                callees.insert(name.to_owned(), w.parse().ok()?);
            }
            "blockcost" => {
                let (addr, cost) = rest.split_once(' ')?;
                block_costs.insert(addr.parse().ok()?, cost.parse().ok()?);
            }
            "prog-entry" => prog_entry = rest.parse().ok(),
            "constpool" => const_pool_base = rest.parse().ok(),
            "sda" => sda_base = rest.parse().ok(),
            "code" => {
                let n: usize = rest.parse().ok()?;
                let mut words = Vec::with_capacity(n);
                while words.len() < n {
                    let line = lines.next()?;
                    for w in line.split(' ') {
                        words.push(u32::from_str_radix(w, 16).ok()?);
                    }
                }
                if words.len() != n {
                    return None;
                }
                code = Some(words);
            }
            "func" => {
                let mut it = rest.splitn(3, ' ');
                let entry = it.next()?.parse().ok()?;
                let len_words = it.next()?.parse().ok()?;
                let name = it.next()?.to_owned();
                functions.push(FuncSym {
                    name,
                    entry,
                    len_words,
                });
            }
            "globalsym" => {
                let mut it = rest.splitn(4, ' ');
                let addr = it.next()?.parse().ok()?;
                let elem = parse_elem(it.next()?)?;
                let len = it.next()?.parse().ok()?;
                let name = it.next()?.to_owned();
                globals.push(GlobalSym {
                    name,
                    addr,
                    elem,
                    len,
                });
            }
            "data" => {
                let mut it = rest.splitn(3, ' ');
                let addr: u32 = it.next()?.parse().ok()?;
                let kind = it.next()?;
                let value = it.next()?;
                let value = match kind {
                    "i32" => DataValue::I32(value.parse().ok()?),
                    "f64" => DataValue::F64(f64::from_bits(u64::from_str_radix(value, 16).ok()?)),
                    _ => return None,
                };
                data.insert(addr, value);
            }
            "annot" => {
                let (head, format) = rest.split_once('|')?;
                let mut it = head.split_whitespace();
                let id: u16 = it.next()?.parse().ok()?;
                let nargs: usize = it.next()?.parse().ok()?;
                let args: Vec<ArgLoc> = it.map(parse_argloc).collect::<Option<_>>()?;
                if args.len() != nargs {
                    return None;
                }
                annotations.push(AnnotationEntry {
                    id,
                    format: format.strip_prefix(' ').unwrap_or(format).to_owned(),
                    args,
                });
            }
            "end" => {
                saw_end = true;
                break;
            }
            _ => return None,
        }
    }
    if !saw_end {
        return None;
    }

    let words = code?;
    let insts = Program::decode_text(config, &words).ok()?;
    let program = Program {
        config: config.clone(),
        code: insts,
        entry: prog_entry?,
        functions,
        globals,
        data,
        const_pool_base: const_pool_base?,
        sda_base: sda_base?,
        annotations,
    };
    Some(Artifact {
        key: key?,
        entry: entry?,
        label: label?,
        program,
        verdict: verdict?,
        report: WcetReport {
            wcet: wcet?,
            loop_bounds,
            block_count,
            callees,
            block_costs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_core::{Compiler, OptLevel};
    use vericomp_minic::ast::{Binop, Expr, Function, Global, GlobalDef, Program as Src, Stmt};

    fn small_src() -> Src {
        let gf = |name: &str| Global {
            name: name.into(),
            def: GlobalDef::ScalarF64(None),
        };
        Src {
            globals: vec![gf("in1"), gf("in2"), gf("out")],
            functions: vec![Function {
                name: "step".into(),
                params: vec![],
                ret: None,
                locals: vec![],
                body: vec![Stmt::Assign(
                    "out".into(),
                    Expr::binop(Binop::AddF, Expr::var("in1"), Expr::var("in2")),
                )],
            }],
        }
    }

    fn small_artifact() -> Artifact {
        let src = small_src();
        let passes = PassConfig::for_level(OptLevel::Verified);
        let config = MachineConfig::mpc755();
        let program = Compiler::new(OptLevel::Verified)
            .compile(&src, "step")
            .expect("compiles");
        let report = vericomp_wcet::Analyzer::default()
            .analyze(&vericomp_wcet::AnalysisRequest::new(&program, "step"))
            .expect("analyzes")
            .report;
        let source = vericomp_minic::pretty::program_to_c(&src);
        Artifact {
            key: artifact_key(&source, "step", &passes, &config),
            entry: "step".into(),
            label: "verified".into(),
            program,
            verdict: Verdict::from_passes(&passes),
            report,
        }
    }

    #[test]
    fn artifact_text_roundtrip_is_lossless() {
        let a = small_artifact();
        let text = encode_artifact(&a);
        let b = decode_artifact(&text, &MachineConfig::mpc755()).expect("parses");
        assert_eq!(a.key, b.key);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.program.code, b.program.code);
        assert_eq!(a.program.functions, b.program.functions);
        assert_eq!(a.program.globals, b.program.globals);
        assert_eq!(a.program.annotations, b.program.annotations);
        assert_eq!(a.report.wcet, b.report.wcet);
        assert_eq!(a.report.callees, b.report.callees);
        assert_eq!(a.output_digest(), b.output_digest());
        // data section compares via bits (may hold f64 NaNs in general)
        assert_eq!(a.program.data.len(), b.program.data.len());
    }

    #[test]
    fn corrupt_or_skewed_files_degrade_to_misses() {
        let a = small_artifact();
        let text = encode_artifact(&a);
        let config = MachineConfig::mpc755();
        // truncation
        assert!(decode_artifact(&text[..text.len() / 2], &config).is_none());
        // version skew
        let skewed = text.replace("vericomp-artifact 1", "vericomp-artifact 999");
        assert!(decode_artifact(&skewed, &config).is_none());
        // machine mismatch
        assert!(decode_artifact(&text, &MachineConfig::tiny_caches()).is_none());
        // garbage
        assert!(decode_artifact("not an artifact", &config).is_none());
    }

    #[test]
    fn persistent_store_roundtrips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("vericomp-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = small_artifact();
        let key = a.key;
        let config = MachineConfig::mpc755();
        {
            let store = ArtifactStore::persistent(&dir).expect("creates dir");
            assert!(store.lookup(key, &config).is_none());
            store.insert(a.clone()).expect("writes");
            assert!(store.lookup(key, &config).is_some());
        }
        // a fresh store (fresh process, conceptually) reads it back
        let store = ArtifactStore::persistent(&dir).expect("opens dir");
        let hit = store.lookup(key, &config).expect("disk hit");
        assert_eq!(hit.output_digest(), a.output_digest());
        assert_eq!(hit.verdict, a.verdict);
        // corrupting the file degrades to a miss
        let path = dir.join(format!("{key}.vcart"));
        fs::write(&path, "garbage").expect("overwrite");
        let store = ArtifactStore::persistent(&dir).expect("opens dir");
        assert!(store.lookup(key, &config).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A distinct artifact per index: entry name and source both vary,
    /// so keys, encodings and sizes differ.
    fn artifact_named(i: usize) -> Artifact {
        let gf = |name: &str| Global {
            name: name.into(),
            def: GlobalDef::ScalarF64(None),
        };
        let entry = format!("step{i}");
        let src = Src {
            globals: (0..=i % 3)
                .map(|g| gf(&format!("in{g}")))
                .chain([gf("out")])
                .collect(),
            functions: vec![Function {
                name: entry.clone(),
                params: vec![],
                ret: None,
                locals: vec![],
                body: vec![Stmt::Assign(
                    "out".into(),
                    Expr::binop(Binop::AddF, Expr::var("in0"), Expr::var("in0")),
                )],
            }],
        };
        let passes = PassConfig::for_level(OptLevel::Verified);
        let config = MachineConfig::mpc755();
        let program = Compiler::new(OptLevel::Verified)
            .compile(&src, &entry)
            .expect("compiles");
        let report = vericomp_wcet::Analyzer::default()
            .analyze(&vericomp_wcet::AnalysisRequest::new(&program, &entry))
            .expect("analyzes")
            .report;
        let source = vericomp_minic::pretty::program_to_c(&src);
        Artifact {
            key: artifact_key(&source, &entry, &passes, &config),
            entry,
            label: "verified".into(),
            program,
            verdict: Verdict::from_passes(&passes),
            report,
        }
    }

    #[test]
    fn byte_accounting_matches_encoded_sizes() {
        let store = ArtifactStore::in_memory();
        assert_eq!(store.len_bytes(), 0);
        let mut expected = 0u64;
        for i in 0..4 {
            let a = artifact_named(i);
            expected += a.encoded_len();
            store.insert(a).expect("inserts");
        }
        assert_eq!(store.resident(), 4);
        assert_eq!(store.len_bytes(), expected);
        // re-inserting an existing key replaces, never double-counts
        store.insert(artifact_named(2)).expect("re-inserts");
        assert_eq!(store.resident(), 4);
        assert_eq!(store.len_bytes(), expected);
    }

    #[test]
    fn byte_accounting_counts_disk_reloads() {
        let dir = std::env::temp_dir().join(format!("vericomp-store-bytes-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = artifact_named(0);
        let (key, size) = (a.key, a.encoded_len());
        {
            let store = ArtifactStore::persistent(&dir).expect("creates dir");
            store.insert(a).expect("writes");
        }
        let store = ArtifactStore::persistent(&dir).expect("opens dir");
        assert_eq!(store.len_bytes(), 0);
        store
            .lookup(key, &MachineConfig::mpc755())
            .expect("disk hit");
        assert_eq!(store.len_bytes(), size);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_digest_is_shard_count_invariant() {
        let artifacts: Vec<Artifact> = (0..6).map(artifact_named).collect();
        let mut digests = Vec::new();
        for shards in [1usize, 4] {
            let store = ArtifactStore::with_config(StoreConfig {
                shards,
                ..StoreConfig::default()
            })
            .expect("memory store");
            for a in &artifacts {
                store.insert(a.clone()).expect("inserts");
            }
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.resident(), artifacts.len());
            digests.push(store.store_digest());
        }
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn eviction_is_deterministic_and_order_invariant() {
        let artifacts: Vec<Artifact> = (0..6).map(artifact_named).collect();
        let bound = artifacts.iter().map(Artifact::encoded_len).sum::<u64>() / 2;
        let build = |order: &[usize]| {
            let store = ArtifactStore::with_config(StoreConfig {
                max_bytes: Some(bound),
                ..StoreConfig::default()
            })
            .expect("memory store");
            // first batch: artifacts 0..3; second batch: 3..6 — the
            // insertion order *within* a batch must not matter.
            for &i in order.iter().filter(|&&i| i < 3) {
                store.insert(artifacts[i].clone()).expect("inserts");
            }
            store.advance_epoch();
            for &i in order.iter().filter(|&&i| i >= 3) {
                store.insert(artifacts[i].clone()).expect("inserts");
            }
            let evicted = store.enforce_bounds();
            assert!(evicted > 0, "bound at half the total must evict");
            assert_eq!(store.evictions(), evicted);
            assert!(store.len_bytes() <= bound);
            store.store_digest()
        };
        let a = build(&[0, 1, 2, 3, 4, 5]);
        let b = build(&[2, 0, 1, 5, 3, 4]);
        assert_eq!(a, b, "post-eviction digest depends only on batches");
    }

    #[test]
    fn eviction_prefers_older_batches_and_clears_disk() {
        let dir = std::env::temp_dir().join(format!("vericomp-store-evict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let old = artifact_named(0);
        let fresh = artifact_named(1);
        let bound = old.encoded_len() + fresh.encoded_len() - 1;
        let store = ArtifactStore::with_config(StoreConfig {
            dir: Some(dir.clone()),
            max_bytes: Some(bound),
            ..StoreConfig::default()
        })
        .expect("creates dir");
        store.insert(old.clone()).expect("inserts");
        store.advance_epoch();
        store.insert(fresh.clone()).expect("inserts");
        assert_eq!(store.enforce_bounds(), 1);
        let config = MachineConfig::mpc755();
        // the older batch's entry is gone — memory *and* disk
        assert!(store.lookup(old.key, &config).is_none());
        assert!(!dir.join(format!("{}.vcart", old.key)).exists());
        // the fresh entry survives
        assert!(store.lookup(fresh.key, &config).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_source_passes_and_machine() {
        let src = vericomp_minic::pretty::program_to_c(&small_src());
        let verified = PassConfig::for_level(OptLevel::Verified);
        let full = PassConfig::for_level(OptLevel::OptFull);
        let m755 = MachineConfig::mpc755();
        let tiny = MachineConfig::tiny_caches();
        let base = artifact_key(&src, "step", &verified, &m755);
        assert_ne!(base, artifact_key(&src, "step", &full, &m755));
        assert_ne!(base, artifact_key(&src, "step", &verified, &tiny));
        assert_ne!(base, artifact_key(&src, "other", &verified, &m755));
        let mut src2 = src.clone();
        src2.push(' ');
        assert_ne!(base, artifact_key(&src2, "step", &verified, &m755));
        // and the same inputs agree across calls
        assert_eq!(base, artifact_key(&src, "step", &verified, &m755));
    }

    fn parsed_unit_named(i: usize) -> (Digest, ParsedUnit) {
        // distinct single-function programs with canonical = pretty(ast)
        let text = format!("int g{i};\nvoid f{i}() {{ g{i} = {i}; }}");
        let ast = vericomp_minic::parse::parse(&text).expect("parses");
        let canonical = Arc::new(vericomp_minic::pretty::program_to_c(&ast));
        let digest = source_digest(&canonical);
        (
            digest,
            ParsedUnit {
                canonical,
                ast: Arc::new(ast),
            },
        )
    }

    #[test]
    fn parse_cache_hits_touches_and_evicts_by_batch() {
        let units: Vec<(Digest, ParsedUnit)> = (0..4).map(parsed_unit_named).collect();
        let bytes: Vec<u64> = units
            .iter()
            .map(|(_, u)| u.canonical.len() as u64)
            .collect();
        // bound that holds the two most recent units but not all four
        let store = ArtifactStore::with_config(StoreConfig {
            parse_bytes: Some(bytes[2] + bytes[3]),
            ..StoreConfig::default()
        })
        .expect("memory store");
        assert!(store.parse_lookup(units[0].0).is_none());
        assert!(!store.parse_contains(units[0].0));

        // batch 1: all four resident, byte accounting exact
        for (d, u) in &units {
            store.parse_insert(*d, u.clone());
        }
        assert_eq!(store.parse_resident(), 4);
        assert_eq!(store.parse_len_bytes(), bytes.iter().sum::<u64>());
        let hit = store.parse_lookup(units[1].0).expect("hit");
        assert_eq!(*hit.canonical, *units[1].1.canonical);
        // re-insert of a resident digest must not double-count
        store.parse_insert(units[1].0, units[1].1.clone());
        assert_eq!(store.parse_len_bytes(), bytes.iter().sum::<u64>());

        // batch 2 touches units 2 and 3; eviction then prefers batch 1
        store.advance_epoch();
        assert!(store.parse_contains(units[2].0));
        assert!(store.parse_lookup(units[3].0).is_some());
        store.enforce_bounds();
        assert_eq!(store.parse_evictions(), 2);
        assert!(store.parse_lookup(units[0].0).is_none());
        assert!(store.parse_lookup(units[1].0).is_none());
        assert!(store.parse_lookup(units[2].0).is_some());
        assert!(store.parse_lookup(units[3].0).is_some());
        // artifact-side counters unaffected
        assert_eq!(store.evictions(), 0);
    }
}
