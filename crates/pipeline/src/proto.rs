//! Wire protocol of the compile service: the `.vcart` discipline on a
//! socket, content-negotiated.
//!
//! Control frames are plain line-oriented text — the same format family
//! as the artifact store's `.vcart` files: a versioned header line, one
//! `tag operands…` line per field, an `end` terminator. Bulk payloads
//! (unit source bodies, the sweep-response cell table) travel as
//! **length-prefixed blobs** inside the frame, so the 10k-unit response
//! path is one `read_exact`, not ten thousand line scans. No serde, no
//! external deps, and every control line is printable, which keeps the
//! protocol greppable in transcripts and trivially testable.
//!
//! **Framing.** One message = the lines from its header through its `end`
//! line inclusive. A `blob <nbytes>` line is followed by exactly `nbytes`
//! raw bytes and a newline; [`read_frame`] consumes blobs by length, so
//! blob contents may contain anything — including a line reading `end` —
//! without confusing the framing. A closed connection mid-message is a
//! protocol error, never a partial result.
//!
//! **Content negotiation.** Unit sources are identified by the digest of
//! their canonical (pretty-printed) text ([`source_digest`]). A client
//! first sends a `have` frame listing its digests; the server answers
//! `need` with the subset it has never parsed. Only those bodies travel —
//! a fully warm request ships **zero unit bodies**, just `unit-ref`
//! lines. The server keeps a bounded, LRU-evicting parse cache (digest →
//! parsed AST + canonical text) so each distinct unit is parsed once per
//! digest across requests, batches and clients; an evicted digest simply
//! turns up in `need` again (or, if it races a sweep, yields an
//! `unknown unit digest` error the client answers by re-uploading).
//!
//! **Grammar** (one message per block):
//!
//! ```text
//! blob     := "blob" nbytes NL <nbytes raw bytes> NL
//!
//! request  := "vericomp-request 2" NL body "end" NL
//! body     := sweep | have | "stats" NL | "shutdown" NL
//!           | "metrics" NL | "recorder-dump" NL      ; admin (proto 2.1)
//! have     := "have" n NL ("digest" hex32 NL){n}      ; which do you need?
//! sweep    := "sweep" NL trace? unit* config+ machine+
//! trace    := "trace" hex16 NL                ; client trace id (2.1)
//! unit     := "unit-ref" entry hex32 name NL          ; body already server-side
//!           | "unit" entry hex32 name NL blob         ; blob = canonical source
//! config   := "config" label bits10 NL        ; PassConfig, key-order bits
//! machine  := "machine" label u32{24} NL      ; machine_digest field order
//!
//! response := "vericomp-response 2" NL rbody "end" NL
//! rbody    := rsweep | need | rstats | "ok" NL | "error" message NL
//!           | "metrics" NL blob | "recorder" NL blob  ; JSON admin payloads
//! need     := "need" n NL ("digest" hex32 NL){n}      ; never-seen subset
//! rsweep   := "sweep" NL blob                         ; blob = payload
//! payload  := "axes" nunits nconfigs nmachines NL label-lines cell* span* stats digest
//! cell     := "cell" unit config machine wcet cached vbits3 hex32 NL
//! span     := "span" cat job ts_ns dur_ns name detail? NL   ; traced requests (2.1)
//! stats    := "stats" jobs_run jobs_cached compile_ns analyze_ns store_ns wall_ns NL
//! digest   := "digest" hex32 NL
//! ```
//!
//! Uploaded bodies are canonical pretty-printed MiniC and are verified
//! against their declared digest at decode time, then parsed once into
//! the server's parse cache; the parser/pretty round-trip is identity on
//! ASTs (gated by `tests/parser_roundtrip.rs`), so the server derives
//! **the same cache keys** a local run would — a client's cells hit the
//! daemon's warm store exactly when a solo run would hit its own. The
//! determinism gates assert that digest-negotiated requests produce
//! responses bit-identical to solo `run_sweep` runs.
//!
//! Names and axis labels must be non-empty and whitespace-free — enforced
//! at encode *and* decode time, so a malformed peer cannot smuggle a
//! misframed document through.

use std::fmt;
use std::io::{self, BufRead, Read};
use std::sync::Arc;

use vericomp_arch::config::CacheConfig;
use vericomp_arch::MachineConfig;
use vericomp_core::{OptLevel, PassConfig};

use crate::hash::{Digest, Hasher};
use crate::stats::PipelineStats;
use crate::store::{source_digest, Verdict};
use crate::sweep::{SweepResult, SweepSpec};
use crate::trace::{Span, SpanKind};

/// Protocol version. Bump on any grammar change — mismatched peers fail
/// loudly at the header instead of misparsing bodies.
pub const PROTO_VERSION: u32 = 2;

/// Protocol **minor** (capability level) within version 2, additive only.
/// Minor 1 adds: the optional `trace` line on sweep requests, `span`
/// lines in the sweep-response payload, and the `metrics` /
/// `recorder-dump` admin requests. Servers advertise theirs in
/// [`ServerStats::proto_minor`]; a client that needs tracing checks it
/// (and maps the older server's `unknown request tag` error to a clear
/// versioned message either way).
pub const PROTO_MINOR: u32 = 1;

const REQUEST_WORD: &str = "vericomp-request";
const RESPONSE_WORD: &str = "vericomp-response";
const REQUEST_HEADER: &str = "vericomp-request 2";
const RESPONSE_HEADER: &str = "vericomp-response 2";

/// Upper bound on a single `blob` payload. A peer declaring more is
/// rejected at the framing layer before any allocation of that size.
pub const MAX_BLOB_BYTES: u64 = 1 << 30;

/// A malformed or out-of-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// Checks a name/label operand: non-empty, no whitespace (they are
/// space-separated operands on the wire).
fn check_word(kind: &str, word: &str) -> Result<(), ProtoError> {
    if word.is_empty() {
        return err(format!("empty {kind}"));
    }
    if word.chars().any(char::is_whitespace) {
        return err(format!("{kind} `{word}` contains whitespace"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

/// Reads one frame (header through its `end` line) off a buffered stream,
/// honoring `blob <nbytes>` length prefixes: blob contents are consumed
/// by exact length, never scanned for `end`. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; EOF mid-frame (including mid-blob) is
/// an [`io::ErrorKind::UnexpectedEof`] error.
///
/// Both the client and the server's connection readers frame with this
/// one function, so either side can be tested against the other with
/// nothing but a socket pair.
///
/// # Errors
///
/// I/O errors from the stream; `InvalidData` for a blob declared larger
/// than [`MAX_BLOB_BYTES`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let start = frame.len();
        let n = reader.read_until(b'\n', &mut frame)?;
        if n == 0 {
            return if frame.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            };
        }
        let line = &frame[start..];
        let line = line.strip_suffix(b"\n").unwrap_or(line);
        if line == b"end" {
            return Ok(Some(frame));
        }
        if let Some(count) = line.strip_prefix(b"blob ") {
            // an unparseable count falls through to line scanning; the
            // decoder reports the malformation, framing stays safe
            let Some(nbytes) = std::str::from_utf8(count)
                .ok()
                .and_then(|w| w.parse::<u64>().ok())
            else {
                continue;
            };
            if nbytes > MAX_BLOB_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("blob of {nbytes} bytes exceeds the {MAX_BLOB_BYTES} byte cap"),
                ));
            }
            let before = frame.len();
            reader.take(nbytes).read_to_end(&mut frame)?;
            if (frame.len() - before) as u64 != nbytes {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-blob",
                ));
            }
        }
    }
}

/// Views a raw frame as text. Frames are UTF-8 by construction on the
/// encode side; a peer sending arbitrary bytes gets a protocol error,
/// never a panic.
///
/// # Errors
///
/// [`ProtoError`] when the frame is not valid UTF-8.
pub fn frame_text(frame: &[u8]) -> Result<&str, ProtoError> {
    std::str::from_utf8(frame).map_err(|_| ProtoError("frame is not valid UTF-8".into()))
}

/// A byte-offset cursor over a frame: line-at-a-time like the v1 decoder,
/// plus exact-length blob extraction that never confuses blob contents
/// with control lines.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor { s, pos: 0 }
    }

    /// The next line (without its newline), or `None` at end of frame.
    fn line(&mut self) -> Option<&'a str> {
        if self.pos >= self.s.len() {
            return None;
        }
        let rest = &self.s[self.pos..];
        match rest.find('\n') {
            Some(i) => {
                self.pos += i + 1;
                Some(&rest[..i])
            }
            None => {
                self.pos = self.s.len();
                Some(rest)
            }
        }
    }

    /// Exactly `nbytes` of blob content followed by its newline. Errors
    /// when the blob runs past the frame or splits a UTF-8 boundary (a
    /// hostile count can land mid-character; `str::get` refuses).
    fn blob(&mut self, nbytes: usize) -> Result<&'a str, ProtoError> {
        let end = self
            .pos
            .checked_add(nbytes)
            .ok_or_else(|| ProtoError("blob length overflows".into()))?;
        let content = self
            .s
            .get(self.pos..end)
            .ok_or_else(|| ProtoError("blob extends past the frame".into()))?;
        if self.s.as_bytes().get(end) != Some(&b'\n') {
            return err("blob not newline-terminated");
        }
        self.pos = end + 1;
        Ok(content)
    }
}

/// Parses a `blob <nbytes>` control line.
fn blob_line(line: Option<&str>) -> Result<usize, ProtoError> {
    let line = line.ok_or_else(|| ProtoError("frame truncated before blob".into()))?;
    let count = line
        .strip_prefix("blob ")
        .ok_or_else(|| ProtoError(format!("expected a blob line, got `{line}`")))?;
    let nbytes: u64 = count
        .parse()
        .map_err(|_| ProtoError(format!("bad blob length `{count}`")))?;
    if nbytes > MAX_BLOB_BYTES {
        return err(format!("blob of {nbytes} bytes exceeds the cap"));
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok(nbytes as usize)
}

/// Checks a `vericomp-request N` / `vericomp-response N` header line,
/// naming both versions on a mismatch so a skewed peer sees exactly what
/// to upgrade.
fn check_header(line: Option<&str>, word: &str) -> Result<(), ProtoError> {
    let Some(line) = line else {
        return err(format!("empty frame (expected `{word} {PROTO_VERSION}`)"));
    };
    let Some(rest) = line.strip_prefix(word) else {
        return err(format!(
            "bad header `{line}` (expected `{word} {PROTO_VERSION}`)"
        ));
    };
    let Some(version) = rest.strip_prefix(' ') else {
        return err(format!(
            "bad header `{line}` (expected `{word} {PROTO_VERSION}`)"
        ));
    };
    match version.parse::<u32>() {
        Ok(v) if v == PROTO_VERSION => Ok(()),
        Ok(v) => err(format!(
            "unsupported protocol version {v}: this peer speaks `{word} {PROTO_VERSION}`"
        )),
        Err(_) => err(format!("bad header `{line}`")),
    }
}

// ---------------------------------------------------------------------------
// field codecs
// ---------------------------------------------------------------------------

/// `PassConfig` as ten `0`/`1` characters in cache-key order.
#[must_use]
pub fn passes_to_bits(p: &PassConfig) -> String {
    [
        p.mem2reg,
        p.constprop,
        p.cse,
        p.dce,
        p.tunnel,
        p.strength,
        p.schedule,
        p.sda,
        p.full_palette,
        p.validators,
    ]
    .iter()
    .map(|&b| if b { '1' } else { '0' })
    .collect()
}

/// Parses the ten-bit `PassConfig` encoding.
pub fn passes_from_bits(bits: &str) -> Result<PassConfig, ProtoError> {
    let b: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => err(format!("bad pass bit `{c}`")),
        })
        .collect::<Result<_, _>>()?;
    if b.len() != 10 {
        return err(format!("expected 10 pass bits, got {}", b.len()));
    }
    Ok(PassConfig {
        mem2reg: b[0],
        constprop: b[1],
        cse: b[2],
        dce: b[3],
        tunnel: b[4],
        strength: b[5],
        schedule: b[6],
        sda: b[7],
        full_palette: b[8],
        validators: b[9],
    })
}

/// The 24 `u32` fields of a machine model, in `machine_digest` order.
fn machine_fields(m: &MachineConfig) -> [u32; 24] {
    [
        m.icache.size_bytes,
        m.icache.ways,
        m.icache.line_bytes,
        m.dcache.size_bytes,
        m.dcache.ways,
        m.dcache.line_bytes,
        m.mem_latency,
        m.fetch_latency,
        m.io_latency,
        m.text_base,
        m.data_base,
        m.stack_top,
        m.io_base,
        m.io_size,
        m.lat_int,
        m.lat_mul,
        m.lat_div,
        m.lat_fp,
        m.lat_fmadd,
        m.lat_fdiv,
        m.lat_fmove,
        m.lat_conv,
        m.lat_load,
        m.branch_penalty,
    ]
}

/// `MachineConfig` as 24 space-separated `u32`s in `machine_digest` order.
#[must_use]
pub fn machine_to_fields(m: &MachineConfig) -> String {
    machine_fields(m)
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the 24-field machine encoding.
pub fn machine_from_fields(text: &str) -> Result<MachineConfig, ProtoError> {
    let f: Vec<u32> = text
        .split(' ')
        .map(|w| {
            w.parse()
                .map_err(|_| ProtoError(format!("bad machine field `{w}`")))
        })
        .collect::<Result<_, _>>()?;
    if f.len() != 24 {
        return err(format!("expected 24 machine fields, got {}", f.len()));
    }
    Ok(MachineConfig {
        icache: CacheConfig {
            size_bytes: f[0],
            ways: f[1],
            line_bytes: f[2],
        },
        dcache: CacheConfig {
            size_bytes: f[3],
            ways: f[4],
            line_bytes: f[5],
        },
        mem_latency: f[6],
        fetch_latency: f[7],
        io_latency: f[8],
        text_base: f[9],
        data_base: f[10],
        stack_top: f[11],
        io_base: f[12],
        io_size: f[13],
        lat_int: f[14],
        lat_mul: f[15],
        lat_div: f[16],
        lat_fp: f[17],
        lat_fmadd: f[18],
        lat_fdiv: f[19],
        lat_fmove: f[20],
        lat_conv: f[21],
        lat_load: f[22],
        branch_penalty: f[23],
    })
}

// ---------------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------------

/// One unit of a wire sweep: identity (name, entry, canonical-source
/// digest) plus, when the server `need`ed it, the canonical body itself.
#[derive(Debug, Clone)]
pub struct WireUnit {
    /// Axis label of the unit.
    pub name: String,
    /// Entry-point function.
    pub entry: String,
    /// [`source_digest`] of the canonical pretty-printed source.
    pub digest: Digest,
    /// The canonical source body — `Some` exactly when uploaded.
    pub body: Option<Arc<String>>,
}

/// The wire form of a sweep request: units by digest (bodies attached
/// only where negotiated), explicit config and machine axes.
#[derive(Debug, Clone)]
pub struct WireSweep {
    /// Unit axis, in request order.
    pub units: Vec<WireUnit>,
    /// Config axis (label, passes).
    pub configs: Vec<(String, PassConfig)>,
    /// Machine axis (label, machine).
    pub machines: Vec<(String, MachineConfig)>,
    /// Client-chosen trace id (0 = untraced). A traced sweep's response
    /// carries the server-side spans of exactly this request, each
    /// tagged `trace=<id>` — how `compile_fleet --connect --trace`
    /// correlates the two processes' timelines.
    pub trace: u64,
}

impl WireSweep {
    /// Projects a (normalized) [`SweepSpec`] to its wire form, attaching
    /// a body to every unit `upload` selects — the client passes the
    /// server's `need` answer here.
    #[must_use]
    pub fn from_spec(spec: &SweepSpec, upload: impl Fn(Digest) -> bool) -> WireSweep {
        WireSweep {
            units: spec
                .units()
                .iter()
                .map(|u| {
                    let digest = u.source_digest();
                    WireUnit {
                        name: u.name.clone(),
                        entry: u.entry.clone(),
                        digest,
                        body: upload(digest).then(|| Arc::clone(u.canonical())),
                    }
                })
                .collect(),
            configs: spec.configs().to_vec(),
            machines: spec.machines().to_vec(),
            trace: 0,
        }
    }

    /// Tags the sweep with a trace id (builder-style).
    #[must_use]
    pub fn with_trace(mut self, trace: u64) -> WireSweep {
        self.trace = trace;
        self
    }
}

/// One client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a sweep matrix. Axes must be explicit (use
    /// [`normalize_spec`] client-side so wire specs carry the same labels
    /// a solo `run_sweep` would default to).
    Sweep(WireSweep),
    /// Digest negotiation: which of these canonical-source digests does
    /// the server still need bodies for?
    Have(Vec<Digest>),
    /// Fetch a [`ServerStats`] snapshot.
    Stats,
    /// Fetch the server's metrics registry as JSON (proto 2.1).
    Metrics,
    /// Fetch the server's flight-recorder ring as JSON (proto 2.1).
    RecorderDump,
    /// Drain and stop the server.
    Shutdown,
}

/// Makes a spec's implicit axes explicit with **the same defaults
/// `Pipeline::run_sweep` applies**: an empty config axis becomes the
/// single `verified` preset, an empty machine axis becomes `machine`
/// under the label `default`. Sending a normalized spec guarantees the
/// response's labels — and therefore its digest — match a solo run.
#[must_use]
pub fn normalize_spec(spec: &SweepSpec, machine: &MachineConfig) -> SweepSpec {
    let mut out = SweepSpec::new();
    for unit in spec.units() {
        out = out.unit(unit.clone());
    }
    if spec.configs().is_empty() {
        out = out.level(OptLevel::Verified);
    } else {
        for (label, passes) in spec.configs() {
            out = out.config(label, passes);
        }
    }
    if spec.machines().is_empty() {
        out = out.machine("default", machine);
    } else {
        for (label, m) in spec.machines() {
            out = out.machine(label, m);
        }
    }
    out
}

/// Serializes a request document.
///
/// # Errors
///
/// [`ProtoError`] when a sweep has empty config/machine axes (normalize
/// first) or a name/label is empty or contains whitespace.
pub fn encode_request(request: &Request) -> Result<String, ProtoError> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{REQUEST_HEADER}");
    match request {
        Request::Stats => s.push_str("stats\n"),
        Request::Metrics => s.push_str("metrics\n"),
        Request::RecorderDump => s.push_str("recorder-dump\n"),
        Request::Shutdown => s.push_str("shutdown\n"),
        Request::Have(digests) => {
            let _ = writeln!(s, "have {}", digests.len());
            for d in digests {
                let _ = writeln!(s, "digest {d}");
            }
        }
        Request::Sweep(sweep) => {
            if sweep.configs.is_empty() || sweep.machines.is_empty() {
                return err("sweep request must have explicit config and machine axes");
            }
            s.push_str("sweep\n");
            if sweep.trace != 0 {
                let _ = writeln!(s, "trace {:016x}", sweep.trace);
            }
            for unit in &sweep.units {
                check_word("unit name", &unit.name)?;
                check_word("entry", &unit.entry)?;
                match &unit.body {
                    None => {
                        let _ =
                            writeln!(s, "unit-ref {} {} {}", unit.entry, unit.digest, unit.name);
                    }
                    Some(body) => {
                        let _ = writeln!(s, "unit {} {} {}", unit.entry, unit.digest, unit.name);
                        let _ = writeln!(s, "blob {}", body.len());
                        s.push_str(body);
                        s.push('\n');
                    }
                }
            }
            for (label, passes) in &sweep.configs {
                check_word("config label", label)?;
                let _ = writeln!(s, "config {} {}", label, passes_to_bits(passes));
            }
            for (label, machine) in &sweep.machines {
                check_word("machine label", label)?;
                let _ = writeln!(s, "machine {} {}", label, machine_to_fields(machine));
            }
        }
    }
    s.push_str("end\n");
    Ok(s)
}

/// Parses the `entry digest name` operands shared by `unit` and
/// `unit-ref` lines.
fn unit_operands(rest: &str) -> Result<(String, Digest, String), ProtoError> {
    let mut it = rest.splitn(3, ' ');
    let entry = it.next().unwrap_or("");
    let digest = it
        .next()
        .and_then(Digest::from_hex)
        .ok_or_else(|| ProtoError("bad unit digest".into()))?;
    let name = it.next().unwrap_or("");
    check_word("unit name", name)?;
    check_word("entry", entry)?;
    Ok((entry.to_owned(), digest, name.to_owned()))
}

/// Parses `n` `digest hex32` lines followed by `end`.
fn decode_digest_list(cursor: &mut Cursor<'_>, n: usize) -> Result<Vec<Digest>, ProtoError> {
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let line = cursor
            .line()
            .ok_or_else(|| ProtoError("digest list truncated".into()))?;
        let hex = line
            .strip_prefix("digest ")
            .ok_or_else(|| ProtoError(format!("bad digest line `{line}`")))?;
        out.push(Digest::from_hex(hex).ok_or_else(|| ProtoError(format!("bad digest `{hex}`")))?);
    }
    match cursor.line() {
        Some("end") => Ok(out),
        _ => err("digest list not terminated by `end`"),
    }
}

/// Parses a request document (header through `end`).
///
/// # Errors
///
/// [`ProtoError`] on any malformation — including an uploaded body whose
/// content does not hash to its declared digest (which would otherwise
/// poison the digest-addressed parse cache); the server maps every such
/// error to an `error` response, never a crash.
pub fn decode_request(text: &str) -> Result<Request, ProtoError> {
    let mut cursor = Cursor::new(text);
    check_header(cursor.line(), REQUEST_WORD)?;
    let first = match cursor.line() {
        Some(l) => l,
        None => return err("request lacks a body"),
    };
    let (tag, rest) = first.split_once(' ').unwrap_or((first, ""));
    let body = match (tag, rest) {
        ("stats", "") => Request::Stats,
        ("metrics", "") => Request::Metrics,
        ("recorder-dump", "") => Request::RecorderDump,
        ("shutdown", "") => Request::Shutdown,
        ("have", n) => {
            let n: usize = n
                .parse()
                .map_err(|_| ProtoError(format!("bad have count `{n}`")))?;
            return Ok(Request::Have(decode_digest_list(&mut cursor, n)?));
        }
        ("sweep", "") => {
            let mut units = Vec::new();
            let mut configs = Vec::new();
            let mut machines = Vec::new();
            let mut trace = 0u64;
            loop {
                let line = match cursor.line() {
                    Some(l) => l,
                    None => return err("request truncated before `end`"),
                };
                let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
                match tag {
                    "trace" => {
                        trace = u64::from_str_radix(rest, 16)
                            .map_err(|_| ProtoError(format!("bad trace id `{rest}`")))?;
                    }
                    "unit-ref" => {
                        let (entry, digest, name) = unit_operands(rest)?;
                        units.push(WireUnit {
                            name,
                            entry,
                            digest,
                            body: None,
                        });
                    }
                    "unit" => {
                        let (entry, digest, name) = unit_operands(rest)?;
                        let nbytes = blob_line(cursor.line())?;
                        let body = cursor.blob(nbytes)?;
                        if source_digest(body) != digest {
                            return err(format!(
                                "unit `{name}` body does not hash to its declared digest"
                            ));
                        }
                        units.push(WireUnit {
                            name,
                            entry,
                            digest,
                            body: Some(Arc::new(body.to_owned())),
                        });
                    }
                    "config" => {
                        let (label, bits) = rest
                            .split_once(' ')
                            .ok_or_else(|| ProtoError("bad config line".into()))?;
                        check_word("config label", label)?;
                        configs.push((label.to_owned(), passes_from_bits(bits)?));
                    }
                    "machine" => {
                        let (label, fields) = rest
                            .split_once(' ')
                            .ok_or_else(|| ProtoError("bad machine line".into()))?;
                        check_word("machine label", label)?;
                        machines.push((label.to_owned(), machine_from_fields(fields)?));
                    }
                    "end" => break,
                    _ => return err(format!("unknown request tag `{tag}`")),
                }
            }
            if configs.is_empty() || machines.is_empty() {
                return err("sweep request lacks config or machine axis");
            }
            return Ok(Request::Sweep(WireSweep {
                units,
                configs,
                machines,
                trace,
            }));
        }
        _ => return err(format!("unknown request kind `{first}`")),
    };
    match cursor.line() {
        Some("end") => Ok(body),
        _ => err("request not terminated by `end`"),
    }
}

// ---------------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------------

/// One cell of a sweep response — the response-side projection of a
/// `SweepCell`: labels, the WCET bound, cache provenance, the validator
/// verdict, and the full output digest (everything the determinism gates
/// compare, without shipping the binary back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSummary {
    /// Unit-axis label.
    pub unit: String,
    /// Config-axis label.
    pub config: String,
    /// Machine-axis label.
    pub machine: String,
    /// The cell's WCET bound, in cycles.
    pub wcet: u64,
    /// Whether the artifact was served from the warm store.
    pub cached: bool,
    /// The translation-validation verdict the artifact carries.
    pub verdict: Verdict,
    /// [`Artifact::output_digest`](crate::store::Artifact::output_digest).
    pub output_digest: Digest,
}

/// The digest of a cell sequence, **bit-compatible with
/// [`SweepResult::digest`]**: cells in flattening order, each hashed as
/// (labels, output-digest halves). Client and server both recompute it;
/// the determinism gates compare it against solo runs.
#[must_use]
pub fn cells_digest(cells: &[CellSummary]) -> Digest {
    let mut h = Hasher::new();
    for cell in cells {
        h.str(&cell.unit).str(&cell.config).str(&cell.machine);
        h.u64(cell.output_digest.0 as u64)
            .u64((cell.output_digest.0 >> 64) as u64);
    }
    h.finish()
}

/// A served sweep: axis labels, cells in flattening order, the request's
/// share of pipeline stats, and the digest.
#[derive(Debug, Clone)]
pub struct SweepResponse {
    /// Unit-axis labels, in request order.
    pub units: Vec<String>,
    /// Config-axis labels, in request order.
    pub configs: Vec<String>,
    /// Machine-axis labels, in request order.
    pub machines: Vec<String>,
    /// Cells in flattening order (unit-major, config, machine).
    pub cells: Vec<CellSummary>,
    /// This request's stats (cache hits count per-request, so a shared
    /// cell shows as a hit for every requester after the first).
    pub stats: PipelineStats,
    /// Server-side spans of this request (traced sweeps only, proto
    /// 2.1): stage/pass spans re-projected to the request's own cell
    /// indices, timestamps on the **server's** batch timeline. Not part
    /// of [`cells_digest`] — spans are timing, the digest is work.
    pub spans: Vec<Span>,
    /// [`cells_digest`] as the server computed it. [`verify`](SweepResponse::verify)
    /// recomputes client-side.
    pub digest: Digest,
}

impl SweepResponse {
    /// Projects a complete solo [`SweepResult`] to its wire form — the
    /// reference the determinism gates compare daemon responses against.
    #[must_use]
    pub fn from_result(result: &SweepResult) -> SweepResponse {
        let cells: Vec<CellSummary> = result
            .cells()
            .iter()
            .map(|c| CellSummary {
                unit: c.unit.clone(),
                config: c.config.clone(),
                machine: c.machine.clone(),
                wcet: c.wcet(),
                cached: c.outcome.cached,
                verdict: c.outcome.artifact.verdict,
                output_digest: c.outcome.artifact.output_digest(),
            })
            .collect();
        let digest = cells_digest(&cells);
        debug_assert_eq!(digest, result.digest());
        SweepResponse {
            units: result.unit_labels().to_vec(),
            configs: result.config_labels().to_vec(),
            machines: result.machine_labels().to_vec(),
            cells,
            stats: result.stats.clone(),
            spans: Vec::new(),
            digest,
        }
    }

    /// Recomputes the digest from the cells and checks it against the
    /// transmitted one.
    #[must_use]
    pub fn verify(&self) -> bool {
        cells_digest(&self.cells) == self.digest
    }

    /// The cell at labeled coordinates (first occurrence per axis).
    #[must_use]
    pub fn get(&self, unit: &str, config: &str, machine: &str) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.unit == unit && c.config == config && c.machine == machine)
    }
}

/// Server-side aggregate metrics, served to `stats` requests and
/// embedded in `BENCH_daemon.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sweep requests served (stats/shutdown requests not counted).
    pub requests: u64,
    /// Batches executed (one `run_sweep` each).
    pub batches: u64,
    /// Cells across all batches, after cross-request dedup.
    pub batched_cells: u64,
    /// Cells compiled fresh.
    pub jobs_run: u64,
    /// Cells served from the warm store.
    pub jobs_cached: u64,
    /// Store entries evicted over the server's lifetime.
    pub evictions: u64,
    /// Store entries resident at snapshot time.
    pub resident: u64,
    /// Store resident bytes at snapshot time.
    pub store_bytes: u64,
    /// Store shard count.
    pub shards: u64,
    /// Requests queued at snapshot time.
    pub queue_depth: u64,
    /// Peak queued requests observed.
    pub queue_peak: u64,
    /// Batches deferred by admission control (queue head would have
    /// exceeded the in-flight cell bound while a batch ran).
    pub deferred: u64,
    /// Summed compile-stage nanos across batches.
    pub compile_ns: u64,
    /// Summed analyze-stage nanos across batches.
    pub analyze_ns: u64,
    /// Summed store-stage nanos across batches.
    pub store_ns: u64,
    /// Summed batch wall-clock nanos.
    pub wall_ns: u64,
    /// Configured hit-rate SLO in thousandths (`900` = 0.900); `0` means
    /// no SLO configured.
    pub slo_per_mille: u64,
    /// Request bytes received off the wire (all frames, all connections).
    pub bytes_rx: u64,
    /// Response bytes written to the wire.
    pub bytes_tx: u64,
    /// Unit digests offered through `have` negotiation.
    pub units_offered: u64,
    /// Unit bodies actually uploaded in sweep requests.
    pub units_uploaded: u64,
    /// Sweep units resolved from the parse cache without parsing.
    pub parse_hits: u64,
    /// Sweep units that had to be parsed (first sighting of a digest).
    pub parse_misses: u64,
    /// Parse-cache entries evicted over the server's lifetime.
    pub parse_evictions: u64,
    /// Parse-cache entries resident at snapshot time.
    pub parse_resident: u64,
    /// Parse-cache resident bytes (canonical text) at snapshot time.
    pub parse_bytes: u64,
    /// p50 per-request wall latency (ns) from the server's histogram.
    pub request_p50_ns: u64,
    /// p99 per-request wall latency (ns) from the server's histogram.
    pub request_p99_ns: u64,
    /// Configured p99 latency SLO in ns; `0` means none configured.
    pub slo_p99_ns: u64,
    /// The server's [`PROTO_MINOR`] capability level.
    pub proto_minor: u64,
}

impl ServerStats {
    /// Lifetime cache hit rate over batched cells; `0.0` before any cell.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.jobs_run + self.jobs_cached;
        if total == 0 {
            0.0
        } else {
            self.jobs_cached as f64 / total as f64
        }
    }

    /// Lifetime parse-cache hit rate over resolved sweep units; `0.0`
    /// before any unit.
    #[must_use]
    pub fn parse_hit_rate(&self) -> f64 {
        let total = self.parse_hits + self.parse_misses;
        if total == 0 {
            0.0
        } else {
            self.parse_hits as f64 / total as f64
        }
    }

    /// Whether the lifetime hit rate meets the configured SLO (vacuously
    /// true without one).
    #[must_use]
    pub fn slo_met(&self) -> bool {
        let hit_ok =
            self.slo_per_mille == 0 || self.hit_rate() * 1000.0 >= self.slo_per_mille as f64;
        let p99_ok = self.slo_p99_ns == 0 || self.request_p99_ns <= self.slo_p99_ns;
        hit_ok && p99_ok
    }

    /// Greppable text rendering — `server:`-prefixed lines, the SLO
    /// verdict last.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "server: requests {} batches {} cells {} queue {} (peak {}) deferred {}",
            self.requests,
            self.batches,
            self.batched_cells,
            self.queue_depth,
            self.queue_peak,
            self.deferred,
        );
        let _ = writeln!(
            s,
            "server: store resident {} bytes {} shards {} evictions {}",
            self.resident, self.store_bytes, self.shards, self.evictions,
        );
        let _ = writeln!(
            s,
            "server: wire rx {} tx {} offered {} uploaded {}",
            self.bytes_rx, self.bytes_tx, self.units_offered, self.units_uploaded,
        );
        let _ = writeln!(
            s,
            "server: parse-cache hits {} misses {} evictions {} resident {} bytes {} hit-rate {:.3}",
            self.parse_hits,
            self.parse_misses,
            self.parse_evictions,
            self.parse_resident,
            self.parse_bytes,
            self.parse_hit_rate(),
        );
        let _ = writeln!(
            s,
            "server: jobs run {} cached {} hit-rate {:.3}",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate(),
        );
        let _ = writeln!(
            s,
            "server: stage compile {}ns analyze {}ns store {}ns wall {}ns",
            self.compile_ns, self.analyze_ns, self.store_ns, self.wall_ns,
        );
        let _ = writeln!(
            s,
            "server: latency request p50 {}ns p99 {}ns proto {}.{}",
            self.request_p50_ns, self.request_p99_ns, PROTO_VERSION, self.proto_minor,
        );
        if self.slo_p99_ns > 0 {
            let _ = writeln!(
                s,
                "server: p99 SLO {}ns: {} (p99 {}ns)",
                self.slo_p99_ns,
                if self.request_p99_ns <= self.slo_p99_ns {
                    "met"
                } else {
                    "MISSED"
                },
                self.request_p99_ns,
            );
        }
        if self.slo_per_mille > 0 {
            let _ = writeln!(
                s,
                "server: hit-rate SLO {:.3}: {} (store {:.3} parse {:.3})",
                self.slo_per_mille as f64 / 1000.0,
                if self.slo_met() { "met" } else { "MISSED" },
                self.hit_rate(),
                self.parse_hit_rate(),
            );
        }
        s
    }

    /// Single-line JSON object (for `BENCH_daemon.json` embedding).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"batches\":{},\"batched_cells\":{},",
                "\"jobs_run\":{},\"jobs_cached\":{},\"hit_rate\":{:.6},",
                "\"evictions\":{},\"resident\":{},\"store_bytes\":{},\"shards\":{},",
                "\"queue_depth\":{},\"queue_peak\":{},\"deferred\":{},",
                "\"compile_ns\":{},\"analyze_ns\":{},\"store_ns\":{},\"wall_ns\":{},",
                "\"bytes_rx\":{},\"bytes_tx\":{},",
                "\"units_offered\":{},\"units_uploaded\":{},",
                "\"parse_hits\":{},\"parse_misses\":{},\"parse_hit_rate\":{:.6},",
                "\"parse_evictions\":{},\"parse_resident\":{},\"parse_bytes\":{},",
                "\"request_p50_ns\":{},\"request_p99_ns\":{},\"slo_p99_ns\":{},",
                "\"proto_minor\":{},",
                "\"slo_per_mille\":{},\"slo_met\":{}}}"
            ),
            self.requests,
            self.batches,
            self.batched_cells,
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate(),
            self.evictions,
            self.resident,
            self.store_bytes,
            self.shards,
            self.queue_depth,
            self.queue_peak,
            self.deferred,
            self.compile_ns,
            self.analyze_ns,
            self.store_ns,
            self.wall_ns,
            self.bytes_rx,
            self.bytes_tx,
            self.units_offered,
            self.units_uploaded,
            self.parse_hits,
            self.parse_misses,
            self.parse_hit_rate(),
            self.parse_evictions,
            self.parse_resident,
            self.parse_bytes,
            self.request_p50_ns,
            self.request_p99_ns,
            self.slo_p99_ns,
            self.proto_minor,
            self.slo_per_mille,
            self.slo_met(),
        )
    }

    fn fields(&self) -> [(&'static str, u64); 30] {
        [
            ("requests", self.requests),
            ("batches", self.batches),
            ("batched_cells", self.batched_cells),
            ("jobs_run", self.jobs_run),
            ("jobs_cached", self.jobs_cached),
            ("evictions", self.evictions),
            ("resident", self.resident),
            ("store_bytes", self.store_bytes),
            ("shards", self.shards),
            ("queue_depth", self.queue_depth),
            ("queue_peak", self.queue_peak),
            ("deferred", self.deferred),
            ("compile_ns", self.compile_ns),
            ("analyze_ns", self.analyze_ns),
            ("store_ns", self.store_ns),
            ("wall_ns", self.wall_ns),
            ("slo_per_mille", self.slo_per_mille),
            ("bytes_rx", self.bytes_rx),
            ("bytes_tx", self.bytes_tx),
            ("units_offered", self.units_offered),
            ("units_uploaded", self.units_uploaded),
            ("parse_hits", self.parse_hits),
            ("parse_misses", self.parse_misses),
            ("parse_evictions", self.parse_evictions),
            ("parse_resident", self.parse_resident),
            ("parse_bytes", self.parse_bytes),
            ("request_p50_ns", self.request_p50_ns),
            ("request_p99_ns", self.request_p99_ns),
            ("slo_p99_ns", self.slo_p99_ns),
            ("proto_minor", self.proto_minor),
        ]
    }

    fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "requests" => &mut self.requests,
            "batches" => &mut self.batches,
            "batched_cells" => &mut self.batched_cells,
            "jobs_run" => &mut self.jobs_run,
            "jobs_cached" => &mut self.jobs_cached,
            "evictions" => &mut self.evictions,
            "resident" => &mut self.resident,
            "store_bytes" => &mut self.store_bytes,
            "shards" => &mut self.shards,
            "queue_depth" => &mut self.queue_depth,
            "queue_peak" => &mut self.queue_peak,
            "deferred" => &mut self.deferred,
            "compile_ns" => &mut self.compile_ns,
            "analyze_ns" => &mut self.analyze_ns,
            "store_ns" => &mut self.store_ns,
            "wall_ns" => &mut self.wall_ns,
            "slo_per_mille" => &mut self.slo_per_mille,
            "bytes_rx" => &mut self.bytes_rx,
            "bytes_tx" => &mut self.bytes_tx,
            "units_offered" => &mut self.units_offered,
            "units_uploaded" => &mut self.units_uploaded,
            "parse_hits" => &mut self.parse_hits,
            "parse_misses" => &mut self.parse_misses,
            "parse_evictions" => &mut self.parse_evictions,
            "parse_resident" => &mut self.parse_resident,
            "parse_bytes" => &mut self.parse_bytes,
            "request_p50_ns" => &mut self.request_p50_ns,
            "request_p99_ns" => &mut self.request_p99_ns,
            "slo_p99_ns" => &mut self.slo_p99_ns,
            "proto_minor" => &mut self.proto_minor,
            _ => return false,
        };
        *slot = value;
        true
    }
}

/// One server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A served sweep.
    Sweep(SweepResponse),
    /// The subset of a `have` offer the server needs bodies for.
    Need(Vec<Digest>),
    /// A stats snapshot.
    Stats(ServerStats),
    /// The metrics registry as one JSON object (proto 2.1).
    Metrics(String),
    /// The flight-recorder ring as one JSON object (proto 2.1).
    Recorder(String),
    /// Acknowledgement (shutdown).
    Ok,
    /// The request was understood as a frame but rejected (parse error,
    /// pipeline error). The connection stays usable.
    Error(String),
}

/// The line-oriented sweep payload carried inside the response blob.
fn encode_sweep_payload(sweep: &SweepResponse) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "axes {} {} {}",
        sweep.units.len(),
        sweep.configs.len(),
        sweep.machines.len()
    );
    for u in &sweep.units {
        let _ = writeln!(s, "axis-unit {u}");
    }
    for c in &sweep.configs {
        let _ = writeln!(s, "axis-config {c}");
    }
    for m in &sweep.machines {
        let _ = writeln!(s, "axis-machine {m}");
    }
    for cell in &sweep.cells {
        let _ = writeln!(
            s,
            "cell {} {} {} {} {} {}{}{} {}",
            cell.unit,
            cell.config,
            cell.machine,
            cell.wcet,
            u8::from(cell.cached),
            u8::from(cell.verdict.allocation_checked),
            u8::from(cell.verdict.tunnel_validated),
            u8::from(cell.verdict.schedule_validated),
            cell.output_digest,
        );
    }
    for span in &sweep.spans {
        let _ = write!(
            s,
            "span {} {} {} {} {}",
            span.kind.cat(),
            span.job,
            span.ts_ns,
            span.dur_ns,
            span.name,
        );
        if !span.detail.is_empty() {
            let _ = write!(s, " {}", span.detail.replace('\n', " "));
        }
        s.push('\n');
    }
    let st = &sweep.stats;
    let _ = writeln!(
        s,
        "stats {} {} {} {} {} {}",
        st.jobs_run, st.jobs_cached, st.compile_ns, st.analyze_ns, st.store_ns, st.wall_ns,
    );
    let _ = write!(s, "digest {}", sweep.digest);
    s
}

/// Serializes a response document.
#[must_use]
pub fn encode_response(response: &Response) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{RESPONSE_HEADER}");
    match response {
        Response::Ok => s.push_str("ok\n"),
        Response::Error(msg) => {
            let one_line = msg.replace('\n', " ");
            let _ = writeln!(s, "error {one_line}");
        }
        Response::Need(digests) => {
            let _ = writeln!(s, "need {}", digests.len());
            for d in digests {
                let _ = writeln!(s, "digest {d}");
            }
        }
        Response::Stats(stats) => {
            s.push_str("server-stats\n");
            for (name, value) in stats.fields() {
                let _ = writeln!(s, "{name} {value}");
            }
        }
        Response::Sweep(sweep) => {
            let payload = encode_sweep_payload(sweep);
            s.push_str("sweep\n");
            let _ = writeln!(s, "blob {}", payload.len());
            s.push_str(&payload);
            s.push('\n');
        }
        Response::Metrics(json) => {
            s.push_str("metrics\n");
            let _ = writeln!(s, "blob {}", json.len());
            s.push_str(json);
            s.push('\n');
        }
        Response::Recorder(json) => {
            s.push_str("recorder\n");
            let _ = writeln!(s, "blob {}", json.len());
            s.push_str(json);
            s.push('\n');
        }
    }
    s.push_str("end\n");
    s
}

/// Parses the sweep payload (the blob's contents).
fn decode_sweep_payload(payload: &str) -> Result<SweepResponse, ProtoError> {
    let mut lines = payload.lines();
    let first = lines
        .next()
        .ok_or_else(|| ProtoError("empty sweep payload".into()))?;
    let counts = first
        .strip_prefix("axes ")
        .ok_or_else(|| ProtoError(format!("bad axes line `{first}`")))?;
    let mut it = counts.split(' ');
    let mut count = || -> Result<usize, ProtoError> {
        it.next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| ProtoError("bad sweep axis counts".into()))
    };
    let nu = count()?;
    let nc = count()?;
    let nm = count()?;
    let mut axis = |kind: &str, n: usize| -> Result<Vec<String>, ProtoError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| ProtoError(format!("{kind} axis truncated")))?;
            let label = line
                .strip_prefix(&format!("axis-{kind} "))
                .ok_or_else(|| ProtoError(format!("bad {kind} axis line `{line}`")))?;
            check_word(&format!("{kind} label"), label)?;
            out.push(label.to_owned());
        }
        Ok(out)
    };
    let units = axis("unit", nu)?;
    let configs = axis("config", nc)?;
    let machines = axis("machine", nm)?;
    let mut cells = Vec::with_capacity(nu * nc * nm);
    let mut spans = Vec::new();
    let mut stats = PipelineStats::default();
    let mut digest = None;
    for line in lines {
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "cell" => {
                let w: Vec<&str> = rest.split(' ').collect();
                if w.len() != 7 {
                    return err(format!("bad cell line `{line}`"));
                }
                let vbits: Vec<char> = w[5].chars().collect();
                if vbits.len() != 3 || vbits.iter().any(|&c| c != '0' && c != '1') {
                    return err(format!("bad verdict bits `{}`", w[5]));
                }
                cells.push(CellSummary {
                    unit: w[0].to_owned(),
                    config: w[1].to_owned(),
                    machine: w[2].to_owned(),
                    wcet: w[3]
                        .parse()
                        .map_err(|_| ProtoError(format!("bad wcet `{}`", w[3])))?,
                    cached: w[4] == "1",
                    verdict: Verdict {
                        allocation_checked: vbits[0] == '1',
                        tunnel_validated: vbits[1] == '1',
                        schedule_validated: vbits[2] == '1',
                    },
                    output_digest: Digest::from_hex(w[6])
                        .ok_or_else(|| ProtoError(format!("bad digest `{}`", w[6])))?,
                });
            }
            "span" => {
                let w: Vec<&str> = rest.splitn(5, ' ').collect();
                if w.len() != 5 {
                    return err(format!("bad span line `{line}`"));
                }
                let kind = SpanKind::from_cat(w[0])
                    .ok_or_else(|| ProtoError(format!("bad span category `{}`", w[0])))?;
                let num = |v: &str| -> Result<u64, ProtoError> {
                    v.parse()
                        .map_err(|_| ProtoError(format!("bad span number `{v}`")))
                };
                let (name, detail) = w[4].split_once(' ').unwrap_or((w[4], ""));
                check_word("span name", name)?;
                spans.push(Span {
                    name: name.to_owned(),
                    kind,
                    #[allow(clippy::cast_possible_truncation)]
                    job: num(w[1])? as u32,
                    pid: 1,
                    ts_ns: num(w[2])?,
                    dur_ns: num(w[3])?,
                    detail: detail.to_owned(),
                });
            }
            "stats" => {
                let v: Vec<u64> = rest
                    .split(' ')
                    .map(|w| {
                        w.parse()
                            .map_err(|_| ProtoError(format!("bad stats value `{w}`")))
                    })
                    .collect::<Result<_, _>>()?;
                if v.len() != 6 {
                    return err(format!("bad stats line `{line}`"));
                }
                stats.jobs_run = v[0];
                stats.jobs_cached = v[1];
                stats.compile_ns = v[2];
                stats.analyze_ns = v[3];
                stats.store_ns = v[4];
                stats.wall_ns = v[5];
            }
            "digest" => {
                digest = Some(
                    Digest::from_hex(rest)
                        .ok_or_else(|| ProtoError(format!("bad digest `{rest}`")))?,
                );
            }
            _ => return err(format!("unknown payload tag `{tag}`")),
        }
    }
    if cells.len() != nu * nc * nm {
        return err(format!(
            "expected {} cells, got {}",
            nu * nc * nm,
            cells.len()
        ));
    }
    let response = SweepResponse {
        units,
        configs,
        machines,
        cells,
        stats,
        spans,
        digest: digest.ok_or_else(|| ProtoError("sweep response lacks digest".into()))?,
    };
    if !response.verify() {
        return err("sweep response digest does not match its cells");
    }
    Ok(response)
}

/// Parses a response document (header through `end`).
///
/// # Errors
///
/// [`ProtoError`] on any malformation.
pub fn decode_response(text: &str) -> Result<Response, ProtoError> {
    let mut cursor = Cursor::new(text);
    check_header(cursor.line(), RESPONSE_WORD)?;
    let first = match cursor.line() {
        Some(l) => l,
        None => return err("response lacks a body"),
    };
    let (tag, rest) = first.split_once(' ').unwrap_or((first, ""));
    let body = match tag {
        "ok" => Response::Ok,
        "error" => Response::Error(rest.to_owned()),
        "need" => {
            let n: usize = rest
                .parse()
                .map_err(|_| ProtoError(format!("bad need count `{rest}`")))?;
            return Ok(Response::Need(decode_digest_list(&mut cursor, n)?));
        }
        "server-stats" => {
            let mut stats = ServerStats::default();
            loop {
                let line = match cursor.line() {
                    Some(l) => l,
                    None => return err("stats response truncated"),
                };
                if line == "end" {
                    return Ok(Response::Stats(stats));
                }
                let (name, value) = line
                    .split_once(' ')
                    .ok_or_else(|| ProtoError(format!("bad stats line `{line}`")))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| ProtoError(format!("bad stats value `{value}`")))?;
                if !stats.set_field(name, value) {
                    return err(format!("unknown stats field `{name}`"));
                }
            }
        }
        "sweep" => {
            let nbytes = blob_line(cursor.line())?;
            let payload = cursor.blob(nbytes)?;
            let response = decode_sweep_payload(payload)?;
            return match cursor.line() {
                Some("end") => Ok(Response::Sweep(response)),
                _ => err("response not terminated by `end`"),
            };
        }
        "metrics" | "recorder" => {
            let nbytes = blob_line(cursor.line())?;
            let payload = cursor.blob(nbytes)?.to_owned();
            let response = if tag == "metrics" {
                Response::Metrics(payload)
            } else {
                Response::Recorder(payload)
            };
            return match cursor.line() {
                Some("end") => Ok(response),
                _ => err("response not terminated by `end`"),
            };
        }
        _ => return err(format!("unknown response kind `{tag}`")),
    };
    match cursor.line() {
        Some("end") => Ok(body),
        _ => err("response not terminated by `end`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_core::OptLevel;
    use vericomp_dataflow::fleet;
    use vericomp_minic::pretty::program_to_c;

    fn sample_spec() -> SweepSpec {
        let nodes = fleet::named_suite();
        SweepSpec::new()
            .nodes(&nodes[..2])
            .levels([OptLevel::Verified, OptLevel::OptFull])
            .machine("mpc755", &MachineConfig::mpc755())
            .machine("tiny", &MachineConfig::tiny_caches())
    }

    #[test]
    fn passes_bits_roundtrip_all_presets() {
        for level in [
            OptLevel::PatternO0,
            OptLevel::OptNoRegalloc,
            OptLevel::Verified,
            OptLevel::OptFull,
        ] {
            let p = PassConfig::for_level(level);
            let bits = passes_to_bits(&p);
            assert_eq!(bits.len(), 10);
            assert_eq!(passes_from_bits(&bits).expect("parses"), p);
        }
        assert!(passes_from_bits("11111").is_err());
        assert!(passes_from_bits("111111111x").is_err());
    }

    #[test]
    fn machine_fields_roundtrip_and_reject_malformation() {
        for m in [MachineConfig::mpc755(), MachineConfig::tiny_caches()] {
            let text = machine_to_fields(&m);
            assert_eq!(machine_from_fields(&text).expect("parses"), m);
        }
        assert!(machine_from_fields("1 2 3").is_err());
        assert!(machine_from_fields(&"x ".repeat(24).trim_end()).is_err());
    }

    #[test]
    fn sweep_request_roundtrips_with_identical_cache_keys() {
        let spec = sample_spec();
        // uploading everything carries every body with its digest
        let wire = WireSweep::from_spec(&spec, |_| true);
        let text = encode_request(&Request::Sweep(wire)).expect("encodes");
        let Request::Sweep(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        assert_eq!(back.units.len(), spec.units().len());
        assert_eq!(back.configs, spec.configs());
        assert_eq!(back.machines, spec.machines());
        // the round-tripped bodies derive the same cache keys — the
        // property that makes the daemon's store useful to remote clients
        for (a, b) in spec.units().iter().zip(&back.units) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.entry, b.entry);
            assert_eq!(a.source_digest(), b.digest);
            let body = b.body.as_ref().expect("uploaded");
            assert_eq!(source_digest(body), b.digest);
            let verified = PassConfig::for_level(OptLevel::Verified);
            let m = MachineConfig::mpc755();
            assert_eq!(
                crate::store::artifact_key(&program_to_c(&a.source), &a.entry, &verified, &m),
                crate::store::artifact_key(body, &b.entry, &verified, &m),
                "unit `{}` changed key over the wire",
                a.name
            );
        }
    }

    #[test]
    fn unit_refs_travel_without_bodies() {
        let spec = sample_spec();
        let wire = WireSweep::from_spec(&spec, |_| false);
        let text = encode_request(&Request::Sweep(wire)).expect("encodes");
        assert!(!text.contains("blob "), "unit-ref requests carry no blobs");
        let Request::Sweep(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        for (a, b) in spec.units().iter().zip(&back.units) {
            assert_eq!(a.source_digest(), b.digest);
            assert!(b.body.is_none());
        }
    }

    #[test]
    fn have_and_need_roundtrip() {
        let digests: Vec<Digest> = sample_spec()
            .units()
            .iter()
            .map(crate::sweep::SweepUnit::source_digest)
            .collect();
        let text = encode_request(&Request::Have(digests.clone())).expect("encodes");
        let Request::Have(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        assert_eq!(back, digests);
        let Response::Need(back) =
            decode_response(&encode_response(&Response::Need(digests.clone()))).expect("decodes")
        else {
            panic!("wrong response kind");
        };
        assert_eq!(back, digests);
        // empty lists survive too
        let Response::Need(empty) =
            decode_response(&encode_response(&Response::Need(Vec::new()))).expect("decodes")
        else {
            panic!("wrong response kind");
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn blob_framing_survives_end_lines_and_verifies_digests() {
        // a body containing a line reading `end` must not close the frame
        let body = "int f(void)\n{\nend\n}\n".to_owned();
        let digest = source_digest(&body);
        let wire = WireSweep {
            units: vec![WireUnit {
                name: "tricky".into(),
                entry: "f".into(),
                digest,
                body: Some(Arc::new(body.clone())),
            }],
            configs: vec![("verified".into(), PassConfig::for_level(OptLevel::Verified))],
            machines: vec![("default".into(), MachineConfig::mpc755())],
            trace: 0,
        };
        let text = encode_request(&Request::Sweep(wire)).expect("encodes");
        // the frame reader consumes the blob by length, not by scanning
        let mut reader = std::io::BufReader::new(text.as_bytes());
        let frame = read_frame(&mut reader).expect("reads").expect("one frame");
        assert_eq!(frame, text.as_bytes());
        assert!(read_frame(&mut reader).expect("eof").is_none());
        let Request::Sweep(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        assert_eq!(
            back.units[0].body.as_deref().map(String::as_str),
            Some(body.as_str())
        );
        // a body that does not hash to its declared digest is rejected —
        // the parse cache is digest-addressed, so this gate is load-bearing
        let tampered = text.replace("{\nend\n}", "{\nEND\n}");
        assert!(decode_request(&tampered).is_err());
    }

    #[test]
    fn version_mismatch_is_a_clean_versioned_error() {
        let v1 = "vericomp-request 1\nstats\nend\n";
        let e = decode_request(v1).expect_err("v1 header must be rejected");
        assert!(
            e.0.contains("version 1") && e.0.contains("vericomp-request 2"),
            "error must name both versions: {e}"
        );
        let e = decode_response("vericomp-response 1\nok\nend\n")
            .expect_err("v1 response header must be rejected");
        assert!(e.0.contains("version 1") && e.0.contains("vericomp-response 2"));
        let e = decode_request("vericomp-request 99\nstats\nend\n").expect_err("future version");
        assert!(e.0.contains("version 99"));
    }

    #[test]
    fn stats_shutdown_ok_and_error_roundtrip() {
        for req in [Request::Stats, Request::Shutdown] {
            let text = encode_request(&req).expect("encodes");
            let back = decode_request(&text).expect("decodes");
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&req));
        }
        let ok = decode_response(&encode_response(&Response::Ok)).expect("ok");
        assert!(matches!(ok, Response::Ok));
        let err_resp = decode_response(&encode_response(&Response::Error(
            "multi\nline message".into(),
        )))
        .expect("error");
        let Response::Error(msg) = err_resp else {
            panic!("wrong response kind");
        };
        assert_eq!(msg, "multi line message");
    }

    #[test]
    fn server_stats_roundtrip_render_and_slo() {
        let stats = ServerStats {
            requests: 7,
            batches: 3,
            batched_cells: 42,
            jobs_run: 10,
            jobs_cached: 32,
            evictions: 5,
            resident: 37,
            store_bytes: 123_456,
            shards: 4,
            queue_depth: 1,
            queue_peak: 6,
            deferred: 2,
            compile_ns: 111,
            analyze_ns: 222,
            store_ns: 333,
            wall_ns: 999,
            slo_per_mille: 700,
            bytes_rx: 4_096,
            bytes_tx: 8_192,
            units_offered: 20,
            units_uploaded: 6,
            parse_hits: 14,
            parse_misses: 6,
            parse_evictions: 1,
            parse_resident: 5,
            parse_bytes: 2_048,
            request_p50_ns: 1_000_000,
            request_p99_ns: 8_000_000,
            slo_p99_ns: 10_000_000,
            proto_minor: u64::from(PROTO_MINOR),
        };
        let back = decode_response(&encode_response(&Response::Stats(stats.clone())));
        let Response::Stats(back) = back.expect("decodes") else {
            panic!("wrong response kind");
        };
        assert_eq!(back, stats);
        assert!((stats.hit_rate() - 32.0 / 42.0).abs() < 1e-12);
        assert!((stats.parse_hit_rate() - 0.7).abs() < 1e-12);
        assert!(stats.slo_met());
        let render = stats.render();
        assert!(render.contains("hit-rate 0.762"));
        assert!(render.contains("SLO 0.700: met"));
        assert!(render.contains("wire rx 4096 tx 8192 offered 20 uploaded 6"));
        assert!(render.contains(
            "parse-cache hits 14 misses 6 evictions 1 resident 5 bytes 2048 hit-rate 0.700"
        ));
        let missed = ServerStats {
            slo_per_mille: 990,
            ..stats.clone()
        };
        assert!(!missed.slo_met());
        assert!(missed.render().contains("SLO 0.990: MISSED"));
        // json embeds the rates and the verdict
        assert!(stats.to_json().contains("\"hit_rate\":0.761905"));
        assert!(stats.to_json().contains("\"parse_hit_rate\":0.700000"));
        assert!(stats.to_json().contains("\"units_uploaded\":6"));
        assert!(stats.to_json().contains("\"slo_met\":true"));
        assert!(render.contains("latency request p50 1000000ns p99 8000000ns proto 2.1"));
        assert!(render.contains("p99 SLO 10000000ns: met (p99 8000000ns)"));
        assert!(stats.to_json().contains("\"request_p99_ns\":8000000"));
        assert!(stats.to_json().contains("\"proto_minor\":1"));
        // a breached p99 SLO flips the joint verdict even with hits fine
        let slow = ServerStats {
            request_p99_ns: 20_000_000,
            ..stats.clone()
        };
        assert!(!slow.slo_met());
        assert!(slow.render().contains("p99 SLO 10000000ns: MISSED"));
    }

    #[test]
    fn sweep_response_roundtrips_through_the_blob() {
        let spec = SweepSpec::new()
            .nodes(&fleet::named_suite()[..2])
            .level(OptLevel::Verified);
        let spec = normalize_spec(&spec, &MachineConfig::mpc755());
        let result = crate::service::Pipeline::in_memory()
            .run_sweep(&spec)
            .expect("solo");
        let response = SweepResponse::from_result(&result);
        let text = encode_response(&Response::Sweep(response.clone()));
        let Response::Sweep(back) = decode_response(&text).expect("decodes") else {
            panic!("wrong response kind");
        };
        assert_eq!(back.digest, response.digest);
        assert_eq!(back.cells, response.cells);
        assert_eq!(back.units, response.units);
        assert!(back.verify());
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        assert!(decode_request("").is_err());
        assert!(decode_request("vericomp-request 99\nstats\nend\n").is_err());
        assert!(decode_request("vericomp-request 2\nstats\n").is_err()); // no end
        assert!(decode_request("vericomp-request 2\nsweep\nunit f 0 n\nend\n").is_err());
        // blob length lies: runs past the frame
        assert!(decode_request(
            "vericomp-request 2\nsweep\nunit f 00000000000000000000000000000000 n\nblob 999\nint\nend\n"
        )
        .is_err());
        // blob length splitting a UTF-8 boundary must not panic
        let mut doc = String::from("vericomp-request 2\nsweep\nunit f ");
        doc.push_str(&format!("{}", source_digest("é")));
        doc.push_str(" n\nblob 1\né\nend\n");
        assert!(decode_request(&doc).is_err());
        assert!(decode_response("vericomp-response 2\nsweep\nblob 4\nxyzw\nend\n").is_err());
        assert!(decode_response("vericomp-response 2\nneed 3\ndigest zz\nend\n").is_err());
        // whitespace in labels rejected at encode time
        let spec = SweepSpec::new()
            .level(OptLevel::Verified)
            .machine("two words", &MachineConfig::mpc755());
        let wire = WireSweep::from_spec(&spec, |_| true);
        assert!(encode_request(&Request::Sweep(wire)).is_err());
    }

    #[test]
    fn read_frame_reports_truncation_and_oversized_blobs() {
        use std::io::BufReader;
        // clean EOF at a boundary
        let mut r = BufReader::new(&b""[..]);
        assert!(read_frame(&mut r).expect("clean").is_none());
        // EOF mid-frame
        let mut r = BufReader::new(&b"vericomp-request 2\nstats\n"[..]);
        assert!(read_frame(&mut r).is_err());
        // EOF mid-blob
        let mut r = BufReader::new(&b"vericomp-request 2\nsweep\nblob 100\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
        // oversized blob declaration rejected before allocation
        let doc = format!("vericomp-request 2\nsweep\nblob {}\n", MAX_BLOB_BYTES + 1);
        let mut r = BufReader::new(doc.as_bytes());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn normalize_matches_run_sweep_defaults() {
        let m = MachineConfig::mpc755();
        let spec = SweepSpec::new();
        let n = normalize_spec(&spec, &m);
        assert_eq!(n.configs().len(), 1);
        assert_eq!(n.configs()[0].0, "verified");
        assert_eq!(n.configs()[0].1, PassConfig::for_level(OptLevel::Verified));
        assert_eq!(n.machines().len(), 1);
        assert_eq!(n.machines()[0].0, "default");
        assert_eq!(n.machines()[0].1, m);
        // explicit axes pass through untouched
        let spec = sample_spec();
        let n = normalize_spec(&spec, &m);
        assert_eq!(n.configs(), spec.configs());
        assert_eq!(n.machines(), spec.machines());
    }

    #[test]
    fn trace_id_and_admin_requests_roundtrip() {
        let spec = sample_spec();
        let wire = WireSweep::from_spec(&spec, |_| false).with_trace(0x00ab_cdef_0123_4567);
        let text = encode_request(&Request::Sweep(wire)).expect("encodes");
        assert!(text.contains("trace 00abcdef01234567\n"));
        let Request::Sweep(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        assert_eq!(back.trace, 0x00ab_cdef_0123_4567);
        // untraced sweeps carry no trace line at all
        let wire = WireSweep::from_spec(&spec, |_| false);
        let text = encode_request(&Request::Sweep(wire)).expect("encodes");
        assert!(!text.contains("trace "));
        // admin requests
        for (req, word) in [
            (Request::Metrics, "metrics"),
            (Request::RecorderDump, "recorder-dump"),
        ] {
            let text = encode_request(&req).expect("encodes");
            assert!(text.contains(&format!("{word}\n")));
            let back = decode_request(&text).expect("decodes");
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&req));
        }
        assert!(decode_request("vericomp-request 2\nsweep\ntrace zz\nend\n").is_err());
    }

    #[test]
    fn metrics_and_recorder_responses_carry_json_blobs() {
        // bodies may contain `end` lines — the blob framing must hold
        let json = "{\"counters\": {\"x\": 1}}\nend\n{}".to_owned();
        for make in [Response::Metrics, Response::Recorder] {
            let text = encode_response(&make(json.clone()));
            let mut reader = std::io::BufReader::new(text.as_bytes());
            let frame = read_frame(&mut reader).expect("reads").expect("one frame");
            assert_eq!(frame, text.as_bytes());
            let back = decode_response(&text).expect("decodes");
            match back {
                Response::Metrics(body) | Response::Recorder(body) => assert_eq!(body, json),
                _ => panic!("wrong response kind"),
            }
        }
    }

    #[test]
    fn sweep_response_spans_roundtrip_outside_the_digest() {
        let spec = SweepSpec::new()
            .nodes(&fleet::named_suite()[..1])
            .level(OptLevel::Verified);
        let spec = normalize_spec(&spec, &MachineConfig::mpc755());
        let result = crate::service::Pipeline::in_memory()
            .run_sweep(&spec)
            .expect("solo");
        let mut response = SweepResponse::from_result(&result);
        response.spans = vec![
            Span::stage("compile", 0, 10, 20, "trace=00000000000000ab request=3"),
            Span::pass("mem2reg", 0, 12, 4, ""),
            Span::event("search:admitted", 1, 30, "flag=cse"),
        ];
        let text = encode_response(&Response::Sweep(response.clone()));
        let Response::Sweep(back) = decode_response(&text).expect("decodes") else {
            panic!("wrong response kind");
        };
        assert!(back.verify(), "spans must not perturb the cells digest");
        assert_eq!(back.digest, response.digest);
        assert_eq!(back.spans.len(), 3);
        assert_eq!(back.spans[0].name, "compile");
        assert_eq!(back.spans[0].kind, SpanKind::Stage);
        assert_eq!(back.spans[0].detail, "trace=00000000000000ab request=3");
        assert_eq!(back.spans[1].detail, "");
        assert_eq!(back.spans[1].dur_ns, 4);
        assert_eq!(back.spans[2].kind, SpanKind::Event);
        assert_eq!(back.spans[2].job, 1);
        // a hostile span line is an error, not a panic
        assert!(decode_sweep_payload(
            "axes 0 0 0\nspan bogus 0 0 0 x\ndigest 00000000000000000000000000000000"
        )
        .is_err());
    }
}
