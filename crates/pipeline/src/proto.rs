//! Wire protocol of the compile service: the `.vcart` discipline on a
//! socket.
//!
//! Requests and responses are plain line-oriented text documents — the
//! same format family as the artifact store's `.vcart` files: a versioned
//! header line, one `tag operands…` line per field, an `end` terminator.
//! No serde, no external deps, and every document is printable, which
//! makes the protocol greppable in transcripts and trivially testable.
//!
//! **Framing.** One message = the lines from its header through its `end`
//! line inclusive. Readers consume lines until `end`; a closed connection
//! mid-message is a protocol error, never a partial result.
//!
//! **Grammar** (one message per block):
//!
//! ```text
//! request  := "vericomp-request 1" NL body "end" NL
//! body     := sweep | "stats" NL | "shutdown" NL
//! sweep    := "sweep" NL unit* config+ machine+
//! unit     := "unit" entry nlines name NL <nlines source lines>
//! config   := "config" label bits10 NL        ; PassConfig, key-order bits
//! machine  := "machine" label u32{24} NL      ; machine_digest field order
//!
//! response := "vericomp-response 1" NL rbody "end" NL
//! rbody    := rsweep | rstats | "ok" NL | "error" message NL
//! rsweep   := "sweep" nunits nconfigs nmachines NL label-lines cell* stats digest
//! cell     := "cell" unit config machine wcet cached vbits3 hex32 NL
//! stats    := "stats" jobs_run jobs_cached compile_ns analyze_ns store_ns wall_ns NL
//! digest   := "digest" hex32 NL
//! ```
//!
//! Unit sources travel as pretty-printed MiniC and are re-parsed server
//! side; the parser/pretty round-trip is identity on ASTs (gated by
//! `tests/parser_roundtrip.rs`), so the server derives **the same cache
//! keys** a local run would — a client's cells hit the daemon's warm
//! store exactly when a solo run would hit its own.
//!
//! Names and axis labels must be non-empty and whitespace-free — enforced
//! at encode *and* decode time, so a malformed peer cannot smuggle a
//! misframed document through.

use std::fmt;

use vericomp_arch::config::CacheConfig;
use vericomp_arch::MachineConfig;
use vericomp_core::{OptLevel, PassConfig};
use vericomp_minic::parse::parse;
use vericomp_minic::pretty::program_to_c;

use crate::hash::{Digest, Hasher};
use crate::stats::PipelineStats;
use crate::store::Verdict;
use crate::sweep::{SweepResult, SweepSpec, SweepUnit};

/// Protocol version. Bump on any grammar change — mismatched peers fail
/// loudly at the header instead of misparsing bodies.
pub const PROTO_VERSION: u32 = 1;

const REQUEST_HEADER: &str = "vericomp-request 1";
const RESPONSE_HEADER: &str = "vericomp-response 1";

/// A malformed or out-of-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// Checks a name/label operand: non-empty, no whitespace (they are
/// space-separated operands on the wire).
fn check_word(kind: &str, word: &str) -> Result<(), ProtoError> {
    if word.is_empty() {
        return err(format!("empty {kind}"));
    }
    if word.chars().any(char::is_whitespace) {
        return err(format!("{kind} `{word}` contains whitespace"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// field codecs
// ---------------------------------------------------------------------------

/// `PassConfig` as ten `0`/`1` characters in cache-key order.
#[must_use]
pub fn passes_to_bits(p: &PassConfig) -> String {
    [
        p.mem2reg,
        p.constprop,
        p.cse,
        p.dce,
        p.tunnel,
        p.strength,
        p.schedule,
        p.sda,
        p.full_palette,
        p.validators,
    ]
    .iter()
    .map(|&b| if b { '1' } else { '0' })
    .collect()
}

/// Parses the ten-bit `PassConfig` encoding.
pub fn passes_from_bits(bits: &str) -> Result<PassConfig, ProtoError> {
    let b: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => err(format!("bad pass bit `{c}`")),
        })
        .collect::<Result<_, _>>()?;
    if b.len() != 10 {
        return err(format!("expected 10 pass bits, got {}", b.len()));
    }
    Ok(PassConfig {
        mem2reg: b[0],
        constprop: b[1],
        cse: b[2],
        dce: b[3],
        tunnel: b[4],
        strength: b[5],
        schedule: b[6],
        sda: b[7],
        full_palette: b[8],
        validators: b[9],
    })
}

/// The 24 `u32` fields of a machine model, in `machine_digest` order.
fn machine_fields(m: &MachineConfig) -> [u32; 24] {
    [
        m.icache.size_bytes,
        m.icache.ways,
        m.icache.line_bytes,
        m.dcache.size_bytes,
        m.dcache.ways,
        m.dcache.line_bytes,
        m.mem_latency,
        m.fetch_latency,
        m.io_latency,
        m.text_base,
        m.data_base,
        m.stack_top,
        m.io_base,
        m.io_size,
        m.lat_int,
        m.lat_mul,
        m.lat_div,
        m.lat_fp,
        m.lat_fmadd,
        m.lat_fdiv,
        m.lat_fmove,
        m.lat_conv,
        m.lat_load,
        m.branch_penalty,
    ]
}

/// `MachineConfig` as 24 space-separated `u32`s in `machine_digest` order.
#[must_use]
pub fn machine_to_fields(m: &MachineConfig) -> String {
    machine_fields(m)
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the 24-field machine encoding.
pub fn machine_from_fields(text: &str) -> Result<MachineConfig, ProtoError> {
    let f: Vec<u32> = text
        .split(' ')
        .map(|w| {
            w.parse()
                .map_err(|_| ProtoError(format!("bad machine field `{w}`")))
        })
        .collect::<Result<_, _>>()?;
    if f.len() != 24 {
        return err(format!("expected 24 machine fields, got {}", f.len()));
    }
    Ok(MachineConfig {
        icache: CacheConfig {
            size_bytes: f[0],
            ways: f[1],
            line_bytes: f[2],
        },
        dcache: CacheConfig {
            size_bytes: f[3],
            ways: f[4],
            line_bytes: f[5],
        },
        mem_latency: f[6],
        fetch_latency: f[7],
        io_latency: f[8],
        text_base: f[9],
        data_base: f[10],
        stack_top: f[11],
        io_base: f[12],
        io_size: f[13],
        lat_int: f[14],
        lat_mul: f[15],
        lat_div: f[16],
        lat_fp: f[17],
        lat_fmadd: f[18],
        lat_fdiv: f[19],
        lat_fmove: f[20],
        lat_conv: f[21],
        lat_load: f[22],
        branch_penalty: f[23],
    })
}

// ---------------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------------

/// One client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a sweep matrix. Axes must be explicit (use
    /// [`normalize_spec`] client-side so wire specs carry the same labels
    /// a solo `run_sweep` would default to).
    Sweep(SweepSpec),
    /// Fetch a [`ServerStats`] snapshot.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

/// Makes a spec's implicit axes explicit with **the same defaults
/// `Pipeline::run_sweep` applies**: an empty config axis becomes the
/// single `verified` preset, an empty machine axis becomes `machine`
/// under the label `default`. Sending a normalized spec guarantees the
/// response's labels — and therefore its digest — match a solo run.
#[must_use]
pub fn normalize_spec(spec: &SweepSpec, machine: &MachineConfig) -> SweepSpec {
    let mut out = SweepSpec::new();
    for unit in spec.units() {
        out = out.unit(unit.clone());
    }
    if spec.configs().is_empty() {
        out = out.level(OptLevel::Verified);
    } else {
        for (label, passes) in spec.configs() {
            out = out.config(label, passes);
        }
    }
    if spec.machines().is_empty() {
        out = out.machine("default", machine);
    } else {
        for (label, m) in spec.machines() {
            out = out.machine(label, m);
        }
    }
    out
}

/// Serializes a request document.
///
/// # Errors
///
/// [`ProtoError`] when a sweep has empty config/machine axes (normalize
/// first) or a name/label is empty or contains whitespace.
pub fn encode_request(request: &Request) -> Result<String, ProtoError> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{REQUEST_HEADER}");
    match request {
        Request::Stats => s.push_str("stats\n"),
        Request::Shutdown => s.push_str("shutdown\n"),
        Request::Sweep(spec) => {
            if spec.configs().is_empty() || spec.machines().is_empty() {
                return err("sweep request must have explicit config and machine axes");
            }
            s.push_str("sweep\n");
            for unit in spec.units() {
                check_word("unit name", &unit.name)?;
                check_word("entry", &unit.entry)?;
                let source = program_to_c(&unit.source);
                let nlines = source.lines().count();
                let _ = writeln!(s, "unit {} {} {}", unit.entry, nlines, unit.name);
                for line in source.lines() {
                    let _ = writeln!(s, "{line}");
                }
            }
            for (label, passes) in spec.configs() {
                check_word("config label", label)?;
                let _ = writeln!(s, "config {} {}", label, passes_to_bits(passes));
            }
            for (label, machine) in spec.machines() {
                check_word("machine label", label)?;
                let _ = writeln!(s, "machine {} {}", label, machine_to_fields(machine));
            }
        }
    }
    s.push_str("end\n");
    Ok(s)
}

/// Parses a request document (header through `end`).
///
/// # Errors
///
/// [`ProtoError`] on any malformation — including MiniC sources the
/// parser rejects; the server maps that to an `error` response, never a
/// crash.
pub fn decode_request(text: &str) -> Result<Request, ProtoError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(REQUEST_HEADER) => {}
        Some(other) => return err(format!("bad request header `{other}`")),
        None => return err("empty request"),
    }
    let body = match lines.next() {
        Some("stats") => Request::Stats,
        Some("shutdown") => Request::Shutdown,
        Some("sweep") => {
            let mut spec = SweepSpec::new();
            loop {
                let line = match lines.next() {
                    Some(l) => l,
                    None => return err("request truncated before `end`"),
                };
                let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
                match tag {
                    "unit" => {
                        let mut it = rest.splitn(3, ' ');
                        let entry = it.next().unwrap_or("");
                        let nlines: usize = it
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| ProtoError("bad unit line count".into()))?;
                        let name = it.next().unwrap_or("");
                        check_word("unit name", name)?;
                        check_word("entry", entry)?;
                        let mut source = String::new();
                        for _ in 0..nlines {
                            let line = lines
                                .next()
                                .ok_or_else(|| ProtoError("unit source truncated".into()))?;
                            source.push_str(line);
                            source.push('\n');
                        }
                        let program = parse(&source).map_err(|e| {
                            ProtoError(format!("unit `{name}` does not parse: {e}"))
                        })?;
                        spec = spec.unit(SweepUnit::from_source(name, program, entry));
                    }
                    "config" => {
                        let (label, bits) = rest
                            .split_once(' ')
                            .ok_or_else(|| ProtoError("bad config line".into()))?;
                        check_word("config label", label)?;
                        spec = spec.config(label, &passes_from_bits(bits)?);
                    }
                    "machine" => {
                        let (label, fields) = rest
                            .split_once(' ')
                            .ok_or_else(|| ProtoError("bad machine line".into()))?;
                        check_word("machine label", label)?;
                        spec = spec.machine(label, &machine_from_fields(fields)?);
                    }
                    "end" => break,
                    _ => return err(format!("unknown request tag `{tag}`")),
                }
            }
            if spec.configs().is_empty() || spec.machines().is_empty() {
                return err("sweep request lacks config or machine axis");
            }
            return Ok(Request::Sweep(spec));
        }
        Some(other) => return err(format!("unknown request kind `{other}`")),
        None => return err("request lacks a body"),
    };
    match lines.next() {
        Some("end") => Ok(body),
        _ => err("request not terminated by `end`"),
    }
}

// ---------------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------------

/// One cell of a sweep response — the response-side projection of a
/// `SweepCell`: labels, the WCET bound, cache provenance, the validator
/// verdict, and the full output digest (everything the determinism gates
/// compare, without shipping the binary back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSummary {
    /// Unit-axis label.
    pub unit: String,
    /// Config-axis label.
    pub config: String,
    /// Machine-axis label.
    pub machine: String,
    /// The cell's WCET bound, in cycles.
    pub wcet: u64,
    /// Whether the artifact was served from the warm store.
    pub cached: bool,
    /// The translation-validation verdict the artifact carries.
    pub verdict: Verdict,
    /// [`Artifact::output_digest`](crate::store::Artifact::output_digest).
    pub output_digest: Digest,
}

/// The digest of a cell sequence, **bit-compatible with
/// [`SweepResult::digest`]**: cells in flattening order, each hashed as
/// (labels, output-digest halves). Client and server both recompute it;
/// the determinism gates compare it against solo runs.
#[must_use]
pub fn cells_digest(cells: &[CellSummary]) -> Digest {
    let mut h = Hasher::new();
    for cell in cells {
        h.str(&cell.unit).str(&cell.config).str(&cell.machine);
        h.u64(cell.output_digest.0 as u64)
            .u64((cell.output_digest.0 >> 64) as u64);
    }
    h.finish()
}

/// A served sweep: axis labels, cells in flattening order, the request's
/// share of pipeline stats, and the digest.
#[derive(Debug, Clone)]
pub struct SweepResponse {
    /// Unit-axis labels, in request order.
    pub units: Vec<String>,
    /// Config-axis labels, in request order.
    pub configs: Vec<String>,
    /// Machine-axis labels, in request order.
    pub machines: Vec<String>,
    /// Cells in flattening order (unit-major, config, machine).
    pub cells: Vec<CellSummary>,
    /// This request's stats (cache hits count per-request, so a shared
    /// cell shows as a hit for every requester after the first).
    pub stats: PipelineStats,
    /// [`cells_digest`] as the server computed it. [`verify`](SweepResponse::verify)
    /// recomputes client-side.
    pub digest: Digest,
}

impl SweepResponse {
    /// Projects a complete solo [`SweepResult`] to its wire form — the
    /// reference the determinism gates compare daemon responses against.
    #[must_use]
    pub fn from_result(result: &SweepResult) -> SweepResponse {
        let cells: Vec<CellSummary> = result
            .cells()
            .iter()
            .map(|c| CellSummary {
                unit: c.unit.clone(),
                config: c.config.clone(),
                machine: c.machine.clone(),
                wcet: c.wcet(),
                cached: c.outcome.cached,
                verdict: c.outcome.artifact.verdict,
                output_digest: c.outcome.artifact.output_digest(),
            })
            .collect();
        let digest = cells_digest(&cells);
        debug_assert_eq!(digest, result.digest());
        SweepResponse {
            units: result.unit_labels().to_vec(),
            configs: result.config_labels().to_vec(),
            machines: result.machine_labels().to_vec(),
            cells,
            stats: result.stats.clone(),
            digest,
        }
    }

    /// Recomputes the digest from the cells and checks it against the
    /// transmitted one.
    #[must_use]
    pub fn verify(&self) -> bool {
        cells_digest(&self.cells) == self.digest
    }

    /// The cell at labeled coordinates (first occurrence per axis).
    #[must_use]
    pub fn get(&self, unit: &str, config: &str, machine: &str) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.unit == unit && c.config == config && c.machine == machine)
    }
}

/// Server-side aggregate metrics, served to `stats` requests and
/// embedded in `BENCH_daemon.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sweep requests served (stats/shutdown requests not counted).
    pub requests: u64,
    /// Batches executed (one `run_sweep` each).
    pub batches: u64,
    /// Cells across all batches, after cross-request dedup.
    pub batched_cells: u64,
    /// Cells compiled fresh.
    pub jobs_run: u64,
    /// Cells served from the warm store.
    pub jobs_cached: u64,
    /// Store entries evicted over the server's lifetime.
    pub evictions: u64,
    /// Store entries resident at snapshot time.
    pub resident: u64,
    /// Store resident bytes at snapshot time.
    pub store_bytes: u64,
    /// Store shard count.
    pub shards: u64,
    /// Requests queued at snapshot time.
    pub queue_depth: u64,
    /// Peak queued requests observed.
    pub queue_peak: u64,
    /// Batches deferred by admission control (queue head would have
    /// exceeded the in-flight cell bound while a batch ran).
    pub deferred: u64,
    /// Summed compile-stage nanos across batches.
    pub compile_ns: u64,
    /// Summed analyze-stage nanos across batches.
    pub analyze_ns: u64,
    /// Summed store-stage nanos across batches.
    pub store_ns: u64,
    /// Summed batch wall-clock nanos.
    pub wall_ns: u64,
    /// Configured hit-rate SLO in thousandths (`900` = 0.900); `0` means
    /// no SLO configured.
    pub slo_per_mille: u64,
}

impl ServerStats {
    /// Lifetime cache hit rate over batched cells; `0.0` before any cell.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.jobs_run + self.jobs_cached;
        if total == 0 {
            0.0
        } else {
            self.jobs_cached as f64 / total as f64
        }
    }

    /// Whether the lifetime hit rate meets the configured SLO (vacuously
    /// true without one).
    #[must_use]
    pub fn slo_met(&self) -> bool {
        self.slo_per_mille == 0 || self.hit_rate() * 1000.0 >= self.slo_per_mille as f64
    }

    /// Greppable text rendering — `server:`-prefixed lines, the SLO
    /// verdict last.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "server: requests {} batches {} cells {} queue {} (peak {}) deferred {}",
            self.requests,
            self.batches,
            self.batched_cells,
            self.queue_depth,
            self.queue_peak,
            self.deferred,
        );
        let _ = writeln!(
            s,
            "server: store resident {} bytes {} shards {} evictions {}",
            self.resident, self.store_bytes, self.shards, self.evictions,
        );
        let _ = writeln!(
            s,
            "server: jobs run {} cached {} hit-rate {:.3}",
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate(),
        );
        let _ = writeln!(
            s,
            "server: stage compile {}ns analyze {}ns store {}ns wall {}ns",
            self.compile_ns, self.analyze_ns, self.store_ns, self.wall_ns,
        );
        if self.slo_per_mille > 0 {
            let _ = writeln!(
                s,
                "server: hit-rate SLO {:.3}: {}",
                self.slo_per_mille as f64 / 1000.0,
                if self.slo_met() { "met" } else { "MISSED" },
            );
        }
        s
    }

    /// Single-line JSON object (for `BENCH_daemon.json` embedding).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"batches\":{},\"batched_cells\":{},",
                "\"jobs_run\":{},\"jobs_cached\":{},\"hit_rate\":{:.6},",
                "\"evictions\":{},\"resident\":{},\"store_bytes\":{},\"shards\":{},",
                "\"queue_depth\":{},\"queue_peak\":{},\"deferred\":{},",
                "\"compile_ns\":{},\"analyze_ns\":{},\"store_ns\":{},\"wall_ns\":{},",
                "\"slo_per_mille\":{},\"slo_met\":{}}}"
            ),
            self.requests,
            self.batches,
            self.batched_cells,
            self.jobs_run,
            self.jobs_cached,
            self.hit_rate(),
            self.evictions,
            self.resident,
            self.store_bytes,
            self.shards,
            self.queue_depth,
            self.queue_peak,
            self.deferred,
            self.compile_ns,
            self.analyze_ns,
            self.store_ns,
            self.wall_ns,
            self.slo_per_mille,
            self.slo_met(),
        )
    }

    fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("requests", self.requests),
            ("batches", self.batches),
            ("batched_cells", self.batched_cells),
            ("jobs_run", self.jobs_run),
            ("jobs_cached", self.jobs_cached),
            ("evictions", self.evictions),
            ("resident", self.resident),
            ("store_bytes", self.store_bytes),
            ("shards", self.shards),
            ("queue_depth", self.queue_depth),
            ("queue_peak", self.queue_peak),
            ("deferred", self.deferred),
            ("compile_ns", self.compile_ns),
            ("analyze_ns", self.analyze_ns),
            ("store_ns", self.store_ns),
            ("wall_ns", self.wall_ns),
            ("slo_per_mille", self.slo_per_mille),
        ]
    }

    fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "requests" => &mut self.requests,
            "batches" => &mut self.batches,
            "batched_cells" => &mut self.batched_cells,
            "jobs_run" => &mut self.jobs_run,
            "jobs_cached" => &mut self.jobs_cached,
            "evictions" => &mut self.evictions,
            "resident" => &mut self.resident,
            "store_bytes" => &mut self.store_bytes,
            "shards" => &mut self.shards,
            "queue_depth" => &mut self.queue_depth,
            "queue_peak" => &mut self.queue_peak,
            "deferred" => &mut self.deferred,
            "compile_ns" => &mut self.compile_ns,
            "analyze_ns" => &mut self.analyze_ns,
            "store_ns" => &mut self.store_ns,
            "wall_ns" => &mut self.wall_ns,
            "slo_per_mille" => &mut self.slo_per_mille,
            _ => return false,
        };
        *slot = value;
        true
    }
}

/// One server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A served sweep.
    Sweep(SweepResponse),
    /// A stats snapshot.
    Stats(ServerStats),
    /// Acknowledgement (shutdown).
    Ok,
    /// The request was understood as a frame but rejected (parse error,
    /// pipeline error). The connection stays usable.
    Error(String),
}

/// Serializes a response document.
#[must_use]
pub fn encode_response(response: &Response) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{RESPONSE_HEADER}");
    match response {
        Response::Ok => s.push_str("ok\n"),
        Response::Error(msg) => {
            let one_line = msg.replace('\n', " ");
            let _ = writeln!(s, "error {one_line}");
        }
        Response::Stats(stats) => {
            s.push_str("server-stats\n");
            for (name, value) in stats.fields() {
                let _ = writeln!(s, "{name} {value}");
            }
        }
        Response::Sweep(sweep) => {
            let _ = writeln!(
                s,
                "sweep {} {} {}",
                sweep.units.len(),
                sweep.configs.len(),
                sweep.machines.len()
            );
            for u in &sweep.units {
                let _ = writeln!(s, "axis-unit {u}");
            }
            for c in &sweep.configs {
                let _ = writeln!(s, "axis-config {c}");
            }
            for m in &sweep.machines {
                let _ = writeln!(s, "axis-machine {m}");
            }
            for cell in &sweep.cells {
                let _ = writeln!(
                    s,
                    "cell {} {} {} {} {} {}{}{} {}",
                    cell.unit,
                    cell.config,
                    cell.machine,
                    cell.wcet,
                    u8::from(cell.cached),
                    u8::from(cell.verdict.allocation_checked),
                    u8::from(cell.verdict.tunnel_validated),
                    u8::from(cell.verdict.schedule_validated),
                    cell.output_digest,
                );
            }
            let st = &sweep.stats;
            let _ = writeln!(
                s,
                "stats {} {} {} {} {} {}",
                st.jobs_run, st.jobs_cached, st.compile_ns, st.analyze_ns, st.store_ns, st.wall_ns,
            );
            let _ = writeln!(s, "digest {}", sweep.digest);
        }
    }
    s.push_str("end\n");
    s
}

/// Parses a response document (header through `end`).
///
/// # Errors
///
/// [`ProtoError`] on any malformation.
pub fn decode_response(text: &str) -> Result<Response, ProtoError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(RESPONSE_HEADER) => {}
        Some(other) => return err(format!("bad response header `{other}`")),
        None => return err("empty response"),
    }
    let first = match lines.next() {
        Some(l) => l,
        None => return err("response lacks a body"),
    };
    let (tag, rest) = first.split_once(' ').unwrap_or((first, ""));
    let body = match tag {
        "ok" => Response::Ok,
        "error" => Response::Error(rest.to_owned()),
        "server-stats" => {
            let mut stats = ServerStats::default();
            loop {
                let line = match lines.next() {
                    Some(l) => l,
                    None => return err("stats response truncated"),
                };
                if line == "end" {
                    return Ok(Response::Stats(stats));
                }
                let (name, value) = line
                    .split_once(' ')
                    .ok_or_else(|| ProtoError(format!("bad stats line `{line}`")))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| ProtoError(format!("bad stats value `{value}`")))?;
                if !stats.set_field(name, value) {
                    return err(format!("unknown stats field `{name}`"));
                }
            }
        }
        "sweep" => {
            let mut it = rest.split(' ');
            let nu: usize = it
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| ProtoError("bad sweep axis counts".into()))?;
            let nc: usize = it
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| ProtoError("bad sweep axis counts".into()))?;
            let nm: usize = it
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| ProtoError("bad sweep axis counts".into()))?;
            let mut axis = |kind: &str, n: usize| -> Result<Vec<String>, ProtoError> {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = lines
                        .next()
                        .ok_or_else(|| ProtoError(format!("{kind} axis truncated")))?;
                    let label = line
                        .strip_prefix(&format!("axis-{kind} "))
                        .ok_or_else(|| ProtoError(format!("bad {kind} axis line `{line}`")))?;
                    check_word(&format!("{kind} label"), label)?;
                    out.push(label.to_owned());
                }
                Ok(out)
            };
            let units = axis("unit", nu)?;
            let configs = axis("config", nc)?;
            let machines = axis("machine", nm)?;
            let mut cells = Vec::with_capacity(nu * nc * nm);
            let mut stats = PipelineStats::default();
            let mut digest = None;
            loop {
                let line = match lines.next() {
                    Some(l) => l,
                    None => return err("sweep response truncated"),
                };
                let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
                match tag {
                    "cell" => {
                        let w: Vec<&str> = rest.split(' ').collect();
                        if w.len() != 7 {
                            return err(format!("bad cell line `{line}`"));
                        }
                        let vbits: Vec<char> = w[5].chars().collect();
                        if vbits.len() != 3 || vbits.iter().any(|&c| c != '0' && c != '1') {
                            return err(format!("bad verdict bits `{}`", w[5]));
                        }
                        cells.push(CellSummary {
                            unit: w[0].to_owned(),
                            config: w[1].to_owned(),
                            machine: w[2].to_owned(),
                            wcet: w[3]
                                .parse()
                                .map_err(|_| ProtoError(format!("bad wcet `{}`", w[3])))?,
                            cached: w[4] == "1",
                            verdict: Verdict {
                                allocation_checked: vbits[0] == '1',
                                tunnel_validated: vbits[1] == '1',
                                schedule_validated: vbits[2] == '1',
                            },
                            output_digest: Digest::from_hex(w[6])
                                .ok_or_else(|| ProtoError(format!("bad digest `{}`", w[6])))?,
                        });
                    }
                    "stats" => {
                        let v: Vec<u64> = rest
                            .split(' ')
                            .map(|w| {
                                w.parse()
                                    .map_err(|_| ProtoError(format!("bad stats value `{w}`")))
                            })
                            .collect::<Result<_, _>>()?;
                        if v.len() != 6 {
                            return err(format!("bad stats line `{line}`"));
                        }
                        stats.jobs_run = v[0];
                        stats.jobs_cached = v[1];
                        stats.compile_ns = v[2];
                        stats.analyze_ns = v[3];
                        stats.store_ns = v[4];
                        stats.wall_ns = v[5];
                    }
                    "digest" => {
                        digest = Some(
                            Digest::from_hex(rest)
                                .ok_or_else(|| ProtoError(format!("bad digest `{rest}`")))?,
                        );
                    }
                    "end" => break,
                    _ => return err(format!("unknown response tag `{tag}`")),
                }
            }
            if cells.len() != nu * nc * nm {
                return err(format!(
                    "expected {} cells, got {}",
                    nu * nc * nm,
                    cells.len()
                ));
            }
            let response = SweepResponse {
                units,
                configs,
                machines,
                cells,
                stats,
                digest: digest.ok_or_else(|| ProtoError("sweep response lacks digest".into()))?,
            };
            if !response.verify() {
                return err("sweep response digest does not match its cells");
            }
            return Ok(Response::Sweep(response));
        }
        _ => return err(format!("unknown response kind `{tag}`")),
    };
    match lines.next() {
        Some("end") => Ok(body),
        _ => err("response not terminated by `end`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_core::OptLevel;
    use vericomp_dataflow::fleet;

    fn sample_spec() -> SweepSpec {
        let nodes = fleet::named_suite();
        SweepSpec::new()
            .nodes(&nodes[..2])
            .levels([OptLevel::Verified, OptLevel::OptFull])
            .machine("mpc755", &MachineConfig::mpc755())
            .machine("tiny", &MachineConfig::tiny_caches())
    }

    #[test]
    fn passes_bits_roundtrip_all_presets() {
        for level in [
            OptLevel::PatternO0,
            OptLevel::OptNoRegalloc,
            OptLevel::Verified,
            OptLevel::OptFull,
        ] {
            let p = PassConfig::for_level(level);
            let bits = passes_to_bits(&p);
            assert_eq!(bits.len(), 10);
            assert_eq!(passes_from_bits(&bits).expect("parses"), p);
        }
        assert!(passes_from_bits("11111").is_err());
        assert!(passes_from_bits("111111111x").is_err());
    }

    #[test]
    fn machine_fields_roundtrip_and_reject_malformation() {
        for m in [MachineConfig::mpc755(), MachineConfig::tiny_caches()] {
            let text = machine_to_fields(&m);
            assert_eq!(machine_from_fields(&text).expect("parses"), m);
        }
        assert!(machine_from_fields("1 2 3").is_err());
        assert!(machine_from_fields(&"x ".repeat(24).trim_end()).is_err());
    }

    #[test]
    fn sweep_request_roundtrips_with_identical_cache_keys() {
        let spec = sample_spec();
        let text = encode_request(&Request::Sweep(spec.clone())).expect("encodes");
        let Request::Sweep(back) = decode_request(&text).expect("decodes") else {
            panic!("wrong request kind");
        };
        assert_eq!(back.units().len(), spec.units().len());
        assert_eq!(back.configs(), spec.configs());
        assert_eq!(back.machines(), spec.machines());
        // the round-tripped sources derive the same cache keys — the
        // property that makes the daemon's store useful to remote clients
        for (a, b) in spec.units().iter().zip(back.units()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.entry, b.entry);
            let verified = PassConfig::for_level(OptLevel::Verified);
            let m = MachineConfig::mpc755();
            assert_eq!(
                crate::store::artifact_key(&program_to_c(&a.source), &a.entry, &verified, &m),
                crate::store::artifact_key(&program_to_c(&b.source), &b.entry, &verified, &m),
                "unit `{}` changed key over the wire",
                a.name
            );
        }
    }

    #[test]
    fn stats_shutdown_ok_and_error_roundtrip() {
        for req in [Request::Stats, Request::Shutdown] {
            let text = encode_request(&req).expect("encodes");
            let back = decode_request(&text).expect("decodes");
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&req));
        }
        let ok = decode_response(&encode_response(&Response::Ok)).expect("ok");
        assert!(matches!(ok, Response::Ok));
        let err_resp = decode_response(&encode_response(&Response::Error(
            "multi\nline message".into(),
        )))
        .expect("error");
        let Response::Error(msg) = err_resp else {
            panic!("wrong response kind");
        };
        assert_eq!(msg, "multi line message");
    }

    #[test]
    fn server_stats_roundtrip_render_and_slo() {
        let stats = ServerStats {
            requests: 7,
            batches: 3,
            batched_cells: 42,
            jobs_run: 10,
            jobs_cached: 32,
            evictions: 5,
            resident: 37,
            store_bytes: 123_456,
            shards: 4,
            queue_depth: 1,
            queue_peak: 6,
            deferred: 2,
            compile_ns: 111,
            analyze_ns: 222,
            store_ns: 333,
            wall_ns: 999,
            slo_per_mille: 700,
        };
        let back = decode_response(&encode_response(&Response::Stats(stats.clone())));
        let Response::Stats(back) = back.expect("decodes") else {
            panic!("wrong response kind");
        };
        assert_eq!(back, stats);
        assert!((stats.hit_rate() - 32.0 / 42.0).abs() < 1e-12);
        assert!(stats.slo_met());
        let render = stats.render();
        assert!(render.contains("hit-rate 0.762"));
        assert!(render.contains("SLO 0.700: met"));
        let missed = ServerStats {
            slo_per_mille: 990,
            ..stats.clone()
        };
        assert!(!missed.slo_met());
        assert!(missed.render().contains("SLO 0.990: MISSED"));
        // json embeds the rate and the verdict
        assert!(stats.to_json().contains("\"hit_rate\":0.761905"));
        assert!(stats.to_json().contains("\"slo_met\":true"));
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        assert!(decode_request("").is_err());
        assert!(decode_request("vericomp-request 99\nstats\nend\n").is_err());
        assert!(decode_request("vericomp-request 1\nstats\n").is_err()); // no end
        assert!(decode_request("vericomp-request 1\nsweep\nunit f 1 n\nint bad(\nend\n").is_err());
        assert!(decode_response("vericomp-response 1\nsweep 1 1 1\nend\n").is_err());
        // whitespace in labels rejected at encode time
        let spec = SweepSpec::new()
            .level(OptLevel::Verified)
            .machine("two words", &MachineConfig::mpc755());
        assert!(encode_request(&Request::Sweep(spec)).is_err());
    }

    #[test]
    fn normalize_matches_run_sweep_defaults() {
        let m = MachineConfig::mpc755();
        let spec = SweepSpec::new();
        let n = normalize_spec(&spec, &m);
        assert_eq!(n.configs().len(), 1);
        assert_eq!(n.configs()[0].0, "verified");
        assert_eq!(n.configs()[0].1, PassConfig::for_level(OptLevel::Verified));
        assert_eq!(n.machines().len(), 1);
        assert_eq!(n.machines()[0].0, "default");
        assert_eq!(n.machines()[0].1, m);
        // explicit axes pass through untouched
        let spec = sample_spec();
        let n = normalize_spec(&spec, &m);
        assert_eq!(n.configs(), spec.configs());
        assert_eq!(n.machines(), spec.machines());
    }
}
