//! Bounded flight recorder: the daemon's black box.
//!
//! [`Registry`](crate::metrics::Registry) tells you *how much* happened
//! over the server's lifetime; the recorder tells you *what happened
//! recently*, in order — the last N structured events (request accepted,
//! joined a batch, sweep started/finished, parse-cache or store
//! evictions, errors) each stamped with a monotonic sequence number, a
//! nanosecond offset from the server's start, the server-assigned
//! request id, and the client-supplied trace id when the request carried
//! one. The ring is bounded: when full, the oldest event is dropped and
//! a drop counter advances, so recording cost stays O(1) and memory
//! stays fixed no matter how long the daemon runs.
//!
//! The `recorder-dump` admin request serializes the ring as JSON without
//! stopping the server; `vericomp_serve --recorder-of SOCK` prints it.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: enough for the tail of a heavy soak while
/// staying well under a megabyte of resident event text.
pub const DEFAULT_RECORDER_CAP: usize = 4096;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct RecorderEvent {
    /// Monotonic sequence number (never reused, survives drops).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (server start).
    pub ts_ns: u64,
    /// Server-assigned request id (0 for server-scoped events such as
    /// evictions attributed to a batch rather than one request).
    pub request: u64,
    /// Client-supplied trace id (0 when the request carried none).
    pub trace: u64,
    /// Event kind: `accept`, `batch-join`, `sweep-start`, `sweep-end`,
    /// `store-evict`, `parse-evict`, `error`, `shutdown`, …
    pub kind: &'static str,
    /// Free-form context, e.g. `cells=12 groups=1`.
    pub detail: String,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<RecorderEvent>,
    seq: u64,
    dropped: u64,
}

/// The bounded ring of [`RecorderEvent`]s. One coarse mutex — recording
/// is a push + possible pop, far off the compile path's critical
/// sections, and the `< 3%` soak-overhead gate in `benches/daemon.rs`
/// holds it to that.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    epoch: Instant,
    cap: usize,
}

impl FlightRecorder {
    /// An empty recorder holding at most `cap` events (`cap` 0 is
    /// clamped to 1).
    #[must_use]
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                seq: 0,
                dropped: 0,
            }),
            epoch: Instant::now(),
            cap: cap.max(1),
        }
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&self, request: u64, trace: u64, kind: &'static str, detail: String) {
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut ring = self.ring.lock().expect("recorder lock");
        if ring.events.len() == self.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.seq;
        ring.seq += 1;
        ring.events.push_back(RecorderEvent {
            seq,
            ts_ns,
            request,
            trace,
            kind,
            detail,
        });
    }

    /// Number of events currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("recorder lock").events.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("recorder lock").dropped
    }

    /// A snapshot of the resident events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RecorderEvent> {
        self.ring
            .lock()
            .expect("recorder lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the ring as one JSON object: capacity, drop count, and
    /// the resident events oldest-first. Trace ids render as 16-digit
    /// hex (the wire form); zero means "request carried no trace id".
    #[must_use]
    pub fn dump_json(&self) -> String {
        let ring = self.ring.lock().expect("recorder lock");
        let mut out = String::with_capacity(ring.events.len() * 96 + 64);
        let _ = write!(
            out,
            "{{\"capacity\": {}, \"dropped\": {}, \"events\": [",
            self.cap, ring.dropped
        );
        for (i, e) in ring.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"seq\": {}, \"ts_ns\": {}, \"request\": {}, \"trace\": \"{:016x}\", \
                 \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.seq,
                e.ts_ns,
                e.request,
                e.trace,
                e.kind,
                crate::trace::escape_json(&e.detail),
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(i, 0, "accept", format!("n={i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let events = r.snapshot();
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[0].request, 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        r.record(1, 2, "accept", String::new());
        r.record(2, 0, "error", "boom".to_owned());
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].kind, "error");
    }

    #[test]
    fn dump_is_valid_shape() {
        let r = FlightRecorder::new(8);
        r.record(
            7,
            0xdead_beef,
            "sweep-start",
            "cells=4 \"quoted\"".to_owned(),
        );
        let json = r.dump_json();
        assert!(json.starts_with("{\"capacity\": 8, \"dropped\": 0, \"events\": ["));
        assert!(json.contains("\"request\": 7"));
        assert!(json.contains("\"trace\": \"00000000deadbeef\""));
        assert!(json.contains("\"kind\": \"sweep-start\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let r = FlightRecorder::new(16);
        for _ in 0..4 {
            r.record(0, 0, "accept", String::new());
        }
        let events = r.snapshot();
        for pair in events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
