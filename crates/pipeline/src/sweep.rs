//! Sweep-matrix requests: (units × configs × machines) as the first-class
//! compile request.
//!
//! The paper's evaluation (§3.3 Table 1, Figure 2) is a sweep — every
//! symbol-library node compiled under every compiler configuration and
//! measured against a fixed MPC755 model — and every driver in this repo
//! used to hand-roll that loop around `compile_units`, duplicating cache
//! keys, stats handling and determinism tie-breaks. A [`SweepSpec`] names
//! the three axes once; [`Pipeline::run_sweep`] flattens the cross product
//! into one sharded job set for the work-stealing pool and returns a
//! [`SweepResult`] with indexed lookup (`&result[("node", "config",
//! "machine")]`), per-axis aggregation and per-cell [`PipelineStats`].
//!
//! **Key space.** Every cell's artifact key already covers all three axes
//! — the generated source (unit), the ten `PassConfig` flags (config) and
//! the machine digest (machine) — so sweep cells share the pipeline's one
//! [`ArtifactStore`](crate::store::ArtifactStore) with no cross-talk:
//! cells differing on any axis never alias, and repeating a sweep (or
//! widening one axis) replays every unchanged cell from cache.
//!
//! **Flattening order** is unit-major, then config, then machine; it is
//! the iteration order of [`SweepResult::cells`] and the order
//! [`SweepResult::digest`] hashes, so serial and parallel runs of the same
//! spec produce identical digests (the determinism gates compare exactly
//! this).
//!
//! ```
//! use vericomp_core::OptLevel;
//! use vericomp_dataflow::fleet;
//! use vericomp_pipeline::{Pipeline, SweepSpec};
//!
//! let nodes = fleet::named_suite();
//! let spec = SweepSpec::new()
//!     .nodes(&nodes[..3])
//!     .levels([OptLevel::PatternO0, OptLevel::Verified]);
//! let pipeline = Pipeline::in_memory();
//! let sweep = pipeline.run_sweep(&spec)?;
//! assert_eq!(sweep.cell_count(), 6);
//! let cell = &sweep[(nodes[0].name(), "verified", "default")];
//! assert!(cell.outcome.artifact.report.wcet > 0);
//! # Ok::<(), vericomp_pipeline::PipelineError>(())
//! ```

use std::fmt;
use std::ops::Index;
use std::sync::Arc;
use std::time::Instant;

use vericomp_arch::MachineConfig;
use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::{Application, ApplicationError, Node};
use vericomp_minic::ast::Program as SrcProgram;
use vericomp_minic::pretty::program_to_c;

use crate::hash::{Digest, Hasher};
use crate::service::{CellSpec, CompileUnit, Pipeline, PipelineError, UnitOutcome};
use crate::stats::PipelineStats;
use crate::store::source_digest;
use crate::trace::{RunTrace, Span};

/// One entry of the sweep's unit axis: a named translation unit with its
/// entry point. Unlike [`CompileUnit`] it carries **no pass selection** —
/// configs are their own axis.
///
/// Construction pretty-prints the AST **once** and memoizes the canonical
/// text plus its [`source_digest`]; every cell key derivation, wire
/// negotiation and dedup downstream reuses the memo instead of
/// re-rendering the program per cell (on a 10k-unit sweep the old
/// per-cell `program_to_c` dominated warm-path time). The AST itself is
/// shared by `Arc`, so cloning a unit across the cross product is
/// pointer-cheap.
#[derive(Debug, Clone)]
pub struct SweepUnit {
    /// Axis label (node or application name) — the `unit` coordinate in
    /// lookups.
    pub name: String,
    /// The MiniC translation unit.
    pub source: Arc<SrcProgram>,
    /// Entry-point function.
    pub entry: String,
    canonical: Arc<String>,
    digest: Digest,
}

impl SweepUnit {
    fn from_ast(name: String, source: Arc<SrcProgram>, entry: String) -> SweepUnit {
        let canonical = Arc::new(program_to_c(&source));
        let digest = source_digest(&canonical);
        SweepUnit {
            name,
            source,
            entry,
            canonical,
            digest,
        }
    }

    /// The unit axis entry for a dataflow node.
    #[must_use]
    pub fn from_node(node: &Node) -> SweepUnit {
        SweepUnit::from_ast(
            node.name().to_owned(),
            Arc::new(node.to_minic()),
            node.step_name().to_owned(),
        )
    }

    /// The unit axis entry for a whole linked [`Application`] image.
    ///
    /// # Errors
    ///
    /// [`ApplicationError`] from linking the application's translation
    /// unit.
    pub fn from_application(app: &Application) -> Result<SweepUnit, ApplicationError> {
        Ok(SweepUnit::from_ast(
            app.name().to_owned(),
            Arc::new(app.to_minic()?),
            app.step_name().to_owned(),
        ))
    }

    /// The unit axis entry for a raw MiniC translation unit.
    #[must_use]
    pub fn from_source(name: &str, source: SrcProgram, entry: &str) -> SweepUnit {
        SweepUnit::from_ast(name.to_owned(), Arc::new(source), entry.to_owned())
    }

    /// The unit axis entry for an already-parsed unit whose canonical
    /// text is known — the server's parse cache builds specs this way,
    /// skipping both the parse *and* the pretty-print.
    ///
    /// `canonical` must be exactly `program_to_c(&source)`; the parse
    /// cache guarantees it by construction (it stores the text it
    /// parsed, and parse∘pretty is identity on ASTs).
    #[must_use]
    pub fn from_parsed(
        name: &str,
        source: Arc<SrcProgram>,
        entry: &str,
        canonical: Arc<String>,
    ) -> SweepUnit {
        debug_assert_eq!(
            program_to_c(&source),
            *canonical,
            "canonical text out of sync with AST for unit `{name}`"
        );
        let digest = source_digest(&canonical);
        SweepUnit {
            name: name.to_owned(),
            source,
            entry: entry.to_owned(),
            canonical,
            digest,
        }
    }

    /// The canonical pretty-printed source — the exact text cell cache
    /// keys hash and the wire protocol uploads.
    #[must_use]
    pub fn canonical(&self) -> &Arc<String> {
        &self.canonical
    }

    /// [`source_digest`] of the canonical text — the unit's identity in
    /// wire negotiation and the server's parse cache.
    #[must_use]
    pub fn source_digest(&self) -> Digest {
        self.digest
    }
}

/// The builder-style sweep request: three labeled axes.
///
/// Axes left empty pick defaults at [`Pipeline::run_sweep`] time: no
/// configs means the single `verified` preset, no machines means the
/// pipeline's own machine under the label `default`. An empty unit axis
/// yields an empty result.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    units: Vec<SweepUnit>,
    configs: Vec<(String, PassConfig)>,
    machines: Vec<(String, MachineConfig)>,
}

impl SweepSpec {
    /// An empty spec.
    #[must_use]
    pub fn new() -> SweepSpec {
        SweepSpec::default()
    }

    /// Appends a prepared unit to the unit axis.
    #[must_use]
    pub fn unit(mut self, unit: SweepUnit) -> Self {
        self.units.push(unit);
        self
    }

    /// Appends a dataflow node to the unit axis.
    #[must_use]
    pub fn node(self, node: &Node) -> Self {
        self.unit(SweepUnit::from_node(node))
    }

    /// Appends every node to the unit axis, in order.
    #[must_use]
    pub fn nodes<'a>(mut self, nodes: impl IntoIterator<Item = &'a Node>) -> Self {
        for node in nodes {
            self = self.node(node);
        }
        self
    }

    /// Appends a linked [`Application`] image to the unit axis.
    ///
    /// # Errors
    ///
    /// [`ApplicationError`] from linking the application's translation
    /// unit.
    pub fn application(self, app: &Application) -> Result<Self, ApplicationError> {
        Ok(self.unit(SweepUnit::from_application(app)?))
    }

    /// Appends a labeled pass selection to the config axis.
    #[must_use]
    pub fn config(mut self, label: &str, passes: &PassConfig) -> Self {
        self.configs.push((label.to_owned(), *passes));
        self
    }

    /// Appends an [`OptLevel`] preset to the config axis, labeled with the
    /// level's name.
    #[must_use]
    pub fn level(self, level: OptLevel) -> Self {
        self.config(&level.to_string(), &PassConfig::for_level(level))
    }

    /// Appends several [`OptLevel`] presets to the config axis, in order.
    #[must_use]
    pub fn levels(mut self, levels: impl IntoIterator<Item = OptLevel>) -> Self {
        for level in levels {
            self = self.level(level);
        }
        self
    }

    /// Appends a labeled target machine to the machine axis.
    #[must_use]
    pub fn machine(mut self, label: &str, machine: &MachineConfig) -> Self {
        self.machines.push((label.to_owned(), machine.clone()));
        self
    }

    /// The unit axis.
    #[must_use]
    pub fn units(&self) -> &[SweepUnit] {
        &self.units
    }

    /// The config axis (label, passes).
    #[must_use]
    pub fn configs(&self) -> &[(String, PassConfig)] {
        &self.configs
    }

    /// The machine axis (label, machine).
    #[must_use]
    pub fn machines(&self) -> &[(String, MachineConfig)] {
        &self.machines
    }

    /// Number of cells the sweep will run (axes left empty count as their
    /// run-time default of 1).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.units.len() * self.configs.len().max(1) * self.machines.len().max(1)
    }
}

/// One cell of a completed sweep: the three axis labels, the outcome, and
/// the cell's own stats (`wall_ns` there is the cell's summed stage time —
/// cells overlap on the pool, so no per-cell wall clock exists).
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Unit-axis label.
    pub unit: String,
    /// Config-axis label.
    pub config: String,
    /// Machine-axis label.
    pub machine: String,
    /// The compilation outcome (artifact, cached flag).
    pub outcome: UnitOutcome,
    /// This cell's stats: exactly one of `jobs_run`/`jobs_cached` is 1.
    pub stats: PipelineStats,
}

impl SweepCell {
    /// The cell's WCET bound, in cycles.
    #[must_use]
    pub fn wcet(&self) -> u64 {
        self.outcome.artifact.report.wcet
    }
}

/// Result of [`Pipeline::run_sweep`]: the cells in flattening order
/// (unit-major, then config, then machine) plus aggregate stats.
#[derive(Debug, Clone)]
pub struct SweepResult {
    units: Vec<String>,
    configs: Vec<String>,
    machines: Vec<String>,
    cells: Vec<SweepCell>,
    trace: RunTrace,
    /// Aggregate run metrics (stage times summed over cells, `wall_ns`
    /// the end-to-end clock of the whole sweep).
    pub stats: PipelineStats,
}

impl SweepResult {
    /// The run's span trace: per-cell stage spans, nested per-pass spans
    /// for every fresh compilation. Always collected — recording costs a
    /// handful of allocations per cell, dwarfed by the compile itself.
    #[must_use]
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Moves the trace out (the search chains generation traces this way).
    pub(crate) fn take_trace(&mut self) -> RunTrace {
        std::mem::take(&mut self.trace)
    }

    /// Unit-axis labels, in spec order.
    #[must_use]
    pub fn unit_labels(&self) -> &[String] {
        &self.units
    }

    /// Config-axis labels, in spec order.
    #[must_use]
    pub fn config_labels(&self) -> &[String] {
        &self.configs
    }

    /// Machine-axis labels, in spec order.
    #[must_use]
    pub fn machine_labels(&self) -> &[String] {
        &self.machines
    }

    /// All cells in flattening order.
    #[must_use]
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn axis_index(axis: &[String], label: &str) -> Option<usize> {
        axis.iter().position(|l| l == label)
    }

    fn flat_index(&self, u: usize, c: usize, m: usize) -> usize {
        (u * self.configs.len() + c) * self.machines.len() + m
    }

    /// The cell at positional coordinates, if in range.
    #[must_use]
    pub fn cell_at(&self, unit: usize, config: usize, machine: usize) -> Option<&SweepCell> {
        if unit < self.units.len() && config < self.configs.len() && machine < self.machines.len() {
            self.cells.get(self.flat_index(unit, config, machine))
        } else {
            None
        }
    }

    /// The cell at labeled coordinates. Labels resolve to their first
    /// occurrence on each axis (axes are expected label-unique).
    #[must_use]
    pub fn get(&self, unit: &str, config: &str, machine: &str) -> Option<&SweepCell> {
        let u = Self::axis_index(&self.units, unit)?;
        let c = Self::axis_index(&self.configs, config)?;
        let m = Self::axis_index(&self.machines, machine)?;
        self.cell_at(u, c, m)
    }

    /// The WCET bound of one cell by labels.
    ///
    /// # Panics
    ///
    /// Panics on unknown labels — same contract as indexing.
    #[must_use]
    pub fn wcet(&self, unit: &str, config: &str, machine: &str) -> u64 {
        self[(unit, config, machine)].wcet()
    }

    /// Iterates the cells of one (config, machine) column in unit order.
    ///
    /// # Panics
    ///
    /// Panics on unknown labels.
    pub fn column<'a>(
        &'a self,
        config: &str,
        machine: &str,
    ) -> impl Iterator<Item = &'a SweepCell> + 'a {
        let c = Self::axis_index(&self.configs, config)
            .unwrap_or_else(|| panic!("unknown config label `{config}`"));
        let m = Self::axis_index(&self.machines, machine)
            .unwrap_or_else(|| panic!("unknown machine label `{machine}`"));
        (0..self.units.len()).map(move |u| &self.cells[self.flat_index(u, c, m)])
    }

    /// Mean WCET over the unit axis of one (config, machine) column.
    ///
    /// # Panics
    ///
    /// Panics on unknown labels or an empty unit axis.
    #[must_use]
    pub fn mean_wcet(&self, config: &str, machine: &str) -> f64 {
        assert!(!self.units.is_empty(), "mean over an empty unit axis");
        let total: u64 = self.column(config, machine).map(SweepCell::wcet).sum();
        total as f64 / self.units.len() as f64
    }

    /// Total WCET over the unit axis of one (config, machine) column.
    ///
    /// # Panics
    ///
    /// Panics on unknown labels.
    #[must_use]
    pub fn total_wcet(&self, config: &str, machine: &str) -> u64 {
        self.column(config, machine).map(SweepCell::wcet).sum()
    }

    /// Mean of per-unit WCET ratios of `config` against `baseline` on one
    /// machine — the aggregation Figure 2 reports ("mean WCET delta").
    ///
    /// # Panics
    ///
    /// Panics on unknown labels or an empty unit axis.
    #[must_use]
    pub fn mean_ratio(&self, config: &str, baseline: &str, machine: &str) -> f64 {
        assert!(!self.units.is_empty(), "mean over an empty unit axis");
        let s: f64 = self
            .column(config, machine)
            .zip(self.column(baseline, machine))
            .map(|(c, b)| c.wcet() as f64 / b.wcet() as f64)
            .sum();
        s / self.units.len() as f64
    }

    /// A digest of every cell's outputs in flattening order — equal
    /// digests mean bit-identical binaries, annotation tables and WCET
    /// bounds across the whole matrix; the determinism gates compare
    /// serial and parallel sweeps with this.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        for cell in &self.cells {
            h.str(&cell.unit).str(&cell.config).str(&cell.machine);
            let d = cell.outcome.artifact.output_digest();
            h.u64(d.0 as u64).u64((d.0 >> 64) as u64);
        }
        h.finish()
    }
}

impl Index<(usize, usize, usize)> for SweepResult {
    type Output = SweepCell;

    fn index(&self, (u, c, m): (usize, usize, usize)) -> &SweepCell {
        self.cell_at(u, c, m).unwrap_or_else(|| {
            panic!(
                "sweep index ({u}, {c}, {m}) out of range ({} × {} × {})",
                self.units.len(),
                self.configs.len(),
                self.machines.len()
            )
        })
    }
}

impl Index<(&str, &str, &str)> for SweepResult {
    type Output = SweepCell;

    fn index(&self, (unit, config, machine): (&str, &str, &str)) -> &SweepCell {
        self.get(unit, config, machine).unwrap_or_else(|| {
            panic!("sweep has no cell labeled ({unit:?}, {config:?}, {machine:?})")
        })
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep {} units × {} configs × {} machines = {} cells ({} run, {} cached)",
            self.units.len(),
            self.configs.len(),
            self.machines.len(),
            self.cells.len(),
            self.stats.jobs_run,
            self.stats.jobs_cached,
        )
    }
}

impl Pipeline {
    /// Runs a sweep: flattens the (units × configs × machines) cross
    /// product into one sharded job set on the work-stealing pool, serving
    /// every previously-seen cell from the artifact cache (the key already
    /// separates all three axes). Cells come back in flattening order
    /// regardless of scheduling, so equal specs yield equal
    /// [`SweepResult::digest`]s at any job count.
    ///
    /// An empty config axis defaults to the single `verified` preset; an
    /// empty machine axis defaults to the pipeline's own machine labeled
    /// `default`.
    ///
    /// # Errors
    ///
    /// The first [`PipelineError`] any cell hit.
    ///
    /// # Panics
    ///
    /// Re-raises panics from compiler/analyzer internals (toolchain bugs).
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<SweepResult, PipelineError> {
        self.run_sweep_at(spec, Instant::now())
    }

    /// [`run_sweep`](Pipeline::run_sweep) with an explicit trace epoch:
    /// every span timestamp is relative to `epoch`, so callers chaining
    /// several sweeps (the lattice search's generations) get one
    /// continuous timeline.
    pub(crate) fn run_sweep_at(
        &self,
        spec: &SweepSpec,
        epoch: Instant,
    ) -> Result<SweepResult, PipelineError> {
        let configs: Vec<(String, PassConfig)> = if spec.configs.is_empty() {
            vec![(
                OptLevel::Verified.to_string(),
                PassConfig::for_level(OptLevel::Verified),
            )]
        } else {
            spec.configs.clone()
        };
        let machines: Vec<(String, MachineConfig)> = if spec.machines.is_empty() {
            vec![("default".to_owned(), self.machine().clone())]
        } else {
            spec.machines.clone()
        };

        let mut cells = Vec::with_capacity(spec.units.len() * configs.len() * machines.len());
        for unit in &spec.units {
            for (config_label, passes) in &configs {
                for (_, machine) in &machines {
                    cells.push(CellSpec {
                        unit: CompileUnit {
                            name: unit.name.clone(),
                            label: config_label.clone(),
                            source: Arc::clone(&unit.source),
                            entry: unit.entry.clone(),
                            passes: *passes,
                        },
                        canonical: Arc::clone(&unit.canonical),
                        machine: machine.clone(),
                    });
                }
            }
        }

        let (outcomes, stats, trace) = self.run_cells(cells, epoch)?;

        let machine_labels: Vec<String> = machines.iter().map(|(l, _)| l.clone()).collect();
        let config_labels: Vec<String> = configs.iter().map(|(l, _)| l.clone()).collect();
        let mut result_cells = Vec::with_capacity(outcomes.len());
        let mut it = outcomes.into_iter();
        for unit in &spec.units {
            for config_label in &config_labels {
                for machine_label in &machine_labels {
                    let cell = it.next().expect("one outcome per cell");
                    result_cells.push(SweepCell {
                        unit: unit.name.clone(),
                        config: config_label.clone(),
                        machine: machine_label.clone(),
                        outcome: cell.outcome,
                        stats: cell.stats,
                    });
                }
            }
        }
        Ok(SweepResult {
            units: spec.units.iter().map(|u| u.name.clone()).collect(),
            configs: config_labels,
            machines: machine_labels,
            cells: result_cells,
            trace,
            stats,
        })
    }

    /// Audits a finished sweep against the pipeline's warm session
    /// analyzer: every unique artifact is re-analyzed through the shared
    /// fact cache and the re-derived bound compared with the stored
    /// report. On a sweep this pipeline just ran, every function replays
    /// from cache (`functions_reused` > 0, `functions_analyzed` = 0) —
    /// the CI analyzer smoke asserts exactly that. One `analyze:reuse` /
    /// `analyze:fixpoint` event per replayed / re-run function is appended
    /// to the sweep's trace (job = cell index), so `--profile` output
    /// shows the audit.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Analyze`] if a re-analysis fails outright.
    /// Bound mismatches are reported in the audit, not as errors — the
    /// caller decides whether a disagreement is fatal.
    pub fn reanalyze_sweep(
        &self,
        sweep: &mut SweepResult,
    ) -> Result<ReanalysisAudit, PipelineError> {
        let mut audit = ReanalysisAudit::default();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..sweep.cells.len() {
            let cell = &sweep.cells[i];
            let artifact = std::sync::Arc::clone(&cell.outcome.artifact);
            let unit = cell.unit.clone();
            let detail = format!("unit={} config={}", unit, cell.config);
            if !seen.insert(artifact.key) {
                continue;
            }
            let analysis = self
                .analyzer()
                .analyze(&vericomp_wcet::AnalysisRequest::new(
                    &artifact.program,
                    &artifact.entry,
                ))
                .map_err(|error| PipelineError::Analyze { unit, error })?;
            audit.artifacts += 1;
            audit.functions_reused += analysis.functions_reused;
            audit.functions_analyzed += analysis.functions_analyzed;
            if analysis.report.wcet != artifact.report.wcet {
                audit.mismatches.push(format!(
                    "{detail}: re-derived {} vs stored {}",
                    analysis.report.wcet, artifact.report.wcet
                ));
            }
            let job = i as u32;
            for _ in 0..analysis.functions_analyzed {
                sweep
                    .trace
                    .push(Span::event("analyze:fixpoint", job, 0, &detail));
            }
            for _ in 0..analysis.functions_reused {
                sweep
                    .trace
                    .push(Span::event("analyze:reuse", job, 0, &detail));
            }
        }
        Ok(audit)
    }
}

/// Result of [`Pipeline::reanalyze_sweep`]: how much of the audit was
/// served from the session analyzer's fact cache, and any bound
/// disagreements found.
#[derive(Debug, Clone, Default)]
pub struct ReanalysisAudit {
    /// Unique artifacts re-analyzed (cells deduplicated by artifact key).
    pub artifacts: u64,
    /// Function bodies replayed from the session fact cache.
    pub functions_reused: u64,
    /// Function bodies whose fixpoints had to re-run.
    pub functions_analyzed: u64,
    /// Human-readable descriptions of bound disagreements (empty on a
    /// healthy audit).
    pub mismatches: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::PipelineOptions;
    use vericomp_dataflow::fleet;

    fn suite_prefix(n: usize) -> Vec<Node> {
        let mut nodes = fleet::named_suite();
        nodes.truncate(n);
        nodes
    }

    /// A machine whose memory is 4× slower than the MPC755 model — unlike
    /// `tiny_caches`, this shifts every WCET, which the tests rely on.
    fn slow_mem() -> MachineConfig {
        let mut m = MachineConfig::mpc755();
        m.mem_latency *= 4;
        m
    }

    fn small_spec(nodes: &[Node]) -> SweepSpec {
        SweepSpec::new()
            .nodes(nodes)
            .levels([OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull])
            .machine("mpc755", &MachineConfig::mpc755())
            .machine("slow-mem", &slow_mem())
    }

    #[test]
    fn sweep_matches_nested_single_axis_sweeps_bit_exactly() {
        let nodes = suite_prefix(3);
        let spec = small_spec(&nodes);
        let sweep = Pipeline::in_memory()
            .run_sweep(&spec)
            .expect("sweep compiles");
        assert_eq!(sweep.cell_count(), 3 * 3 * 2);

        // the equivalent hand-rolled loops the drivers used to contain
        for (machine_label, machine) in spec.machines() {
            let pipeline = Pipeline::new(
                &PipelineOptions::builder()
                    .machine(machine.clone())
                    .build()
                    .expect("options"),
            )
            .expect("pipeline");
            for (config_label, passes) in spec.configs() {
                let fleet = pipeline
                    .run_sweep(&SweepSpec::new().nodes(&nodes).config(config_label, passes))
                    .expect("fleet compiles");
                for (node, single) in nodes.iter().zip(fleet.cells()) {
                    let cell = &sweep[(node.name(), config_label.as_str(), machine_label.as_str())];
                    assert_eq!(
                        cell.outcome.artifact.output_digest(),
                        single.outcome.artifact.output_digest(),
                        "{} × {config_label} × {machine_label} diverges from the nested loop",
                        node.name()
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_sweep_is_fully_cached_and_bit_identical() {
        let nodes = suite_prefix(4);
        let spec = small_spec(&nodes);
        let pipeline = Pipeline::in_memory();
        let cold = pipeline.run_sweep(&spec).expect("cold sweep");
        let warm = pipeline.run_sweep(&spec).expect("warm sweep");
        assert_eq!(cold.stats.jobs_run, 24);
        assert_eq!(cold.stats.jobs_cached, 0);
        assert_eq!(warm.stats.jobs_cached, 24);
        assert_eq!(warm.stats.jobs_run, 0);
        assert!(warm.stats.hit_rate() >= 0.9);
        assert_eq!(cold.digest(), warm.digest());
        for cell in warm.cells() {
            assert!(cell.outcome.cached);
            assert_eq!(cell.stats.jobs_cached, 1);
            assert_eq!(cell.stats.jobs_run, 0);
        }
    }

    #[test]
    fn widening_an_axis_reuses_every_overlapping_cell() {
        let nodes = suite_prefix(3);
        let pipeline = Pipeline::in_memory();
        let narrow = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);
        let cold = pipeline.run_sweep(&narrow).expect("narrow sweep");
        assert_eq!(cold.stats.jobs_run, 3);

        // widen the config axis: the verified column replays from cache
        let wide = SweepSpec::new()
            .nodes(&nodes)
            .levels([OptLevel::Verified, OptLevel::OptFull]);
        let widened = pipeline.run_sweep(&wide).expect("wide sweep");
        assert_eq!(widened.stats.jobs_cached, 3);
        assert_eq!(widened.stats.jobs_run, 3);
        for cell in widened.column("verified", "default") {
            assert!(cell.outcome.cached);
        }
        for cell in widened.column("opt-full", "default") {
            assert!(!cell.outcome.cached);
        }
    }

    #[test]
    fn machines_axis_separates_cells_and_aggregations_work() {
        let nodes = suite_prefix(2);
        let spec = small_spec(&nodes);
        let sweep = Pipeline::in_memory().run_sweep(&spec).expect("sweep");

        // positional and labeled indexing agree
        let by_pos = &sweep[(0, 1, 0)];
        let by_label = &sweep[(nodes[0].name(), "verified", "mpc755")];
        assert_eq!(
            by_pos.outcome.artifact.output_digest(),
            by_label.outcome.artifact.output_digest()
        );

        // the machine axis genuinely changes the analysis: slower memory
        // must not yield identical WCETs across the whole column
        let m755: Vec<u64> = sweep
            .column("verified", "mpc755")
            .map(SweepCell::wcet)
            .collect();
        let slow: Vec<u64> = sweep
            .column("verified", "slow-mem")
            .map(SweepCell::wcet)
            .collect();
        assert_ne!(m755, slow, "machine axis had no effect on any WCET");

        // aggregations
        let mean = sweep.mean_wcet("verified", "mpc755");
        assert!((mean - m755.iter().sum::<u64>() as f64 / 2.0).abs() < 1e-9);
        assert_eq!(sweep.total_wcet("verified", "mpc755"), m755.iter().sum());
        let ratio = sweep.mean_ratio("verified", "pattern-O0", "mpc755");
        assert!(ratio > 0.0 && ratio < 1.0, "verified beats the baseline");
        assert!(
            (sweep.mean_ratio("pattern-O0", "pattern-O0", "mpc755") - 1.0).abs() < 1e-12,
            "self-ratio is 1"
        );

        // misses
        assert!(sweep.get("no_such_node", "verified", "mpc755").is_none());
        assert!(sweep.cell_at(99, 0, 0).is_none());
    }

    #[test]
    fn per_cell_stats_sum_to_the_aggregate() {
        let nodes = suite_prefix(3);
        let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);
        let sweep = Pipeline::in_memory().run_sweep(&spec).expect("sweep");
        let mut merged = PipelineStats::default();
        for cell in sweep.cells() {
            merged.merge(&cell.stats);
        }
        assert_eq!(merged.jobs_run, sweep.stats.jobs_run);
        assert_eq!(merged.jobs_cached, sweep.stats.jobs_cached);
        assert_eq!(merged.compile_ns, sweep.stats.compile_ns);
        assert_eq!(merged.analyze_ns, sweep.stats.analyze_ns);
        assert_eq!(merged.store_ns, sweep.stats.store_ns);
    }

    #[test]
    fn duplicate_config_labels_resolve_to_their_first_occurrence() {
        // axes are expected label-unique, but a duplicated label must not
        // corrupt the matrix: both columns compile, and labeled lookup
        // resolves to the first occurrence in spec order
        let nodes = suite_prefix(2);
        let spec = SweepSpec::new()
            .nodes(&nodes)
            .config("hot", &PassConfig::for_level(OptLevel::PatternO0))
            .config("hot", &PassConfig::for_level(OptLevel::OptFull));
        let sweep = Pipeline::in_memory().run_sweep(&spec).expect("sweep");
        assert_eq!(sweep.cell_count(), 4);
        assert_eq!(sweep.config_labels(), ["hot".to_owned(), "hot".to_owned()]);

        for (ui, node) in nodes.iter().enumerate() {
            let first = &sweep[(ui, 0, 0)];
            let second = &sweep[(ui, 1, 0)];
            // both columns genuinely ran their own config
            assert_ne!(
                first.outcome.artifact.output_digest(),
                second.outcome.artifact.output_digest(),
                "{}: duplicate label collapsed two distinct configs",
                node.name()
            );
            let by_label = sweep.get(node.name(), "hot", "default").expect("cell");
            assert_eq!(
                by_label.outcome.artifact.output_digest(),
                first.outcome.artifact.output_digest(),
                "{}: labeled lookup must resolve to the first occurrence",
                node.name()
            );
        }
    }

    #[test]
    fn zero_config_spec_compiles_the_verified_preset() {
        // an empty config axis is not an error: it defaults to exactly the
        // verified preset, bit-for-bit
        let nodes = suite_prefix(2);
        let pipeline = Pipeline::in_memory();
        let defaulted = pipeline
            .run_sweep(&SweepSpec::new().nodes(&nodes))
            .expect("defaulted sweep");
        let explicit = pipeline
            .run_sweep(&SweepSpec::new().nodes(&nodes).level(OptLevel::Verified))
            .expect("explicit sweep");
        assert_eq!(defaulted.config_labels(), explicit.config_labels());
        assert_eq!(defaulted.digest(), explicit.digest());
        // same key space too: the second sweep replayed every cell
        assert_eq!(explicit.stats.jobs_cached, 2);
    }

    #[test]
    fn absent_triples_return_none_and_indexing_them_panics() {
        let nodes = suite_prefix(1);
        let spec = SweepSpec::new()
            .nodes(&nodes)
            .level(OptLevel::Verified)
            .machine("mpc755", &MachineConfig::mpc755());
        let sweep = Pipeline::in_memory().run_sweep(&spec).expect("sweep");

        // get(): a miss on any single axis is None, not a panic
        assert!(sweep.get("no_such_node", "verified", "mpc755").is_none());
        assert!(sweep.get(nodes[0].name(), "opt-full", "mpc755").is_none());
        assert!(sweep
            .get(nodes[0].name(), "verified", "tiny-caches")
            .is_none());
        assert!(sweep.cell_at(0, 0, 1).is_none());

        // indexing the same absent triples panics with the lookup contract
        let by_label = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sweep[(nodes[0].name(), "opt-full", "mpc755")].wcet()
        }));
        assert!(
            by_label.is_err(),
            "labeled index of absent triple must panic"
        );
        let by_pos =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sweep[(0, 0, 1)].wcet()));
        assert!(by_pos.is_err(), "positional index out of range must panic");
    }

    #[test]
    fn empty_axes_default_and_empty_units_yield_empty_result() {
        let nodes = suite_prefix(1);
        let sweep = Pipeline::in_memory()
            .run_sweep(&SweepSpec::new().nodes(&nodes))
            .expect("defaulted sweep");
        assert_eq!(sweep.config_labels(), ["verified".to_owned()]);
        assert_eq!(sweep.machine_labels(), ["default".to_owned()]);
        assert_eq!(sweep.cell_count(), 1);

        let empty = Pipeline::in_memory()
            .run_sweep(&SweepSpec::new())
            .expect("empty sweep");
        assert_eq!(empty.cell_count(), 0);
        assert_eq!(empty.stats.jobs_total(), 0);
    }
}
