//! The compile-as-a-service daemon: one warm, sharded, evicting
//! [`ArtifactStore`] serving many concurrent clients.
//!
//! **Architecture.** One acceptor thread takes connections on a Unix
//! socket and spawns a reader thread per connection. Readers frame and
//! parse [`proto`](crate::proto) documents; `stats`, `shutdown` and
//! `have` negotiation are answered inline, sweep requests are resolved
//! through the store's **parse cache** (digest → parsed AST + canonical
//! text — each distinct unit parses once per digest across requests,
//! batches and clients) and then queued for the **batcher** — the
//! [`Server::run`] thread — which drains the queue in admission-bounded,
//! round-robin-fair batches, merges compatible requests into single
//! [`SweepSpec`]s, runs them on the one shared [`Pipeline`], and mails
//! each request its response. A request whose units don't all resolve
//! (unknown digest, parse failure) is answered with `error` before
//! queueing — no partial batch is ever admitted.
//!
//! **Batching.** Requests whose config and machine axes are identical
//! (same labels, same values — the *axis signature*) merge into one
//! sweep: their unit axes concatenate, deduplicated by (source digest,
//! entry), so a cell requested by several clients at once compiles
//! exactly once. Each response is then assembled positionally from the
//! merged result using the request's own axis labels, which makes the
//! response digest **bit-identical to a solo `run_sweep`** of the same
//! request — the property the determinism gates assert across job
//! counts, shard counts, restarts and eviction.
//!
//! **Fairness and admission.** The batcher cycles over clients in
//! arrival order (rotating the starting client each batch) and admits
//! one request per client per cycle until the in-flight cell budget
//! (`max_inflight_cells`) is spent; at least one request is always
//! admitted so an oversized sweep cannot wedge the queue. Whatever
//! remains queued is counted as a deferral and leads the next batch.
//!
//! **Eviction.** The store's epoch advances once per batch and
//! [`ArtifactStore::enforce_bounds`] runs after it, so recency is
//! batch-granular and the evicted set is a pure function of the batch
//! history — concurrent arrival order inside a batch cannot change the
//! post-eviction store digest.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use vericomp_arch::MachineConfig;

use crate::metrics::Registry;
use crate::proto::{
    cells_digest, decode_request, encode_response, frame_text, machine_to_fields, passes_to_bits,
    read_frame, CellSummary, Request, Response, ServerStats, SweepResponse, WireSweep, PROTO_MINOR,
};
use crate::recorder::{FlightRecorder, DEFAULT_RECORDER_CAP};
use crate::service::{Pipeline, PipelineOptions};
use crate::stats::{saturating_nanos, PipelineStats};
use crate::store::{ArtifactStore, ParsedUnit, StoreConfig};
use crate::sweep::{SweepResult, SweepSpec, SweepUnit};
use crate::trace::Span;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Path of the Unix socket to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Worker threads of the shared pipeline (`0` = machine parallelism).
    pub jobs: usize,
    /// `.vcart` persistence directory of the store (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Store shard count.
    pub shards: usize,
    /// Store resident-byte bound (`None` = unbounded, no eviction).
    pub max_bytes: Option<u64>,
    /// Parse-cache resident-byte bound (`None` = unbounded).
    pub parse_bytes: Option<u64>,
    /// Admission bound: max sweep cells in flight per batch.
    pub max_inflight_cells: usize,
    /// Hit-rate SLO in thousandths (`900` = 0.900); `0` disables the line.
    pub slo_per_mille: u64,
    /// p99 per-request wall-latency SLO in nanoseconds; `0` disables it.
    pub slo_p99_ns: u64,
    /// Whether the flight recorder runs (`--no-recorder` disables it;
    /// the `recorder-dump` request is then refused with an error).
    pub recorder: bool,
    /// Flight-recorder ring capacity in events.
    pub recorder_cap: usize,
    /// Persist the metrics registry JSON here at clean shutdown.
    pub metrics_json: Option<PathBuf>,
    /// Default target machine of the shared pipeline (requests always
    /// carry explicit machines; this only parameterizes the pipeline).
    pub machine: MachineConfig,
}

impl ServerOptions {
    /// Defaults: machine parallelism, memory-only store, 4 shards,
    /// unbounded artifacts, 64 MiB parse cache, 4096-cell admission,
    /// 0.900 SLO (no p99 SLO), flight recorder on at
    /// [`DEFAULT_RECORDER_CAP`] events, MPC755.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>) -> ServerOptions {
        ServerOptions {
            socket: socket.into(),
            jobs: 0,
            cache_dir: None,
            shards: 4,
            max_bytes: None,
            parse_bytes: Some(StoreConfig::DEFAULT_PARSE_BYTES),
            max_inflight_cells: 4096,
            slo_per_mille: 900,
            slo_p99_ns: 0,
            recorder: true,
            recorder_cap: DEFAULT_RECORDER_CAP,
            metrics_json: None,
            machine: MachineConfig::mpc755(),
        }
    }
}

/// One queued sweep request: who sent it, what it asks for, where the
/// response goes.
struct Queued {
    client: u64,
    /// Server-assigned request id (1-based; recorder and span tags).
    request: u64,
    /// Client-supplied trace id (0 = untraced; traced requests get
    /// their server-side spans projected into the response).
    trace: u64,
    spec: SweepSpec,
    respond: mpsc::Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<Queued>,
    /// Rotates the round-robin starting client.
    cursor: u64,
    /// Set by the batcher on its way out: late requests are refused
    /// instead of queued into nowhere.
    closed: bool,
}

/// Monotonic server counters (see [`ServerStats`] for meanings).
#[derive(Default)]
struct Metrics {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_cells: AtomicU64,
    jobs_run: AtomicU64,
    jobs_cached: AtomicU64,
    queue_peak: AtomicU64,
    deferred: AtomicU64,
    compile_ns: AtomicU64,
    analyze_ns: AtomicU64,
    store_ns: AtomicU64,
    wall_ns: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    units_offered: AtomicU64,
    units_uploaded: AtomicU64,
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
}

impl Metrics {
    fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    fn raise(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }
}

/// State shared between the acceptor, the readers and the batcher.
struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    /// Lifetime metrics registry, served by the `metrics` request. The
    /// [`Metrics`] atomics above stay authoritative for [`ServerStats`];
    /// the registry mirrors the deterministic counters and adds the
    /// latency/batch/queue histograms the snapshot quantiles come from.
    registry: Registry,
    /// The flight recorder (`None` under `--no-recorder`).
    recorder: Option<FlightRecorder>,
    /// Server-assigned sweep request ids, 1-based.
    next_request: AtomicU64,
    store: Arc<ArtifactStore>,
    socket: PathBuf,
    slo_per_mille: u64,
    slo_p99_ns: u64,
}

impl Shared {
    /// Records a flight-recorder event; the detail closure only runs
    /// when the recorder is enabled, so `--no-recorder` pays no
    /// formatting cost on the hot path.
    fn record(
        &self,
        request: u64,
        trace: u64,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(recorder) = &self.recorder {
            recorder.record(request, trace, kind, detail());
        }
    }

    fn snapshot(&self) -> ServerStats {
        let m = &self.metrics;
        ServerStats {
            requests: m.requests.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            batched_cells: m.batched_cells.load(Ordering::Relaxed),
            jobs_run: m.jobs_run.load(Ordering::Relaxed),
            jobs_cached: m.jobs_cached.load(Ordering::Relaxed),
            evictions: self.store.evictions(),
            resident: self.store.resident() as u64,
            store_bytes: self.store.len_bytes(),
            shards: self.store.shard_count() as u64,
            queue_depth: self.queue.lock().expect("queue lock").items.len() as u64,
            queue_peak: m.queue_peak.load(Ordering::Relaxed),
            deferred: m.deferred.load(Ordering::Relaxed),
            compile_ns: m.compile_ns.load(Ordering::Relaxed),
            analyze_ns: m.analyze_ns.load(Ordering::Relaxed),
            store_ns: m.store_ns.load(Ordering::Relaxed),
            wall_ns: m.wall_ns.load(Ordering::Relaxed),
            slo_per_mille: self.slo_per_mille,
            bytes_rx: m.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: m.bytes_tx.load(Ordering::Relaxed),
            units_offered: m.units_offered.load(Ordering::Relaxed),
            units_uploaded: m.units_uploaded.load(Ordering::Relaxed),
            parse_hits: m.parse_hits.load(Ordering::Relaxed),
            parse_misses: m.parse_misses.load(Ordering::Relaxed),
            parse_evictions: self.store.parse_evictions(),
            parse_resident: self.store.parse_resident() as u64,
            parse_bytes: self.store.parse_len_bytes(),
            request_p50_ns: self.registry.quantile("request_wall_ns", 0.50).unwrap_or(0),
            request_p99_ns: self.registry.quantile("request_wall_ns", 0.99).unwrap_or(0),
            slo_p99_ns: self.slo_p99_ns,
            proto_minor: u64::from(PROTO_MINOR),
        }
    }
}

/// The compile service. [`Server::run`] blocks until a client sends
/// `shutdown`, then drains and returns the final [`ServerStats`].
pub struct Server {
    listener: UnixListener,
    pipeline: Pipeline,
    shared: Arc<Shared>,
    max_inflight_cells: usize,
    metrics_json: Option<PathBuf>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.shared.socket)
            .field("jobs", &self.pipeline.jobs())
            .field("store", &self.shared.store)
            .field("max_inflight_cells", &self.max_inflight_cells)
            .finish()
    }
}

impl Server {
    /// Binds the socket and builds the warm store + shared pipeline.
    ///
    /// # Errors
    ///
    /// Socket-bind or store-directory failures.
    pub fn new(options: &ServerOptions) -> io::Result<Server> {
        let store = Arc::new(ArtifactStore::with_config(StoreConfig {
            dir: options.cache_dir.clone(),
            shards: options.shards,
            max_bytes: options.max_bytes,
            parse_bytes: options.parse_bytes,
        })?);
        let pipeline_options = PipelineOptions::builder()
            .jobs(options.jobs)
            .machine(options.machine.clone())
            .build()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let pipeline = Pipeline::with_store(&pipeline_options, Arc::clone(&store));
        // a stale socket file (crashed predecessor) would fail the bind
        let _ = std::fs::remove_file(&options.socket);
        let listener = UnixListener::bind(&options.socket)?;
        Ok(Server {
            listener,
            pipeline,
            shared: Arc::new(Shared {
                queue: Mutex::new(QueueState::default()),
                ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                metrics: Metrics::default(),
                registry: Registry::new(),
                recorder: options
                    .recorder
                    .then(|| FlightRecorder::new(options.recorder_cap)),
                next_request: AtomicU64::new(0),
                store,
                socket: options.socket.clone(),
                slo_per_mille: options.slo_per_mille,
                slo_p99_ns: options.slo_p99_ns,
            }),
            max_inflight_cells: options.max_inflight_cells.max(1),
            metrics_json: options.metrics_json.clone(),
        })
    }

    /// The store the server owns (tests inspect digests and eviction).
    #[must_use]
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.shared.store
    }

    /// Serves until shutdown, then drains the queue and returns the final
    /// stats. The socket file is removed on the way out.
    ///
    /// # Errors
    ///
    /// Thread-spawn failures; per-connection I/O errors only drop that
    /// connection.
    pub fn run(self) -> io::Result<ServerStats> {
        let shared = Arc::clone(&self.shared);
        let listener = self.listener.try_clone()?;
        let acceptor = thread::Builder::new()
            .name("vericomp-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?;

        loop {
            let batch = {
                let mut q = self.shared.queue.lock().expect("queue lock");
                loop {
                    if !q.items.is_empty() {
                        break;
                    }
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        q.closed = true;
                        drop(q);
                        // wake the acceptor out of its blocking accept
                        let _ = UnixStream::connect(&self.shared.socket);
                        let _ = acceptor.join();
                        let _ = std::fs::remove_file(&self.shared.socket);
                        self.shared.record(0, 0, "shutdown", || {
                            format!(
                                "requests={}",
                                self.shared.metrics.requests.load(Ordering::Relaxed)
                            )
                        });
                        if let Some(path) = &self.metrics_json {
                            let _ = std::fs::write(path, self.shared.registry.to_json());
                        }
                        return Ok(self.shared.snapshot());
                    }
                    q = self.shared.ready.wait(q).expect("queue lock");
                }
                self.select_batch(&mut q)
            };
            self.execute_batch(batch);
        }
    }

    /// Round-robin admission: one request per client per cycle, clients
    /// in arrival order rotated by the batch cursor, until the in-flight
    /// cell budget is spent. Always admits at least one request.
    fn select_batch(&self, q: &mut QueueState) -> Vec<Queued> {
        let mut clients: Vec<u64> = Vec::new();
        for item in &q.items {
            if !clients.contains(&item.client) {
                clients.push(item.client);
            }
        }
        let rot = (q.cursor as usize) % clients.len();
        clients.rotate_left(rot);
        q.cursor = q.cursor.wrapping_add(1);

        let mut selected = Vec::new();
        let mut budget = self.max_inflight_cells;
        'cycles: loop {
            let mut advanced = false;
            for &client in &clients {
                let Some(pos) = q.items.iter().position(|it| it.client == client) else {
                    continue;
                };
                let cells = q.items[pos].spec.cell_count();
                if !selected.is_empty() && cells > budget {
                    break 'cycles;
                }
                let item = q.items.remove(pos).expect("present");
                budget = budget.saturating_sub(cells);
                selected.push(item);
                advanced = true;
                if budget == 0 {
                    break 'cycles;
                }
            }
            if !advanced {
                break;
            }
        }
        if !q.items.is_empty() {
            Metrics::add(&self.shared.metrics.deferred, 1);
        }
        selected
    }

    /// Runs one admitted batch: group by axis signature, merge unit axes
    /// (dedup by source + entry), one `run_sweep` per group, responses
    /// assembled per request. The store epoch advances first and bounds
    /// are enforced after — the daemon's two batch-boundary hooks.
    fn execute_batch(&self, batch: Vec<Queued>) {
        let m = &self.shared.metrics;
        let reg = &self.shared.registry;
        self.shared.store.advance_epoch();
        Metrics::add(&m.batches, 1);
        Metrics::add(&m.requests, batch.len() as u64);
        reg.incr("batches", 1);
        reg.incr("requests", batch.len() as u64);
        for item in &batch {
            self.shared
                .record(item.request, item.trace, "batch-join", || {
                    format!("client={} cells={}", item.client, item.spec.cell_count())
                });
        }

        // group requests by axis signature, preserving arrival order
        let mut groups: Vec<(String, Vec<Queued>)> = Vec::new();
        for item in batch {
            let sig = axis_signature(&item.spec);
            match groups.iter_mut().find(|(s, _)| *s == sig) {
                Some((_, members)) => members.push(item),
                None => groups.push((sig, vec![item])),
            }
        }

        for (_, members) in groups {
            let started = Instant::now();
            // merged unit axis, deduplicated by (source digest, entry) —
            // the digest is memoized on the unit, so dedup costs no
            // pretty-printing
            let mut merged = SweepSpec::new();
            let mut index: HashMap<(u128, String), usize> = HashMap::new();
            let mut maps: Vec<Vec<usize>> = Vec::with_capacity(members.len());
            let mut count = 0usize;
            for item in &members {
                let mut map = Vec::with_capacity(item.spec.units().len());
                for unit in item.spec.units() {
                    let key = (unit.source_digest().0, unit.entry.clone());
                    let slot = *index.entry(key).or_insert_with(|| {
                        merged = std::mem::take(&mut merged).unit(unit.clone());
                        count += 1;
                        count - 1
                    });
                    map.push(slot);
                }
                maps.push(map);
            }
            // all members share the signature; copy the axes from the first
            for (label, passes) in members[0].spec.configs() {
                merged = merged.config(label, passes);
            }
            for (label, machine) in members[0].spec.machines() {
                merged = merged.machine(label, machine);
            }
            Metrics::add(&m.batched_cells, merged.cell_count() as u64);
            reg.incr("batched_cells", merged.cell_count() as u64);
            reg.observe("batch_cells", merged.cell_count() as u64);
            self.shared.record(0, 0, "sweep-start", || {
                format!("members={} cells={}", members.len(), merged.cell_count())
            });

            match self.pipeline.run_sweep(&merged) {
                Ok(sweep) => {
                    Metrics::add(&m.jobs_run, sweep.stats.jobs_run);
                    Metrics::add(&m.jobs_cached, sweep.stats.jobs_cached);
                    Metrics::add(&m.compile_ns, sweep.stats.compile_ns);
                    Metrics::add(&m.analyze_ns, sweep.stats.analyze_ns);
                    Metrics::add(&m.store_ns, sweep.stats.store_ns);
                    reg.incr("jobs_run", sweep.stats.jobs_run);
                    reg.incr("jobs_cached", sweep.stats.jobs_cached);
                    self.shared.record(0, 0, "sweep-end", || {
                        format!(
                            "run={} cached={}",
                            sweep.stats.jobs_run, sweep.stats.jobs_cached
                        )
                    });
                    for (item, map) in members.iter().zip(&maps) {
                        let mut response = project_response(&item.spec, map, &sweep);
                        if item.trace != 0 {
                            response.spans =
                                project_spans(&item.spec, map, &sweep, item.trace, item.request);
                        }
                        let _ = item.respond.send(Response::Sweep(response));
                    }
                }
                Err(e) => {
                    reg.incr("errors", members.len() as u64);
                    for item in &members {
                        self.shared
                            .record(item.request, item.trace, "error", || e.to_string());
                        let _ = item.respond.send(Response::Error(e.to_string()));
                    }
                }
            }
            Metrics::add(&m.wall_ns, saturating_nanos(started.elapsed()));
        }

        self.shared.store.enforce_bounds();
        self.bump_eviction_counters();
    }

    /// Mirrors the store's lifetime eviction counters into the registry
    /// (as deltas, so registry == store at every batch boundary) and
    /// records eviction events when a bound actually fired.
    fn bump_eviction_counters(&self) {
        let reg = &self.shared.registry;
        let store = &self.shared.store;
        let ev = store.evictions();
        let prev = reg.counter("evictions");
        if ev > prev {
            reg.incr("evictions", ev - prev);
            self.shared.record(0, 0, "store-evict", || {
                format!("evicted={} resident={}", ev - prev, store.resident())
            });
        }
        let pev = store.parse_evictions();
        let prev = reg.counter("parse_evictions");
        if pev > prev {
            reg.incr("parse_evictions", pev - prev);
            self.shared.record(0, 0, "parse-evict", || {
                format!("evicted={} resident={}", pev - prev, store.parse_resident())
            });
        }
    }
}

/// The batching key: two requests merge exactly when their config and
/// machine axes are identical (labels *and* values).
fn axis_signature(spec: &SweepSpec) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (label, passes) in spec.configs() {
        let _ = write!(s, "c {label} {};", passes_to_bits(passes));
    }
    for (label, machine) in spec.machines() {
        let _ = write!(s, "m {label} {};", machine_to_fields(machine));
    }
    s
}

/// Assembles one request's response from the merged sweep result:
/// positional lookup through the unit map, the request's own labels, the
/// digest recomputed in the request's flattening order — bit-identical
/// to what a solo `run_sweep` of the request would digest.
fn project_response(spec: &SweepSpec, unit_map: &[usize], sweep: &SweepResult) -> SweepResponse {
    let mut cells = Vec::with_capacity(spec.cell_count());
    let mut stats = PipelineStats::default();
    for (ui, unit) in spec.units().iter().enumerate() {
        for (ci, (config_label, _)) in spec.configs().iter().enumerate() {
            for (mi, (machine_label, _)) in spec.machines().iter().enumerate() {
                let cell = sweep
                    .cell_at(unit_map[ui], ci, mi)
                    .expect("merged sweep covers every request cell");
                cells.push(CellSummary {
                    unit: unit.name.clone(),
                    config: config_label.clone(),
                    machine: machine_label.clone(),
                    wcet: cell.wcet(),
                    cached: cell.outcome.cached,
                    verdict: cell.outcome.artifact.verdict,
                    output_digest: cell.outcome.artifact.output_digest(),
                });
                stats.merge(&cell.stats);
            }
        }
    }
    let digest = cells_digest(&cells);
    SweepResponse {
        units: spec.units().iter().map(|u| u.name.clone()).collect(),
        configs: spec.configs().iter().map(|(l, _)| l.clone()).collect(),
        machines: spec.machines().iter().map(|(l, _)| l.clone()).collect(),
        cells,
        stats,
        spans: Vec::new(),
        digest,
    }
}

/// Projects the merged sweep's spans down to one traced request: only
/// spans of cells the request asked for survive, re-numbered to the
/// request's own flattening order and tagged `trace=<id> request=<id>`
/// in the detail — how the client's merged timeline attributes
/// server-side work to its own request. Timestamps stay on the server's
/// batch timeline; the client offsets them onto its epoch.
fn project_spans(
    spec: &SweepSpec,
    unit_map: &[usize],
    sweep: &SweepResult,
    trace: u64,
    request: u64,
) -> Vec<Span> {
    let nc = spec.configs().len();
    let nm = spec.machines().len();
    // merged flat cell index → request-local flat cell index (first
    // occurrence wins if a request lists the same unit twice)
    let mut back: HashMap<u32, u32> = HashMap::new();
    for (ui, &mu) in unit_map.iter().enumerate() {
        for ci in 0..nc {
            for mi in 0..nm {
                #[allow(clippy::cast_possible_truncation)]
                back.entry((mu * nc * nm + ci * nm + mi) as u32)
                    .or_insert((ui * nc * nm + ci * nm + mi) as u32);
            }
        }
    }
    let tag = format!("trace={trace:016x} request={request}");
    sweep
        .trace()
        .spans()
        .iter()
        .filter_map(|s| {
            back.get(&s.job).map(|&local| {
                let mut out = s.clone();
                out.job = local;
                out.detail = if out.detail.is_empty() {
                    tag.clone()
                } else {
                    format!("{} {}", out.detail, tag)
                };
                out
            })
        })
        .collect()
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    let mut next_client = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let client = next_client;
        next_client += 1;
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name(format!("vericomp-client-{client}"))
            .spawn(move || connection_loop(stream, client, &shared));
    }
}

/// Resolves a wire sweep into a runnable [`SweepSpec`] through the parse
/// cache: a known digest replays its cached AST + canonical text without
/// touching the body, a fresh digest parses its (digest-verified)
/// uploaded body exactly once and caches it, and a fresh digest without
/// a body is an error the client answers by re-uploading — nothing
/// reaches the batch queue unless *every* unit resolved, so a failed
/// request never admits a partial batch.
fn resolve_sweep(wire: &WireSweep, shared: &Shared) -> Result<SweepSpec, String> {
    let m = &shared.metrics;
    let mut spec = SweepSpec::new();
    for unit in &wire.units {
        if unit.body.is_some() {
            Metrics::add(&m.units_uploaded, 1);
            shared.registry.incr("units_uploaded", 1);
        }
        let resolved = match shared.store.parse_lookup(unit.digest) {
            Some(parsed) => {
                Metrics::add(&m.parse_hits, 1);
                shared.registry.incr("parse_hits", 1);
                parsed
            }
            None => match &unit.body {
                Some(body) => {
                    Metrics::add(&m.parse_misses, 1);
                    shared.registry.incr("parse_misses", 1);
                    let ast = vericomp_minic::parse::parse(body)
                        .map_err(|e| format!("unit `{}` failed to parse: {e}", unit.name))?;
                    let parsed = ParsedUnit {
                        canonical: Arc::clone(body),
                        ast: Arc::new(ast),
                    };
                    shared.store.parse_insert(unit.digest, parsed.clone());
                    parsed
                }
                None => {
                    return Err(format!(
                        "unknown unit digest {} for unit `{}` (re-upload required)",
                        unit.digest, unit.name
                    ))
                }
            },
        };
        spec = spec.unit(SweepUnit::from_parsed(
            &unit.name,
            Arc::clone(&resolved.ast),
            &unit.entry,
            Arc::clone(&resolved.canonical),
        ));
    }
    for (label, passes) in &wire.configs {
        spec = spec.config(label, passes);
    }
    for (label, machine) in &wire.machines {
        spec = spec.machine(label, machine);
    }
    Ok(spec)
}

fn connection_loop(stream: UnixStream, client: u64, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    shared.record(0, 0, "accept", || format!("client={client}"));
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        Metrics::add(&shared.metrics.bytes_rx, frame.len() as u64);
        let request = frame_text(&frame).and_then(decode_request);
        let response = match request {
            Err(e) => {
                shared.registry.incr("errors", 1);
                shared.record(0, 0, "error", || e.to_string());
                Response::Error(e.to_string())
            }
            Ok(Request::Stats) => Response::Stats(shared.snapshot()),
            Ok(Request::Metrics) => Response::Metrics(shared.registry.to_json()),
            Ok(Request::RecorderDump) => match &shared.recorder {
                Some(recorder) => Response::Recorder(recorder.dump_json()),
                None => Response::Error("flight recorder disabled (--no-recorder)".into()),
            },
            Ok(Request::Have(digests)) => {
                Metrics::add(&shared.metrics.units_offered, digests.len() as u64);
                shared.registry.incr("units_offered", digests.len() as u64);
                // `parse_contains` stamps hits with the current epoch, so
                // a just-negotiated digest is maximally recent when its
                // sweep arrives
                Response::Need(
                    digests
                        .into_iter()
                        .filter(|d| !shared.store.parse_contains(*d))
                        .collect(),
                )
            }
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.ready.notify_all();
                let text = encode_response(&Response::Ok);
                Metrics::add(&shared.metrics.bytes_tx, text.len() as u64);
                let _ = reader.get_mut().write_all(text.as_bytes());
                // unblock the acceptor so it can observe the flag
                let _ = UnixStream::connect(&shared.socket);
                return;
            }
            Ok(Request::Sweep(wire)) => {
                let started = Instant::now();
                let request = shared.next_request.fetch_add(1, Ordering::Relaxed) + 1;
                let trace = wire.trace;
                shared.record(request, trace, "request", || {
                    format!("client={client} units={}", wire.units.len())
                });
                let response = match resolve_sweep(&wire, shared) {
                    Err(msg) => {
                        shared.registry.incr("errors", 1);
                        shared.record(request, trace, "error", || msg.clone());
                        Response::Error(msg)
                    }
                    Ok(spec) => {
                        let (tx, rx) = mpsc::channel();
                        let queued = {
                            let mut q = shared.queue.lock().expect("queue lock");
                            if q.closed {
                                false
                            } else {
                                q.items.push_back(Queued {
                                    client,
                                    request,
                                    trace,
                                    spec,
                                    respond: tx,
                                });
                                let depth = q.items.len() as u64;
                                Metrics::raise(&shared.metrics.queue_peak, depth);
                                shared.registry.observe("queue_depth", depth);
                                shared.registry.raise_gauge("queue_peak", depth);
                                true
                            }
                        };
                        if queued {
                            shared.ready.notify_all();
                            match rx.recv() {
                                Ok(response) => response,
                                Err(_) => Response::Error("server dropped the request".into()),
                            }
                        } else {
                            Response::Error("server is shutting down".into())
                        }
                    }
                };
                shared
                    .registry
                    .observe("request_wall_ns", saturating_nanos(started.elapsed()));
                response
            }
        };
        let text = encode_response(&response);
        Metrics::add(&shared.metrics.bytes_tx, text.len() as u64);
        if reader.get_mut().write_all(text.as_bytes()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::normalize_spec;
    use vericomp_core::OptLevel;
    use vericomp_dataflow::fleet;

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vericomp-{tag}-{}.sock", std::process::id()))
    }

    fn spec_of(nodes: std::ops::Range<usize>) -> SweepSpec {
        let suite = fleet::named_suite();
        let spec = SweepSpec::new()
            .nodes(&suite[nodes])
            .levels([OptLevel::Verified, OptLevel::OptFull]);
        normalize_spec(&spec, &MachineConfig::mpc755())
    }

    #[test]
    fn daemon_serves_solo_identical_sweeps_and_shuts_down_cleanly() {
        let socket = socket_path("server-basic");
        let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
        let handle = thread::spawn(move || server.run().expect("serves"));

        let spec = spec_of(0..3);
        let solo = Pipeline::in_memory().run_sweep(&spec).expect("solo");

        let mut client = Client::connect(&socket).expect("connects");
        let served = client.run_sweep(&spec).expect("served");
        assert!(served.verify());
        assert_eq!(served.digest, solo.digest(), "daemon digest ≠ solo digest");
        // a second submission replays entirely from the warm store
        let warm = client.run_sweep(&spec).expect("warm");
        assert_eq!(warm.digest, solo.digest());
        assert!(warm.cells.iter().all(|c| c.cached));
        let stats = client.server_stats().expect("stats");
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.jobs_cached, spec.cell_count() as u64);
        assert!(stats.hit_rate() > 0.0);

        client.shutdown().expect("acknowledged");
        let final_stats = handle.join().expect("run returns");
        assert_eq!(final_stats.requests, 2);
        assert!(!socket.exists(), "socket file must be removed on shutdown");
    }

    /// Reads one response frame off a raw test stream as text.
    fn read_text(reader: &mut BufReader<UnixStream>) -> Option<String> {
        let frame = read_frame(reader).expect("reads")?;
        Some(String::from_utf8(frame).expect("utf-8 frame"))
    }

    #[test]
    fn malformed_frames_get_error_responses_and_the_connection_survives() {
        let socket = socket_path("server-err");
        let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
        let handle = thread::spawn(move || server.run().expect("serves"));

        // hand-rolled garbage frame on a raw stream
        let mut stream = UnixStream::connect(&socket).expect("connects");
        stream
            .write_all(b"vericomp-request 2\nnonsense\nend\n")
            .expect("writes");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let doc = read_text(&mut reader).expect("frame");
        assert!(doc.contains("error "), "garbage must yield an error frame");
        // the same connection still serves a real request afterwards
        let spec = spec_of(0..1);
        let wire = WireSweep::from_spec(&spec, |_| true);
        let text = crate::proto::encode_request(&Request::Sweep(wire)).expect("encodes");
        stream.write_all(text.as_bytes()).expect("writes");
        let doc = read_text(&mut reader).expect("frame");
        let Response::Sweep(served) = crate::proto::decode_response(&doc).expect("decodes") else {
            panic!("expected sweep response");
        };
        assert_eq!(
            served.digest,
            Pipeline::in_memory()
                .run_sweep(&spec)
                .expect("solo")
                .digest()
        );

        let mut client = Client::connect(&socket).expect("connects");
        client.shutdown().expect("acknowledged");
        handle.join().expect("run returns");
    }

    #[test]
    fn version_mismatch_is_refused_cleanly_with_no_partial_batch() {
        let socket = socket_path("server-version");
        let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
        let handle = thread::spawn(move || server.run().expect("serves"));

        // a v1 peer's hello: old header, old sweep body shape
        let mut stream = UnixStream::connect(&socket).expect("connects");
        stream
            .write_all(b"vericomp-request 1\nsweep\nconfig verified 1111111011\nend\n")
            .expect("writes");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let doc = read_text(&mut reader).expect("frame");
        assert!(
            doc.contains("error ")
                && doc.contains("version 1")
                && doc.contains("vericomp-request 2"),
            "v1 hello must get a clean versioned error: {doc}"
        );
        // the connection survived: a v2 request on the same stream works
        let spec = spec_of(0..1);
        let wire = WireSweep::from_spec(&spec, |_| true);
        let text = crate::proto::encode_request(&Request::Sweep(wire)).expect("encodes");
        stream.write_all(text.as_bytes()).expect("writes");
        let doc = read_text(&mut reader).expect("frame");
        assert!(
            matches!(crate::proto::decode_response(&doc), Ok(Response::Sweep(_))),
            "connection must survive the version mismatch"
        );

        // the other direction: a v2 client decoding a v1 server's
        // response header gets the same clean versioned error
        let e = crate::proto::decode_response("vericomp-response 1\nok\nend\n")
            .expect_err("v1 response header");
        assert!(e.0.contains("version 1") && e.0.contains("vericomp-response 2"));

        let mut client = Client::connect(&socket).expect("connects");
        let stats = client.server_stats().expect("stats");
        // exactly the one good sweep was admitted — the refused v1 frame
        // queued nothing
        assert_eq!(stats.requests, 1);
        client.shutdown().expect("acknowledged");
        handle.join().expect("run returns");
    }

    #[test]
    fn negotiated_unit_refs_serve_identical_sweeps_with_zero_uploads() {
        let socket = socket_path("server-need");
        let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
        let handle = thread::spawn(move || server.run().expect("serves"));

        let spec = spec_of(0..3);
        let solo = Pipeline::in_memory().run_sweep(&spec).expect("solo");

        // client A seeds the parse cache
        let mut a = Client::connect(&socket).expect("connects");
        assert_eq!(a.run_sweep(&spec).expect("served").digest, solo.digest());
        let after_a = a.server_stats().expect("stats");
        assert_eq!(after_a.units_uploaded, spec.units().len() as u64);

        // a *fresh* connection negotiates, gets an empty need set, and
        // ships zero bodies — yet its digest is still solo-identical
        let mut b = Client::connect(&socket).expect("connects");
        assert_eq!(b.run_sweep(&spec).expect("served").digest, solo.digest());
        let after_b = b.server_stats().expect("stats");
        assert_eq!(
            after_b.units_uploaded, after_a.units_uploaded,
            "warm client must upload zero unit bodies"
        );
        assert_eq!(
            after_b.units_offered,
            after_a.units_offered + spec.units().len() as u64,
            "fresh connection negotiates every digest once"
        );
        assert_eq!(
            after_b.parse_hits,
            after_a.parse_hits + spec.units().len() as u64
        );
        assert!(after_b.parse_hit_rate() > 0.0);
        assert!(after_b.bytes_rx > 0 && after_b.bytes_tx > 0);

        b.shutdown().expect("acknowledged");
        handle.join().expect("run returns");
    }

    #[test]
    fn concurrent_overlapping_clients_batch_and_stay_deterministic() {
        let socket = socket_path("server-overlap");
        let mut options = ServerOptions::new(&socket);
        options.shards = 4;
        let server = Server::new(&options).expect("binds");
        let handle = thread::spawn(move || server.run().expect("serves"));

        // overlapping unit ranges: cells 2..4 are shared between clients
        let spec_a = spec_of(0..4);
        let spec_b = spec_of(2..6);
        let solo_a = Pipeline::in_memory().run_sweep(&spec_a).expect("solo a");
        let solo_b = Pipeline::in_memory().run_sweep(&spec_b).expect("solo b");

        let sock_a = socket.clone();
        let sa = spec_a.clone();
        let ta = thread::spawn(move || {
            let mut c = Client::connect(&sock_a).expect("connects");
            c.run_sweep(&sa).expect("served")
        });
        let sock_b = socket.clone();
        let sb = spec_b.clone();
        let tb = thread::spawn(move || {
            let mut c = Client::connect(&sock_b).expect("connects");
            c.run_sweep(&sb).expect("served")
        });
        let served_a = ta.join().expect("client a");
        let served_b = tb.join().expect("client b");
        assert_eq!(served_a.digest, solo_a.digest());
        assert_eq!(served_b.digest, solo_b.digest());

        let mut client = Client::connect(&socket).expect("connects");
        let stats = client.server_stats().expect("stats");
        assert_eq!(stats.requests, 2);
        // shared cells compiled at most once per store lifetime: total
        // fresh compiles can't exceed the union of the two specs
        let union_cells = spec_of(0..6).cell_count() as u64;
        assert!(
            stats.jobs_run <= union_cells,
            "shared cells recompiled: {} fresh > {} union",
            stats.jobs_run,
            union_cells
        );
        client.shutdown().expect("acknowledged");
        handle.join().expect("run returns");
    }
}
