//! Structured span tracing: where the wall time of a run actually went.
//!
//! [`PipelineStats`](crate::stats::PipelineStats) answers *how much* time a
//! run spent per stage; this module answers *where* — one [`Span`] per job
//! stage (queue wait, cache lookup, compile, WCET analyze, store insert),
//! nested per-pass spans inside `compile` (via the
//! [`PassObserver`](vericomp_core::PassObserver) hook in `vericomp-core`),
//! and provenance [`SpanKind::Event`]s from the lattice search (generation
//! boundaries, flag flips, admissions, prunings). Collection follows the
//! `StatsCell` pattern: one contention-free [`TraceSink`] per cell, merged
//! into a [`RunTrace`] at the end of the run.
//!
//! Two export formats:
//!
//! * **Chrome trace-event JSON** ([`RunTrace::to_chrome_json`]) — load the
//!   file in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`
//!   to see the run on a timeline, one track per cell index.
//! * **Deterministic text profile** ([`RunTrace::profile`]) — a per-stage
//!   and per-pass table whose *counts* (not times) are digest-stable
//!   across `--jobs` values and cache states of identical work, the same
//!   discipline as `PipelineStats::render_compact`. The `validate` stage
//!   row is derived from the `check-*` pass spans (the validators run
//!   inside `compile`, so a separate stage interval would overlap the
//!   pass spans).

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::hash::{Digest, Hasher};

/// The canonical stage rows of a [`Profile`], in reporting order. Five of
/// the six are recorded as real [`SpanKind::Stage`] intervals; `validate`
/// is derived from the `check-*` pass spans (validators run *inside* the
/// compile stage).
pub const STAGE_NAMES: [&str; 6] = [
    "queue-wait",
    "cache-lookup",
    "compile",
    "validate",
    "analyze",
    "store",
];

/// What a [`Span`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A pipeline job stage (one of [`STAGE_NAMES`], except `validate`).
    Stage,
    /// A compiler pass inside the compile stage (one of
    /// [`vericomp_core::PASS_NAMES`]).
    Pass,
    /// An instantaneous provenance marker (e.g. the search's
    /// `search:admitted`); `dur_ns` is 0.
    Event,
}

impl SpanKind {
    /// The Chrome trace-event category string (`cat` field).
    #[must_use]
    pub fn cat(self) -> &'static str {
        match self {
            SpanKind::Stage => "stage",
            SpanKind::Pass => "pass",
            SpanKind::Event => "event",
        }
    }

    /// Parses a category string back into the kind — the inverse of
    /// [`cat`](SpanKind::cat), used when spans travel over the wire.
    #[must_use]
    pub fn from_cat(cat: &str) -> Option<SpanKind> {
        match cat {
            "stage" => Some(SpanKind::Stage),
            "pass" => Some(SpanKind::Pass),
            "event" => Some(SpanKind::Event),
            _ => None,
        }
    }
}

/// One recorded interval (or instantaneous event) of a run. Timestamps are
/// nanoseconds since the run's epoch (the submission instant of the run,
/// or the search's start for multi-generation traces).
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name: a stage name, a pass name, or an event name.
    pub name: String,
    /// What the span measures.
    pub kind: SpanKind,
    /// The cell index the span belongs to (the Chrome `tid` track).
    pub job: u32,
    /// The process row the span renders under (the Chrome `pid` track):
    /// 1 for spans recorded in this process (the constructors' default),
    /// 2 for server-side spans a client received over the wire — so a
    /// merged `--connect --trace` timeline shows both processes.
    pub pid: u32,
    /// Start, nanoseconds since the run epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for [`SpanKind::Event`]).
    pub dur_ns: u64,
    /// Free-form context, e.g. `unit=alpha config=verified`.
    pub detail: String,
}

impl Span {
    /// A stage interval.
    #[must_use]
    pub fn stage(name: &str, job: u32, ts_ns: u64, dur_ns: u64, detail: &str) -> Span {
        Span {
            name: name.to_owned(),
            kind: SpanKind::Stage,
            job,
            ts_ns,
            dur_ns,
            pid: 1,
            detail: detail.to_owned(),
        }
    }

    /// A per-pass interval nested inside a compile stage.
    #[must_use]
    pub fn pass(name: &str, job: u32, ts_ns: u64, dur_ns: u64, detail: &str) -> Span {
        Span {
            name: name.to_owned(),
            kind: SpanKind::Pass,
            job,
            ts_ns,
            dur_ns,
            pid: 1,
            detail: detail.to_owned(),
        }
    }

    /// An instantaneous provenance event.
    #[must_use]
    pub fn event(name: &str, job: u32, ts_ns: u64, detail: &str) -> Span {
        Span {
            name: name.to_owned(),
            kind: SpanKind::Event,
            job,
            ts_ns,
            dur_ns: 0,
            pid: 1,
            detail: detail.to_owned(),
        }
    }
}

/// Per-cell span collector, the trace twin of
/// [`StatsCell`](crate::stats::StatsCell). The mutex is contention-free by
/// construction: each cell's sink is touched only by that cell's own two
/// jobs, which the job graph orders strictly (stage 2 depends on stage 1),
/// so the lock is never contended — it exists to satisfy `Sync`, not to
/// arbitrate.
#[derive(Debug, Default)]
pub struct TraceSink {
    spans: Mutex<Vec<Span>>,
}

impl TraceSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Records one span.
    pub fn push(&self, span: Span) {
        self.spans.lock().expect("trace sink lock").push(span);
    }

    /// Drains the recorded spans, in recording order.
    #[must_use]
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut *self.spans.lock().expect("trace sink lock"))
    }
}

/// The merged trace of one run (or of a whole multi-generation search).
/// Spans are ordered by (cell index, per-cell recording order), so the
/// *sequence of (kind, name)* pairs is a pure function of the work — only
/// timestamps vary with scheduling.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    spans: Vec<Span>,
}

impl RunTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> RunTrace {
        RunTrace::default()
    }

    /// The spans, in deterministic order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends one span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Appends another trace's spans (used to chain the per-generation
    /// sweeps of a search onto one timeline).
    pub fn merge(&mut self, other: RunTrace) {
        self.spans.extend(other.spans);
    }

    /// Number of spans of one (kind, name).
    #[must_use]
    pub fn count_of(&self, kind: SpanKind, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind && s.name == name)
            .count() as u64
    }

    /// Serializes the trace as Chrome trace-event JSON — an object with a
    /// `traceEvents` array of complete (`"ph": "X"`) events, timestamps in
    /// microseconds. Load the file in Perfetto or `chrome://tracing`;
    /// cells render as `tid` tracks grouped under each span's `pid`
    /// process row (1 = this process, 2 = server-side spans a client
    /// merged in from a `--connect --trace` run).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let us = |ns: u64| ns as f64 / 1e3;
        let mut out = String::with_capacity(self.spans.len() * 128 + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"detail\":\"{}\"}}}}",
                escape_json(&s.name),
                s.kind.cat(),
                us(s.ts_ns),
                us(s.dur_ns),
                s.pid,
                s.job,
                escape_json(&s.detail),
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Aggregates the trace into a [`Profile`]: per-stage rows (all of
    /// [`STAGE_NAMES`], `validate` derived from the `check-*` pass spans),
    /// then per-pass rows in [`vericomp_core::PASS_NAMES`] order, then
    /// event rows sorted by name.
    #[must_use]
    pub fn profile(&self) -> Profile {
        let mut rows = Vec::new();
        for stage in STAGE_NAMES {
            let (count, total_ns) = if stage == "validate" {
                // validators run inside the compile stage; their time is
                // the sum of the check-* pass spans
                self.spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Pass && s.name.starts_with("check-"))
                    .fold((0, 0u64), |(c, t), s| (c + 1, t.saturating_add(s.dur_ns)))
            } else {
                self.sum_of(SpanKind::Stage, stage)
            };
            rows.push(ProfileRow {
                kind: SpanKind::Stage,
                name: stage.to_owned(),
                count,
                total_ns,
            });
        }
        for pass in vericomp_core::PASS_NAMES {
            let (count, total_ns) = self.sum_of(SpanKind::Pass, pass);
            rows.push(ProfileRow {
                kind: SpanKind::Pass,
                name: pass.to_owned(),
                count,
                total_ns,
            });
        }
        let mut event_names: Vec<&str> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Event)
            .map(|s| s.name.as_str())
            .collect();
        event_names.sort_unstable();
        event_names.dedup();
        for name in event_names {
            let (count, total_ns) = self.sum_of(SpanKind::Event, name);
            rows.push(ProfileRow {
                kind: SpanKind::Event,
                name: name.to_owned(),
                count,
                total_ns,
            });
        }
        Profile { rows }
    }

    fn sum_of(&self, kind: SpanKind, name: &str) -> (u64, u64) {
        self.spans
            .iter()
            .filter(|s| s.kind == kind && s.name == name)
            .fold((0, 0u64), |(c, t), s| (c + 1, t.saturating_add(s.dur_ns)))
    }
}

/// One row of a [`Profile`]: a (kind, name) bucket with its span count and
/// summed duration.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// The bucket's span kind (the `validate` row reports as a stage).
    pub kind: SpanKind,
    /// Stage, pass, or event name.
    pub name: String,
    /// Number of spans in the bucket — deterministic across job counts.
    pub count: u64,
    /// Summed duration in nanoseconds — timing, **not** deterministic.
    pub total_ns: u64,
}

/// The aggregated per-stage / per-pass / per-event table of a [`RunTrace`],
/// in canonical row order: [`STAGE_NAMES`], then
/// [`vericomp_core::PASS_NAMES`], then event names sorted lexicographically.
#[derive(Debug, Clone)]
pub struct Profile {
    rows: Vec<ProfileRow>,
}

impl Profile {
    /// The rows, in canonical order. Stage and pass rows are always all
    /// present (count 0 when nothing ran); event rows only when observed.
    #[must_use]
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// The count of one (kind, name) row, 0 when absent.
    #[must_use]
    pub fn count_of(&self, kind: SpanKind, name: &str) -> u64 {
        self.rows
            .iter()
            .find(|r| r.kind == kind && r.name == name)
            .map_or(0, |r| r.count)
    }

    /// Digest of the **counters only** — (kind, name, count) per row in
    /// canonical order, durations excluded. Identical work yields an
    /// identical digest at any `--jobs` value and cache temperature *of
    /// the same cache state*; the determinism gates and the CI trace smoke
    /// compare exactly this.
    ///
    /// `analyze:*` event rows are excluded: they count session-analyzer
    /// fact-cache hits and misses, and which parallel cell first analyzes
    /// a shared callee is a scheduling outcome, not a property of the
    /// work. The rows still render and export; they just don't gate.
    #[must_use]
    pub fn counter_digest(&self) -> Digest {
        let mut h = Hasher::new();
        for row in &self.rows {
            if row.kind == SpanKind::Event && row.name.starts_with("analyze:") {
                continue;
            }
            h.str(row.kind.cat()).str(&row.name).u64(row.count);
        }
        h.finish()
    }

    /// The store hit rate derivable from the counters: every job performs
    /// one `cache-lookup` stage, and only misses go on to a `compile`
    /// stage, so `(lookups - compiles) / lookups` is the fraction served
    /// from the artifact store. `None` when the trace has no lookups (an
    /// empty run, or a trace of search events only).
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.count_of(SpanKind::Stage, "cache-lookup");
        if lookups == 0 {
            return None;
        }
        let compiles = self.count_of(SpanKind::Stage, "compile");
        Some((lookups.saturating_sub(compiles)) as f64 / lookups as f64)
    }

    /// The aligned text table, one `profile:`-prefixed line per row, then
    /// the derived hit-rate line, then the counter-digest footer (always
    /// last — the CI smoke greps for it as the final `profile:` line) —
    /// greppable the same way the `pipeline:`/`search:` lines are.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let ms = row.total_ns as f64 / 1e6;
            let _ = writeln!(
                out,
                "profile: {:<5} {:<26} {:>8} spans {:>10.2} ms",
                row.kind.cat(),
                row.name,
                row.count,
                ms,
            );
        }
        if let Some(rate) = self.cache_hit_rate() {
            let _ = writeln!(out, "profile: cache hit rate: {:.1}%", rate * 100.0);
        }
        let _ = writeln!(out, "profile: counter digest: {}", self.counter_digest());
        out
    }

    /// Single-line JSON object: the rows (with counts and summed
    /// durations) plus the counter digest — the per-stage breakdown the
    /// bench drivers embed into `BENCH_*.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"kind\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
                row.kind.cat(),
                escape_json(&row.name),
                row.count,
                row.total_ns,
            );
        }
        let _ = write!(
            out,
            "], \"cache_hit_rate\": {}, \"counter_digest\": \"{}\"}}",
            self.cache_hit_rate()
                .map_or("null".to_owned(), |r| format!("{r:.6}")),
            self.counter_digest()
        );
        out
    }
}

/// Minimal JSON string escaping for the hand-rolled exports (names and
/// details are internal ASCII identifiers; quotes/backslashes/control
/// bytes are escaped defensively).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        let mut t = RunTrace::new();
        t.push(Span::stage(
            "queue-wait",
            0,
            0,
            100,
            "unit=a config=verified",
        ));
        t.push(Span::stage(
            "cache-lookup",
            0,
            100,
            50,
            "unit=a config=verified",
        ));
        t.push(Span::stage(
            "compile",
            0,
            150,
            1000,
            "unit=a config=verified",
        ));
        t.push(Span::pass("lower", 0, 150, 200, "unit=a config=verified"));
        t.push(Span::pass(
            "constprop",
            0,
            350,
            100,
            "unit=a config=verified",
        ));
        t.push(Span::pass(
            "check-alloc",
            0,
            450,
            300,
            "unit=a config=verified",
        ));
        t.push(Span::stage(
            "analyze",
            0,
            1200,
            400,
            "unit=a config=verified",
        ));
        t.push(Span::stage("store", 0, 1600, 20, "unit=a config=verified"));
        t.push(Span::event("search:admitted", 0, 1700, "unit=a flag=cse"));
        t
    }

    #[test]
    fn chrome_export_is_complete_events_with_all_required_fields() {
        let json = sample_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // every event carries ph/ts/dur/name (the CI smoke re-validates
        // this shape on real output with a JSON parser)
        let events = json.matches("{\"name\":").count();
        assert_eq!(events, 9);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 9);
        assert_eq!(json.matches("\"ts\":").count(), 9);
        assert_eq!(json.matches("\"dur\":").count(), 9);
        // ns -> us conversion keeps sub-microsecond resolution
        assert!(json.contains("\"ts\":0.150"), "{json}");
        assert!(json.contains("\"dur\":0.020"), "{json}");
    }

    #[test]
    fn profile_has_all_stage_and_pass_rows_and_derives_validate() {
        let profile = sample_trace().profile();
        for stage in STAGE_NAMES {
            assert!(
                profile
                    .rows()
                    .iter()
                    .any(|r| r.kind == SpanKind::Stage && r.name == stage),
                "missing stage row {stage}"
            );
        }
        for pass in vericomp_core::PASS_NAMES {
            assert!(
                profile
                    .rows()
                    .iter()
                    .any(|r| r.kind == SpanKind::Pass && r.name == pass),
                "missing pass row {pass}"
            );
        }
        // validate is the aggregate of the check-* pass spans
        let validate = profile
            .rows()
            .iter()
            .find(|r| r.kind == SpanKind::Stage && r.name == "validate")
            .expect("validate row");
        assert_eq!(validate.count, 1);
        assert_eq!(validate.total_ns, 300);
        assert_eq!(profile.count_of(SpanKind::Pass, "constprop"), 1);
        assert_eq!(profile.count_of(SpanKind::Pass, "cse"), 0);
        assert_eq!(profile.count_of(SpanKind::Event, "search:admitted"), 1);
    }

    #[test]
    fn counter_digest_ignores_times_but_not_counts() {
        let a = sample_trace();
        // same counts, different timings
        let mut b = RunTrace::new();
        for s in a.spans() {
            b.push(Span {
                ts_ns: s.ts_ns * 7 + 13,
                dur_ns: s.dur_ns * 3 + 1,
                ..s.clone()
            });
        }
        assert_eq!(
            a.profile().counter_digest(),
            b.profile().counter_digest(),
            "timing leaked into the counter digest"
        );
        // one extra span must change it
        b.push(Span::stage("compile", 1, 0, 1, ""));
        assert_ne!(a.profile().counter_digest(), b.profile().counter_digest());
    }

    #[test]
    fn counter_digest_ignores_analyzer_reuse_events_but_renders_them() {
        let a = sample_trace();
        let mut b = sample_trace();
        // fact-cache reuse counts depend on cell scheduling; they must
        // not perturb the determinism gate...
        b.push(Span::event("analyze:reuse", 0, 1700, "unit=a"));
        b.push(Span::event("analyze:fixpoint", 0, 1700, "unit=a"));
        assert_eq!(a.profile().counter_digest(), b.profile().counter_digest());
        // ...but they still show up in the rendered profile and JSON
        assert!(b
            .profile()
            .render()
            .contains("profile: event analyze:reuse"));
        assert!(b.profile().to_json().contains("analyze:fixpoint"));
        // a non-analyze event still gates
        b.push(Span::event("search:pruned", 0, 1700, ""));
        assert_ne!(a.profile().counter_digest(), b.profile().counter_digest());
    }

    #[test]
    fn render_emits_one_greppable_line_per_row_plus_the_digest() {
        let text = sample_trace().profile().render();
        for stage in STAGE_NAMES {
            assert!(
                text.contains(&format!("profile: stage {stage}")),
                "missing `profile: stage {stage}` in:\n{text}"
            );
        }
        assert!(text.contains("profile: pass  lower"));
        assert!(text.contains("profile: event search:admitted"));
        assert!(text.contains("profile: cache hit rate: 0.0%"), "{text}");
        assert!(
            text.lines()
                .last()
                .expect("footer")
                .starts_with("profile: counter digest: "),
            "counter digest must stay the last profile line"
        );
    }

    #[test]
    fn cache_hit_rate_is_lookups_minus_compiles_over_lookups() {
        // the sample trace is one cold job: 1 lookup, 1 compile -> 0%
        let cold = sample_trace().profile();
        assert_eq!(cold.cache_hit_rate(), Some(0.0));

        // two more lookups that never reach compile are hits: 2/3
        let mut warm = sample_trace();
        warm.push(Span::stage("cache-lookup", 1, 0, 10, "unit=b"));
        warm.push(Span::stage("cache-lookup", 2, 0, 10, "unit=c"));
        let rate = warm.profile().cache_hit_rate().expect("rate");
        assert!((rate - 2.0 / 3.0).abs() < 1e-12, "{rate}");
        assert!(warm
            .profile()
            .render()
            .contains("profile: cache hit rate: 66.7%"));

        // no lookups at all -> no rate, no line
        let empty = RunTrace::new().profile();
        assert_eq!(empty.cache_hit_rate(), None);
        assert!(!empty.render().contains("cache hit rate"));
        assert!(empty.to_json().contains("\"cache_hit_rate\": null"));
    }

    #[test]
    fn profile_json_is_single_line_and_escaped() {
        let json = sample_trace().profile().to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"counter_digest\": \""));
        assert!(json.contains("\"cache_hit_rate\": 0.000000"));
        assert!(json.contains("{\"kind\": \"stage\", \"name\": \"compile\""));
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn sink_drains_in_recording_order_and_merge_chains_traces() {
        let sink = TraceSink::new();
        sink.push(Span::stage("compile", 3, 10, 5, ""));
        sink.push(Span::stage("analyze", 3, 20, 5, ""));
        let spans = sink.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "compile");
        assert_eq!(spans[1].name, "analyze");
        assert!(sink.take().is_empty(), "take drains");

        let mut a = RunTrace::new();
        a.push(Span::stage("compile", 0, 0, 1, ""));
        let mut b = RunTrace::new();
        b.push(Span::stage("analyze", 0, 1, 1, ""));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.count_of(SpanKind::Stage, "analyze"), 1);
    }
}
