//! The compilation service: schedulable, cacheable compile→analyze jobs.
//!
//! A [`Pipeline`] owns a work-stealing [`ThreadPool`](crate::pool::ThreadPool)
//! and an [`ArtifactStore`]. Work arrives as [`CompileUnit`]s — (source
//! translation unit, entry, pass configuration) triples — and each unit
//! becomes a two-stage chain in a [`JobGraph`]: a *compile* job (cache
//! lookup, then compile + translation-validate on a miss) feeding an
//! *analyze* job (WCET analysis + cache insert). Chains of different units
//! are independent, so the stages of separate nodes overlap freely while
//! each unit's stages stay ordered.
//!
//! **Incrementality falls out of content addressing**: there is no
//! explicit dirty-bit protocol. A changed node changes its generated
//! source, which changes its [`artifact_key`], which misses; every
//! untouched node hits and replays its stored verdict and WCET report.
//! The dirty *cone* is exactly the set of units whose key changed —
//! shared-global rewiring shows up in the consumer node's generated
//! source, so consumers of a changed signal miss too.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vericomp_arch::MachineConfig;
use vericomp_core::{CompileError, Compiler, OptLevel, PassConfig};
use vericomp_dataflow::{Application, ApplicationError, Node};
use vericomp_minic::ast::Program as SrcProgram;
use vericomp_wcet::AnalysisError;

use crate::hash::{Digest, Hasher};
use crate::pool::{JobGraph, ThreadPool};
use crate::stats::{saturating_nanos, PipelineStats, StatsCell};
use crate::store::{artifact_key, Artifact, ArtifactStore, Verdict};
use crate::trace::{RunTrace, Span, TraceSink};

/// Configuration of a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads; `0` selects the machine's available parallelism.
    pub jobs: usize,
    /// Artifact-cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Target machine the units compile for (part of every cache key).
    pub machine: MachineConfig,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 0,
            cache_dir: None,
            machine: MachineConfig::mpc755(),
        }
    }
}

impl PipelineOptions {
    /// The conventional persistent cache location, `target/vericomp-cache/`.
    #[must_use]
    pub fn default_cache_dir() -> PathBuf {
        PathBuf::from("target/vericomp-cache")
    }

    /// A validating builder over the same fields.
    #[must_use]
    pub fn builder() -> PipelineOptionsBuilder {
        PipelineOptionsBuilder {
            options: PipelineOptions::default(),
        }
    }
}

/// Hard ceiling on `jobs`: beyond this, a typo (e.g. `--jobs 80000`)
/// would exhaust address space on thread stacks, not add parallelism.
pub const MAX_JOBS: usize = 512;

/// Rejected [`PipelineOptionsBuilder`] settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionsError {
    /// `jobs` exceeds [`MAX_JOBS`].
    TooManyJobs(usize),
    /// The cache directory is the empty path.
    EmptyCacheDir,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::TooManyJobs(n) => {
                write!(f, "jobs = {n} exceeds the ceiling of {MAX_JOBS}")
            }
            OptionsError::EmptyCacheDir => write!(f, "cache directory must not be empty"),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Builder for [`PipelineOptions`] that validates its settings at
/// [`build`](PipelineOptionsBuilder::build) time instead of letting bad
/// values surface as thread-spawn or I/O failures deep in a run.
#[derive(Debug, Clone)]
pub struct PipelineOptionsBuilder {
    options: PipelineOptions,
}

impl PipelineOptionsBuilder {
    /// Worker threads; `0` (the default) selects the machine's available
    /// parallelism.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// Persist the artifact cache under `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.options.cache_dir = Some(dir.into());
        self
    }

    /// Persist the artifact cache under the conventional
    /// [`PipelineOptions::default_cache_dir`] location.
    #[must_use]
    pub fn default_cache_dir(self) -> Self {
        self.cache_dir(PipelineOptions::default_cache_dir())
    }

    /// Default target machine of the pipeline (sweeps may override it per
    /// cell through their machine axis).
    #[must_use]
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.options.machine = machine;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// [`OptionsError`] on a `jobs` count above [`MAX_JOBS`] or an empty
    /// cache-directory path.
    pub fn build(self) -> Result<PipelineOptions, OptionsError> {
        if self.options.jobs > MAX_JOBS {
            return Err(OptionsError::TooManyJobs(self.options.jobs));
        }
        if let Some(dir) = &self.options.cache_dir {
            if dir.as_os_str().is_empty() {
                return Err(OptionsError::EmptyCacheDir);
            }
        }
        Ok(self.options)
    }
}

/// One schedulable unit of work: compile `source`'s `entry` under
/// `passes`, then bound its WCET.
#[derive(Debug, Clone)]
pub struct CompileUnit {
    /// Display name (node name, application name, …).
    pub name: String,
    /// Configuration label (e.g. `verified`), part of the artifact.
    pub label: String,
    /// The MiniC translation unit (shared — sweeps cross one unit with
    /// many configs and machines without cloning the AST).
    pub source: Arc<SrcProgram>,
    /// Entry-point function.
    pub entry: String,
    /// Pass selection the unit compiles under.
    pub passes: PassConfig,
}

impl CompileUnit {
    /// Starts building a unit. Select the source with one of
    /// [`node`](CompileUnitBuilder::node),
    /// [`application`](CompileUnitBuilder::application) or
    /// [`source`](CompileUnitBuilder::source), then the configuration with
    /// [`level`](CompileUnitBuilder::level) or
    /// [`passes`](CompileUnitBuilder::passes) (+
    /// [`label`](CompileUnitBuilder::label)).
    ///
    /// ```
    /// # use vericomp_pipeline::CompileUnit;
    /// # use vericomp_core::OptLevel;
    /// # use vericomp_dataflow::fleet;
    /// let node = &fleet::named_suite()[0];
    /// let unit = CompileUnit::builder().node(node).level(OptLevel::Verified).build();
    /// assert_eq!(unit.label, "verified");
    /// ```
    #[must_use]
    pub fn builder() -> CompileUnitBuilder {
        CompileUnitBuilder {
            name: None,
            label: None,
            source: None,
            entry: None,
            passes: PassConfig::for_level(OptLevel::Verified),
        }
    }
}

/// Builder for [`CompileUnit`]: pick a source, a pass selection, and a
/// label, in any order.
#[derive(Debug, Clone)]
pub struct CompileUnitBuilder {
    name: Option<String>,
    label: Option<String>,
    source: Option<SrcProgram>,
    entry: Option<String>,
    passes: PassConfig,
}

impl CompileUnitBuilder {
    /// Compile a dataflow node (name, generated source and entry point all
    /// come from the node).
    #[must_use]
    pub fn node(mut self, node: &Node) -> Self {
        self.name = Some(node.name().to_owned());
        self.source = Some(node.to_minic());
        self.entry = Some(node.step_name().to_owned());
        self
    }

    /// Compile a whole linked [`Application`] image.
    ///
    /// # Errors
    ///
    /// [`ApplicationError`] from linking the application's translation
    /// unit.
    pub fn application(mut self, app: &Application) -> Result<Self, ApplicationError> {
        self.name = Some(app.name().to_owned());
        self.source = Some(app.to_minic()?);
        self.entry = Some(app.step_name().to_owned());
        Ok(self)
    }

    /// Compile a raw MiniC translation unit.
    #[must_use]
    pub fn source(mut self, name: &str, source: SrcProgram, entry: &str) -> Self {
        self.name = Some(name.to_owned());
        self.source = Some(source);
        self.entry = Some(entry.to_owned());
        self
    }

    /// Compile under an [`OptLevel`] preset; the label defaults to the
    /// level's name unless [`label`](Self::label) overrides it.
    #[must_use]
    pub fn level(mut self, level: OptLevel) -> Self {
        self.passes = PassConfig::for_level(level);
        self.label.get_or_insert_with(|| level.to_string());
        self
    }

    /// Compile under an explicit pass selection.
    #[must_use]
    pub fn passes(mut self, passes: &PassConfig) -> Self {
        self.passes = *passes;
        self
    }

    /// Configuration label (part of the artifact's display identity).
    #[must_use]
    pub fn label(mut self, label: &str) -> Self {
        self.label = Some(label.to_owned());
        self
    }

    /// Override the entry-point function.
    #[must_use]
    pub fn entry(mut self, entry: &str) -> Self {
        self.entry = Some(entry.to_owned());
        self
    }

    /// Finishes the unit.
    ///
    /// # Panics
    ///
    /// Panics when no source was selected ([`node`](Self::node),
    /// [`application`](Self::application) or [`source`](Self::source)) —
    /// that is a driver bug, not input-dependent.
    #[must_use]
    pub fn build(self) -> CompileUnit {
        let source = self.source.expect(
            "CompileUnit::builder(): select a source with .node()/.application()/.source()",
        );
        CompileUnit {
            name: self.name.expect("source selection sets the name"),
            label: self.label.unwrap_or_else(|| "verified".to_owned()),
            source: Arc::new(source),
            entry: self.entry.expect("source selection sets the entry"),
            passes: self.passes,
        }
    }
}

/// How one unit was produced.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Unit display name.
    pub name: String,
    /// Configuration label.
    pub label: String,
    /// Whether the artifact came from the cache (verdict replayed).
    pub cached: bool,
    /// The validated artifact: binary + verdict + WCET report.
    pub artifact: Arc<Artifact>,
}

/// Result of one pipeline run: per-unit outcomes in submission order plus
/// run metrics.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Outcomes, in the order the units were submitted.
    pub outcomes: Vec<UnitOutcome>,
    /// Run metrics.
    pub stats: PipelineStats,
}

impl FleetResult {
    /// A digest of every unit's outputs, in submission order — equal
    /// digests mean bit-identical binaries, annotation tables and WCET
    /// bounds, which is how the determinism gates compare serial and
    /// parallel builds.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        for o in &self.outcomes {
            h.str(&o.name).str(&o.label);
            let d = o.artifact.output_digest();
            h.u64(d.0 as u64).u64((d.0 >> 64) as u64);
        }
        h.finish()
    }
}

/// Errors of a pipeline run. The first failing unit wins; the run still
/// drains (no job is left queued).
#[derive(Debug)]
pub enum PipelineError {
    /// A unit failed to compile (including translation-validator
    /// rejections — nothing is cached for it).
    Compile {
        /// Unit display name.
        unit: String,
        /// The underlying compiler error.
        error: CompileError,
    },
    /// A unit compiled but its WCET analysis failed.
    Analyze {
        /// Unit display name.
        unit: String,
        /// The underlying analysis error.
        error: AnalysisError,
    },
    /// The artifact cache could not be read or written.
    Cache(io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile { unit, error } => write!(f, "{unit}: compile: {error}"),
            PipelineError::Analyze { unit, error } => write!(f, "{unit}: analyze: {error}"),
            PipelineError::Cache(e) => write!(f, "artifact cache: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The parallel compilation service.
#[derive(Debug)]
pub struct Pipeline {
    pool: ThreadPool,
    store: Arc<ArtifactStore>,
    machine: MachineConfig,
    /// One WCET analyzer session shared by every run: its hash-cons arena
    /// pool and per-function fact cache stay warm across batches (the
    /// daemon keeps one `Pipeline` alive per store for exactly this).
    analyzer: Arc<vericomp_wcet::Analyzer>,
}

impl Pipeline {
    /// Builds a pipeline from options.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cache`] when the cache directory cannot be created.
    pub fn new(options: &PipelineOptions) -> Result<Pipeline, PipelineError> {
        let store = match &options.cache_dir {
            Some(dir) => ArtifactStore::persistent(dir).map_err(PipelineError::Cache)?,
            None => ArtifactStore::in_memory(),
        };
        Ok(Pipeline {
            pool: ThreadPool::new(options.jobs),
            store: Arc::new(store),
            machine: options.machine.clone(),
            analyzer: Arc::new(vericomp_wcet::Analyzer::default()),
        })
    }

    /// Builds a pipeline over a caller-owned store. The daemon uses this
    /// to run every batch against its one warm, sharded store;
    /// `options.cache_dir` is ignored (the store decides persistence).
    #[must_use]
    pub fn with_store(options: &PipelineOptions, store: Arc<ArtifactStore>) -> Pipeline {
        Pipeline {
            pool: ThreadPool::new(options.jobs),
            store,
            machine: options.machine.clone(),
            analyzer: Arc::new(vericomp_wcet::Analyzer::default()),
        }
    }

    /// An in-memory pipeline with default parallelism (the drop-in for
    /// drivers that previously compiled serially).
    #[must_use]
    pub fn in_memory() -> Pipeline {
        Pipeline::new(&PipelineOptions::default()).expect("in-memory pipeline cannot fail")
    }

    /// Worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.pool.threads()
    }

    /// The artifact store.
    #[must_use]
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The target machine configuration.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The WCET analyzer session backing this pipeline. Its cumulative
    /// [`vericomp_wcet::AnalyzerStats`] expose fact-cache reuse across
    /// every run this pipeline executed.
    #[must_use]
    pub fn analyzer(&self) -> &vericomp_wcet::Analyzer {
        &self.analyzer
    }

    /// Runs a set of fully-specified cells (unit + target machine) on the
    /// pool and returns per-cell outcomes **in submission order** plus the
    /// aggregate run stats and the run's span trace. This is the one
    /// engine every public entry point funnels through.
    ///
    /// `epoch` anchors every span timestamp: single sweeps pass their own
    /// submission instant, the lattice search passes one search-wide epoch
    /// so all generations land on a single timeline.
    pub(crate) fn run_cells(
        &self,
        cells: Vec<CellSpec>,
        epoch: Instant,
    ) -> Result<(Vec<CellOutcome>, PipelineStats, RunTrace), PipelineError> {
        enum Stage1 {
            Hit(Arc<Artifact>),
            Fresh(Digest, vericomp_arch::Program),
            Failed,
        }

        /// Observer buffering (name, start, took) per compiled unit; the
        /// offsets are rebased onto the compile span after the fact.
        struct PassTimes(Vec<(&'static str, Duration, Duration)>);
        impl vericomp_core::PassObserver for PassTimes {
            fn pass(&mut self, name: &'static str, start: Duration, took: Duration) {
                self.0.push((name, start, took));
            }
        }

        let submitted = Instant::now();
        let since_epoch = move |at: Instant| saturating_nanos(at.saturating_duration_since(epoch));
        let n = cells.len();
        // one collector per cell, so sweeps can report per-cell stage
        // times; the run aggregate is their merge
        let stats: Arc<Vec<StatsCell>> = Arc::new((0..n).map(|_| StatsCell::new()).collect());
        // same pattern for spans: each sink is touched only by its own
        // cell's two (strictly ordered) jobs, so collection is
        // contention-free
        let sinks: Arc<Vec<TraceSink>> = Arc::new((0..n).map(|_| TraceSink::new()).collect());
        let slots: Arc<Vec<Mutex<Option<(Stage1, Instant)>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let outcomes: Arc<Vec<Mutex<Option<UnitOutcome>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let first_error: Arc<Mutex<Option<PipelineError>>> = Arc::new(Mutex::new(None));

        let mut graph = JobGraph::new();
        for (i, cell) in cells.into_iter().enumerate() {
            let CellSpec {
                unit,
                canonical,
                machine,
            } = cell;
            let detail = format!("unit={} config={}", unit.name, unit.label);
            let unit = Arc::new(unit);
            let store = Arc::clone(&self.store);
            let stats1 = Arc::clone(&stats);
            let sinks1 = Arc::clone(&sinks);
            let slots1 = Arc::clone(&slots);
            let errs1 = Arc::clone(&first_error);
            let unit1 = Arc::clone(&unit);
            let detail1 = detail.clone();
            // Stage 1: cache lookup, compile + validate on a miss. The
            // machine digest is part of `key`, so cells targeting
            // different machines never alias in the store.
            let compile = graph.add(&[], move || {
                let job = i as u32;
                let job_start = Instant::now();
                sinks1[i].push(Span::stage(
                    "queue-wait",
                    job,
                    since_epoch(submitted),
                    saturating_nanos(job_start.saturating_duration_since(submitted)),
                    &detail1,
                ));
                // the memoized canonical text *is* the key material: no
                // per-cell pretty-print on either the hit or miss path
                let key = artifact_key(&canonical, &unit1.entry, &unit1.passes, &machine);
                let t = Instant::now();
                let hit = store.lookup(key, &machine);
                let looked = t.elapsed();
                stats1[i].add_store(looked);
                sinks1[i].push(Span::stage(
                    "cache-lookup",
                    job,
                    since_epoch(t),
                    saturating_nanos(looked),
                    &detail1,
                ));
                let stage = match hit {
                    Some(artifact) => {
                        stats1[i].count_cached();
                        Stage1::Hit(artifact)
                    }
                    None => {
                        let t = Instant::now();
                        let mut pass_times = PassTimes(Vec::new());
                        let compiled = Compiler::with_config(OptLevel::Verified, machine)
                            .compile_with_passes_observed(
                                &unit1.source,
                                &unit1.entry,
                                &unit1.passes,
                                &mut pass_times,
                            );
                        let took = t.elapsed();
                        stats1[i].add_compile(took);
                        let base = since_epoch(t);
                        sinks1[i].push(Span::stage(
                            "compile",
                            job,
                            base,
                            saturating_nanos(took),
                            &detail1,
                        ));
                        for (name, start, dur) in pass_times.0 {
                            sinks1[i].push(Span::pass(
                                name,
                                job,
                                base.saturating_add(saturating_nanos(start)),
                                saturating_nanos(dur),
                                &detail1,
                            ));
                        }
                        match compiled {
                            Ok(program) => Stage1::Fresh(key, program),
                            Err(error) => {
                                errs1.lock().expect("error lock").get_or_insert(
                                    PipelineError::Compile {
                                        unit: unit1.name.clone(),
                                        error,
                                    },
                                );
                                Stage1::Failed
                            }
                        }
                    }
                };
                *slots1[i].lock().expect("slot lock") = Some((stage, Instant::now()));
            });
            let stats2 = Arc::clone(&stats);
            let sinks2 = Arc::clone(&sinks);
            let slots2 = Arc::clone(&slots);
            let outcomes2 = Arc::clone(&outcomes);
            let errs2 = Arc::clone(&first_error);
            let store2 = Arc::clone(&self.store);
            let analyzer2 = Arc::clone(&self.analyzer);
            // Stage 2: WCET analysis + cache insert (fresh units only).
            // Insertion happens strictly after stage 1 succeeded, i.e.
            // after the translation validators accepted the compilation.
            graph.add(&[compile], move || {
                let job = i as u32;
                let (stage, stage1_done) = slots2[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("stage 1 ran");
                let job_start = Instant::now();
                sinks2[i].push(Span::stage(
                    "queue-wait",
                    job,
                    since_epoch(stage1_done),
                    saturating_nanos(job_start.saturating_duration_since(stage1_done)),
                    &detail,
                ));
                let outcome = match stage {
                    Stage1::Failed => return,
                    Stage1::Hit(artifact) => UnitOutcome {
                        name: unit.name.clone(),
                        label: unit.label.clone(),
                        cached: true,
                        artifact,
                    },
                    Stage1::Fresh(key, program) => {
                        let t = Instant::now();
                        let analyzed = analyzer2
                            .analyze(&vericomp_wcet::AnalysisRequest::new(&program, &unit.entry));
                        let took = t.elapsed();
                        stats2[i].add_analyze(took);
                        let base = since_epoch(t);
                        sinks2[i].push(Span::stage(
                            "analyze",
                            job,
                            base,
                            saturating_nanos(took),
                            &detail,
                        ));
                        let report = match analyzed {
                            Ok(analysis) => {
                                // one provenance event per function body the
                                // session analyzer ran its fixpoints on, and
                                // one per body replayed from the fact cache
                                for _ in 0..analysis.functions_analyzed {
                                    sinks2[i].push(Span::event(
                                        "analyze:fixpoint",
                                        job,
                                        base,
                                        &detail,
                                    ));
                                }
                                for _ in 0..analysis.functions_reused {
                                    sinks2[i].push(Span::event(
                                        "analyze:reuse",
                                        job,
                                        base,
                                        &detail,
                                    ));
                                }
                                analysis.into_report()
                            }
                            Err(error) => {
                                errs2.lock().expect("error lock").get_or_insert(
                                    PipelineError::Analyze {
                                        unit: unit.name.clone(),
                                        error,
                                    },
                                );
                                return;
                            }
                        };
                        stats2[i].count_run();
                        let artifact = Artifact {
                            key,
                            entry: unit.entry.clone(),
                            label: unit.label.clone(),
                            program,
                            verdict: Verdict::from_passes(&unit.passes),
                            report,
                        };
                        let t = Instant::now();
                        let inserted = store2.insert(artifact);
                        let took = t.elapsed();
                        stats2[i].add_store(took);
                        sinks2[i].push(Span::stage(
                            "store",
                            job,
                            since_epoch(t),
                            saturating_nanos(took),
                            &detail,
                        ));
                        match inserted {
                            Ok(artifact) => UnitOutcome {
                                name: unit.name.clone(),
                                label: unit.label.clone(),
                                cached: false,
                                artifact,
                            },
                            Err(error) => {
                                errs2
                                    .lock()
                                    .expect("error lock")
                                    .get_or_insert(PipelineError::Cache(error));
                                return;
                            }
                        }
                    }
                };
                *outcomes2[i].lock().expect("outcome lock") = Some(outcome);
            });
        }
        graph.run(&self.pool);

        if let Some(error) = first_error.lock().expect("error lock").take() {
            return Err(error);
        }
        let wall = submitted.elapsed();
        let mut aggregate = PipelineStats::default();
        let cell_outcomes: Vec<CellOutcome> = outcomes
            .iter()
            .zip(stats.iter())
            .map(|(slot, cell_stats)| {
                // per-cell wall is the cell's summed stage time (the cells
                // overlap, so a single clock would be meaningless per cell)
                let s = cell_stats.snapshot(Duration::default());
                let stage_sum = Duration::from_nanos(s.compile_ns + s.analyze_ns + s.store_ns);
                let stats = cell_stats.snapshot(stage_sum);
                aggregate.merge(&stats);
                CellOutcome {
                    outcome: slot
                        .lock()
                        .expect("outcome lock")
                        .take()
                        .expect("every unit succeeded"),
                    stats,
                }
            })
            .collect();
        // the merge maxed per-cell walls (summed stage times); the run
        // aggregate reports the real end-to-end clock
        aggregate.wall_ns = saturating_nanos(wall);
        // drain the sinks in cell order: span order becomes (cell index,
        // recording order), a pure function of the work
        let mut trace = RunTrace::new();
        for sink in sinks.iter() {
            for span in sink.take() {
                trace.push(span);
            }
        }
        Ok((cell_outcomes, aggregate, trace))
    }
}

/// One fully-specified engine cell: a unit, its memoized canonical
/// source text (the cache-key material — computed once per unit, shared
/// across every cell the unit appears in), and the machine it targets.
#[derive(Debug, Clone)]
pub(crate) struct CellSpec {
    pub(crate) unit: CompileUnit,
    pub(crate) canonical: Arc<String>,
    pub(crate) machine: MachineConfig,
}

/// One engine cell's result: the outcome plus that cell's own stats
/// (`wall_ns` = the cell's summed stage time, not a wall clock).
#[derive(Debug, Clone)]
pub(crate) struct CellOutcome {
    pub(crate) outcome: UnitOutcome,
    pub(crate) stats: PipelineStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_dataflow::fleet;

    fn suite_prefix(n: usize) -> Vec<Node> {
        let mut nodes = fleet::named_suite();
        nodes.truncate(n);
        nodes
    }

    #[test]
    fn fleet_compiles_and_matches_serial_compiler() {
        let nodes = suite_prefix(6);
        let pipeline = Pipeline::in_memory();
        let result = pipeline
            .run_sweep(&crate::sweep::SweepSpec::new().nodes(&nodes))
            .expect("fleet compiles");
        assert_eq!(result.cell_count(), nodes.len());
        assert_eq!(result.stats.jobs_run, nodes.len() as u64);
        assert_eq!(result.stats.jobs_cached, 0);
        for (node, cell) in nodes.iter().zip(result.cells()) {
            assert_eq!(cell.unit, node.name());
            assert!(!cell.outcome.cached);
            let serial = Compiler::new(OptLevel::Verified)
                .compile(&node.to_minic(), "step")
                .expect("serial compiles");
            assert_eq!(
                serial.encode_text(),
                cell.outcome.artifact.program.encode_text()
            );
            let report = vericomp_wcet::Analyzer::default()
                .analyze(&vericomp_wcet::AnalysisRequest::new(&serial, "step"))
                .expect("serial analyzes")
                .report;
            assert_eq!(report.wcet, cell.outcome.artifact.report.wcet);
        }
    }

    /// The session analyzer is shared across runs: its fact cache warms up,
    /// and bounds stay identical to a cold analyzer session's.
    #[test]
    fn session_analyzer_reuses_facts_without_changing_bounds() {
        let nodes = suite_prefix(5);
        let pipeline = Pipeline::in_memory();
        let passes = PassConfig::for_level(OptLevel::OptFull);
        let spec = crate::sweep::SweepSpec::new()
            .nodes(&nodes)
            .config("opt-full", &passes);
        let cold = pipeline.run_sweep(&spec).expect("cold run");
        assert_eq!(cold.stats.jobs_run, nodes.len() as u64);
        let after_cold = pipeline.analyzer().stats();
        assert!(after_cold.functions_analyzed > 0);
        assert!(after_cold.facts_cached > 0, "facts must persist");
        // the warm run is all store hits — the analyzer never runs
        let warm = pipeline.run_sweep(&spec).expect("warm run");
        assert_eq!(warm.stats.jobs_cached, nodes.len() as u64);
        assert_eq!(cold.digest(), warm.digest());
        assert_eq!(pipeline.analyzer().stats(), after_cold);
        // re-analyzing the artifacts through the warm session must replay
        // every function from the fact cache, bit-identically
        for cell in cold.cells() {
            let a = &cell.outcome.artifact;
            let again = pipeline
                .analyzer()
                .analyze(&vericomp_wcet::AnalysisRequest::new(&a.program, &a.entry))
                .expect("re-analysis");
            assert_eq!(again.report.wcet, a.report.wcet);
            assert_eq!(again.functions_analyzed, 0, "all facts cached");
            assert!(again.functions_reused >= 1);
        }
    }

    #[test]
    fn dirty_node_recompiles_only_its_cone() {
        let mut nodes = suite_prefix(6);
        let pipeline = Pipeline::in_memory();
        pipeline
            .run_sweep(&crate::sweep::SweepSpec::new().nodes(&nodes))
            .expect("cold run");
        // "edit" one node: swap it for a differently-shaped node under the
        // same name slot in the fleet vector.
        nodes[2] = fleet::named_suite().swap_remove(10);
        let warm = pipeline
            .run_sweep(&crate::sweep::SweepSpec::new().nodes(&nodes))
            .expect("warm run");
        // one dirty unit... unless the swapped-in node was already cached
        // under its own key from the cold run — it was not (index 10 is not
        // in the first 6).
        assert_eq!(warm.stats.jobs_run, 1);
        assert_eq!(warm.stats.jobs_cached, 5);
    }

    #[test]
    fn validator_rejection_caches_nothing() {
        // A compile failure must leave the store empty for that key.
        // `full_palette: false` with schedule+validators is fine, so force a
        // failure instead with an entry point that does not exist.
        let node = &suite_prefix(1)[0];
        let pipeline = Pipeline::in_memory();
        let spec = crate::sweep::SweepSpec::new().unit(crate::sweep::SweepUnit::from_source(
            "broken",
            node.to_minic(),
            "no_such_entry",
        ));
        let err = pipeline.run_sweep(&spec).expect_err("must fail");
        assert!(matches!(err, PipelineError::Compile { .. }));
        assert_eq!(pipeline.store().resident(), 0);
    }

    #[test]
    fn application_image_is_cacheable() {
        let app = Application::new("fcs-slice", suite_prefix(4)).expect("app links");
        let pipeline = Pipeline::in_memory();
        let spec = crate::sweep::SweepSpec::new()
            .application(&app)
            .expect("app links")
            .level(OptLevel::Verified);
        let cold = pipeline.run_sweep(&spec).expect("cold");
        let warm = pipeline.run_sweep(&spec).expect("warm");
        assert_eq!(warm.stats.jobs_cached, 1);
        assert_eq!(cold.digest(), warm.digest());
        assert!(cold.cells()[0].outcome.artifact.report.callees.len() >= 4);
    }

    #[test]
    fn options_builder_validates() {
        let ok = PipelineOptions::builder()
            .jobs(4)
            .cache_dir("target/t")
            .machine(MachineConfig::tiny_caches())
            .build()
            .expect("valid options");
        assert_eq!(ok.jobs, 4);
        assert_eq!(
            ok.cache_dir.as_deref(),
            Some(std::path::Path::new("target/t"))
        );
        assert!(matches!(
            PipelineOptions::builder().jobs(100_000).build(),
            Err(OptionsError::TooManyJobs(100_000))
        ));
        assert!(matches!(
            PipelineOptions::builder().cache_dir("").build(),
            Err(OptionsError::EmptyCacheDir)
        ));
        let conventional = PipelineOptions::builder()
            .default_cache_dir()
            .build()
            .expect("valid");
        assert_eq!(
            conventional.cache_dir,
            Some(PipelineOptions::default_cache_dir())
        );
    }

    #[test]
    fn unit_builder_requires_a_source() {
        let r = std::panic::catch_unwind(|| CompileUnit::builder().build());
        assert!(r.is_err(), "build() without a source must panic");
    }
}
