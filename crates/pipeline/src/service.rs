//! The compilation service: schedulable, cacheable compile→analyze jobs.
//!
//! A [`Pipeline`] owns a work-stealing [`ThreadPool`](crate::pool::ThreadPool)
//! and an [`ArtifactStore`]. Work arrives as [`CompileUnit`]s — (source
//! translation unit, entry, pass configuration) triples — and each unit
//! becomes a two-stage chain in a [`JobGraph`]: a *compile* job (cache
//! lookup, then compile + translation-validate on a miss) feeding an
//! *analyze* job (WCET analysis + cache insert). Chains of different units
//! are independent, so the stages of separate nodes overlap freely while
//! each unit's stages stay ordered.
//!
//! **Incrementality falls out of content addressing**: there is no
//! explicit dirty-bit protocol. A changed node changes its generated
//! source, which changes its [`artifact_key`], which misses; every
//! untouched node hits and replays its stored verdict and WCET report.
//! The dirty *cone* is exactly the set of units whose key changed —
//! shared-global rewiring shows up in the consumer node's generated
//! source, so consumers of a changed signal miss too.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use vericomp_arch::MachineConfig;
use vericomp_core::{CompileError, Compiler, OptLevel, PassConfig};
use vericomp_dataflow::{Application, ApplicationError, Node};
use vericomp_minic::ast::Program as SrcProgram;
use vericomp_minic::pretty::program_to_c;
use vericomp_wcet::AnalysisError;

use crate::hash::{Digest, Hasher};
use crate::pool::{JobGraph, ThreadPool};
use crate::stats::{PipelineStats, StatsCell};
use crate::store::{artifact_key, Artifact, ArtifactStore, Verdict};

/// Configuration of a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Worker threads; `0` selects the machine's available parallelism.
    pub jobs: usize,
    /// Artifact-cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Target machine the units compile for (part of every cache key).
    pub machine: MachineConfig,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 0,
            cache_dir: None,
            machine: MachineConfig::mpc755(),
        }
    }
}

impl PipelineOptions {
    /// The conventional persistent cache location, `target/vericomp-cache/`.
    #[must_use]
    pub fn default_cache_dir() -> PathBuf {
        PathBuf::from("target/vericomp-cache")
    }
}

/// One schedulable unit of work: compile `source`'s `entry` under
/// `passes`, then bound its WCET.
#[derive(Debug, Clone)]
pub struct CompileUnit {
    /// Display name (node name, application name, …).
    pub name: String,
    /// Configuration label (e.g. `verified`), part of the artifact.
    pub label: String,
    /// The MiniC translation unit.
    pub source: SrcProgram,
    /// Entry-point function.
    pub entry: String,
    /// Pass selection the unit compiles under.
    pub passes: PassConfig,
}

impl CompileUnit {
    /// The unit compiling `node` at an [`OptLevel`] preset.
    #[must_use]
    pub fn for_node(node: &Node, level: OptLevel) -> CompileUnit {
        CompileUnit::node_with_passes(node, &PassConfig::for_level(level), &level.to_string())
    }

    /// The unit compiling `node` under an explicit pass selection.
    #[must_use]
    pub fn node_with_passes(node: &Node, passes: &PassConfig, label: &str) -> CompileUnit {
        CompileUnit {
            name: node.name().to_owned(),
            label: label.to_owned(),
            source: node.to_minic(),
            entry: node.step_name().to_owned(),
            passes: *passes,
        }
    }

    /// The unit compiling a whole linked [`Application`] image.
    ///
    /// # Errors
    ///
    /// [`ApplicationError`] from linking the application's translation unit.
    pub fn for_application(
        app: &Application,
        passes: &PassConfig,
        label: &str,
    ) -> Result<CompileUnit, ApplicationError> {
        Ok(CompileUnit {
            name: app.name().to_owned(),
            label: label.to_owned(),
            source: app.to_minic()?,
            entry: app.step_name().to_owned(),
            passes: *passes,
        })
    }
}

/// How one unit was produced.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Unit display name.
    pub name: String,
    /// Configuration label.
    pub label: String,
    /// Whether the artifact came from the cache (verdict replayed).
    pub cached: bool,
    /// The validated artifact: binary + verdict + WCET report.
    pub artifact: Arc<Artifact>,
}

/// Result of one pipeline run: per-unit outcomes in submission order plus
/// run metrics.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Outcomes, in the order the units were submitted.
    pub outcomes: Vec<UnitOutcome>,
    /// Run metrics.
    pub stats: PipelineStats,
}

impl FleetResult {
    /// A digest of every unit's outputs, in submission order — equal
    /// digests mean bit-identical binaries, annotation tables and WCET
    /// bounds, which is how the determinism gates compare serial and
    /// parallel builds.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        for o in &self.outcomes {
            h.str(&o.name).str(&o.label);
            let d = o.artifact.output_digest();
            h.u64(d.0 as u64).u64((d.0 >> 64) as u64);
        }
        h.finish()
    }
}

/// Errors of a pipeline run. The first failing unit wins; the run still
/// drains (no job is left queued).
#[derive(Debug)]
pub enum PipelineError {
    /// A unit failed to compile (including translation-validator
    /// rejections — nothing is cached for it).
    Compile {
        /// Unit display name.
        unit: String,
        /// The underlying compiler error.
        error: CompileError,
    },
    /// A unit compiled but its WCET analysis failed.
    Analyze {
        /// Unit display name.
        unit: String,
        /// The underlying analysis error.
        error: AnalysisError,
    },
    /// The artifact cache could not be read or written.
    Cache(io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile { unit, error } => write!(f, "{unit}: compile: {error}"),
            PipelineError::Analyze { unit, error } => write!(f, "{unit}: analyze: {error}"),
            PipelineError::Cache(e) => write!(f, "artifact cache: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The parallel compilation service.
#[derive(Debug)]
pub struct Pipeline {
    pool: ThreadPool,
    store: Arc<ArtifactStore>,
    machine: MachineConfig,
}

impl Pipeline {
    /// Builds a pipeline from options.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cache`] when the cache directory cannot be created.
    pub fn new(options: &PipelineOptions) -> Result<Pipeline, PipelineError> {
        let store = match &options.cache_dir {
            Some(dir) => ArtifactStore::persistent(dir).map_err(PipelineError::Cache)?,
            None => ArtifactStore::in_memory(),
        };
        Ok(Pipeline {
            pool: ThreadPool::new(options.jobs),
            store: Arc::new(store),
            machine: options.machine.clone(),
        })
    }

    /// An in-memory pipeline with default parallelism (the drop-in for
    /// drivers that previously compiled serially).
    #[must_use]
    pub fn in_memory() -> Pipeline {
        Pipeline::new(&PipelineOptions::default()).expect("in-memory pipeline cannot fail")
    }

    /// Worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.pool.threads()
    }

    /// The artifact store.
    #[must_use]
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The target machine configuration.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Compiles a batch of units, overlapping independent units' stages on
    /// the pool and serving unchanged units from the artifact cache.
    /// Outcomes come back in submission order regardless of scheduling.
    ///
    /// # Errors
    ///
    /// The first [`PipelineError`] any unit hit.
    ///
    /// # Panics
    ///
    /// Re-raises panics from compiler/analyzer internals (toolchain bugs).
    pub fn compile_units(&self, units: Vec<CompileUnit>) -> Result<FleetResult, PipelineError> {
        enum Stage1 {
            Hit(Arc<Artifact>),
            Fresh(Digest, vericomp_arch::Program),
            Failed,
        }

        let started = Instant::now();
        let n = units.len();
        let stats = Arc::new(StatsCell::new());
        let slots: Arc<Vec<Mutex<Option<Stage1>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let outcomes: Arc<Vec<Mutex<Option<UnitOutcome>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let first_error: Arc<Mutex<Option<PipelineError>>> = Arc::new(Mutex::new(None));

        let mut graph = JobGraph::new();
        for (i, unit) in units.into_iter().enumerate() {
            let unit = Arc::new(unit);
            let machine = self.machine.clone();
            let store = Arc::clone(&self.store);
            let stats1 = Arc::clone(&stats);
            let slots1 = Arc::clone(&slots);
            let errs1 = Arc::clone(&first_error);
            let unit1 = Arc::clone(&unit);
            // Stage 1: cache lookup, compile + validate on a miss.
            let compile = graph.add(&[], move || {
                let source = program_to_c(&unit1.source);
                let key = artifact_key(&source, &unit1.entry, &unit1.passes, &machine);
                let t = Instant::now();
                let hit = store.lookup(key, &machine);
                stats1.add_store(t.elapsed());
                let stage = match hit {
                    Some(artifact) => {
                        stats1.count_cached();
                        Stage1::Hit(artifact)
                    }
                    None => {
                        let t = Instant::now();
                        let compiled = Compiler::with_config(OptLevel::Verified, machine)
                            .compile_with_passes(&unit1.source, &unit1.entry, &unit1.passes);
                        stats1.add_compile(t.elapsed());
                        match compiled {
                            Ok(program) => Stage1::Fresh(key, program),
                            Err(error) => {
                                errs1.lock().expect("error lock").get_or_insert(
                                    PipelineError::Compile {
                                        unit: unit1.name.clone(),
                                        error,
                                    },
                                );
                                Stage1::Failed
                            }
                        }
                    }
                };
                *slots1[i].lock().expect("slot lock") = Some(stage);
            });
            let stats2 = Arc::clone(&stats);
            let slots2 = Arc::clone(&slots);
            let outcomes2 = Arc::clone(&outcomes);
            let errs2 = Arc::clone(&first_error);
            let store2 = Arc::clone(&self.store);
            // Stage 2: WCET analysis + cache insert (fresh units only).
            // Insertion happens strictly after stage 1 succeeded, i.e.
            // after the translation validators accepted the compilation.
            graph.add(&[compile], move || {
                let stage = slots2[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("stage 1 ran");
                let outcome = match stage {
                    Stage1::Failed => return,
                    Stage1::Hit(artifact) => UnitOutcome {
                        name: unit.name.clone(),
                        label: unit.label.clone(),
                        cached: true,
                        artifact,
                    },
                    Stage1::Fresh(key, program) => {
                        let t = Instant::now();
                        let analyzed = vericomp_wcet::analyze(&program, &unit.entry);
                        stats2.add_analyze(t.elapsed());
                        let report = match analyzed {
                            Ok(report) => report,
                            Err(error) => {
                                errs2.lock().expect("error lock").get_or_insert(
                                    PipelineError::Analyze {
                                        unit: unit.name.clone(),
                                        error,
                                    },
                                );
                                return;
                            }
                        };
                        stats2.count_run();
                        let artifact = Artifact {
                            key,
                            entry: unit.entry.clone(),
                            label: unit.label.clone(),
                            program,
                            verdict: Verdict::from_passes(&unit.passes),
                            report,
                        };
                        let t = Instant::now();
                        let inserted = store2.insert(artifact);
                        stats2.add_store(t.elapsed());
                        match inserted {
                            Ok(artifact) => UnitOutcome {
                                name: unit.name.clone(),
                                label: unit.label.clone(),
                                cached: false,
                                artifact,
                            },
                            Err(error) => {
                                errs2
                                    .lock()
                                    .expect("error lock")
                                    .get_or_insert(PipelineError::Cache(error));
                                return;
                            }
                        }
                    }
                };
                *outcomes2[i].lock().expect("outcome lock") = Some(outcome);
            });
        }
        graph.run(&self.pool);

        if let Some(error) = first_error.lock().expect("error lock").take() {
            return Err(error);
        }
        let outcomes = outcomes
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("outcome lock")
                    .take()
                    .expect("every unit succeeded")
            })
            .collect();
        Ok(FleetResult {
            outcomes,
            stats: stats.snapshot(started.elapsed()),
        })
    }

    /// Compiles every node of a fleet under one pass selection.
    ///
    /// # Errors
    ///
    /// The first [`PipelineError`] any node hit.
    pub fn compile_fleet(
        &self,
        nodes: &[Node],
        passes: &PassConfig,
        label: &str,
    ) -> Result<FleetResult, PipelineError> {
        self.compile_units(
            nodes
                .iter()
                .map(|n| CompileUnit::node_with_passes(n, passes, label))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vericomp_dataflow::fleet;

    fn suite_prefix(n: usize) -> Vec<Node> {
        let mut nodes = fleet::named_suite();
        nodes.truncate(n);
        nodes
    }

    #[test]
    fn fleet_compiles_and_matches_serial_compiler() {
        let nodes = suite_prefix(6);
        let pipeline = Pipeline::in_memory();
        let passes = PassConfig::for_level(OptLevel::Verified);
        let result = pipeline
            .compile_fleet(&nodes, &passes, "verified")
            .expect("fleet compiles");
        assert_eq!(result.outcomes.len(), nodes.len());
        assert_eq!(result.stats.jobs_run, nodes.len() as u64);
        assert_eq!(result.stats.jobs_cached, 0);
        for (node, outcome) in nodes.iter().zip(&result.outcomes) {
            assert_eq!(outcome.name, node.name());
            assert!(!outcome.cached);
            let serial = Compiler::new(OptLevel::Verified)
                .compile(&node.to_minic(), "step")
                .expect("serial compiles");
            assert_eq!(serial.encode_text(), outcome.artifact.program.encode_text());
            let report = vericomp_wcet::analyze(&serial, "step").expect("serial analyzes");
            assert_eq!(report.wcet, outcome.artifact.report.wcet);
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_identical() {
        let nodes = suite_prefix(5);
        let pipeline = Pipeline::in_memory();
        let passes = PassConfig::for_level(OptLevel::OptFull);
        let cold = pipeline
            .compile_fleet(&nodes, &passes, "opt-full")
            .expect("cold run");
        let warm = pipeline
            .compile_fleet(&nodes, &passes, "opt-full")
            .expect("warm run");
        assert_eq!(cold.stats.jobs_run, nodes.len() as u64);
        assert_eq!(warm.stats.jobs_cached, nodes.len() as u64);
        assert_eq!(warm.stats.jobs_run, 0);
        assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(cold.digest(), warm.digest());
        for o in &warm.outcomes {
            assert!(o.cached);
            assert!(o.artifact.verdict.allocation_checked);
        }
    }

    #[test]
    fn dirty_node_recompiles_only_its_cone() {
        let mut nodes = suite_prefix(6);
        let pipeline = Pipeline::in_memory();
        let passes = PassConfig::for_level(OptLevel::Verified);
        pipeline
            .compile_fleet(&nodes, &passes, "verified")
            .expect("cold run");
        // "edit" one node: swap it for a differently-shaped node under the
        // same name slot in the fleet vector.
        nodes[2] = fleet::named_suite().swap_remove(10);
        let warm = pipeline
            .compile_fleet(&nodes, &passes, "verified")
            .expect("warm run");
        // one dirty unit... unless the swapped-in node was already cached
        // under its own key from the cold run — it was not (index 10 is not
        // in the first 6).
        assert_eq!(warm.stats.jobs_run, 1);
        assert_eq!(warm.stats.jobs_cached, 5);
    }

    #[test]
    fn validator_rejection_caches_nothing() {
        // A compile failure must leave the store empty for that key.
        // `full_palette: false` with schedule+validators is fine, so force a
        // failure instead with an entry point that does not exist.
        let node = &suite_prefix(1)[0];
        let pipeline = Pipeline::in_memory();
        let unit = CompileUnit {
            name: "broken".into(),
            label: "verified".into(),
            source: node.to_minic(),
            entry: "no_such_entry".into(),
            passes: PassConfig::for_level(OptLevel::Verified),
        };
        let err = pipeline.compile_units(vec![unit]).expect_err("must fail");
        assert!(matches!(err, PipelineError::Compile { .. }));
        assert_eq!(pipeline.store().resident(), 0);
    }

    #[test]
    fn application_image_is_cacheable() {
        let app = Application::new("fcs-slice", suite_prefix(4)).expect("app links");
        let pipeline = Pipeline::in_memory();
        let passes = PassConfig::for_level(OptLevel::Verified);
        let unit = CompileUnit::for_application(&app, &passes, "verified").expect("unit");
        let cold = pipeline.compile_units(vec![unit.clone()]).expect("cold");
        let warm = pipeline.compile_units(vec![unit]).expect("warm");
        assert_eq!(warm.stats.jobs_cached, 1);
        assert_eq!(cold.digest(), warm.digest());
        assert!(cold.outcomes[0].artifact.report.callees.len() >= 4);
    }
}
