//! Stable content hashing for cache keys and artifact digests.
//!
//! The cache is *content-addressed*: an artifact's identity is a digest of
//! everything that determines the compilation result (generated source
//! text, entry point, pass selection, machine configuration, toolchain
//! generation stamps). The digest must therefore be stable across
//! processes, platforms and toolchain versions — `std::hash` promises none
//! of that, so a 128-bit FNV-1a is implemented here. 128 bits keeps the
//! collision probability for any realistic artifact population (billions)
//! negligible, and the function is trivially deterministic.

use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// Renders the digest as 32 lowercase hex characters (the on-disk
    /// artifact file stem).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a digest previously rendered with [`Digest::to_hex`].
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a/128 hasher with length-prefixed field framing, so
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u128,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Hasher {
        Hasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes (no framing).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a boolean as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[u8::from(v)])
    }

    /// Absorbs a string with a length prefix.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// The final digest.
    #[must_use]
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned value: changing the hash function invalidates every cache
        // on disk, which must be a deliberate FORMAT_VERSION bump instead.
        let mut h = Hasher::new();
        h.str("vericomp").u32(2011).bool(true);
        assert_eq!(h.finish().to_hex(), "71f879af8427691b9529c65bd1957e1b");
    }

    #[test]
    fn framing_distinguishes_field_splits() {
        let mut a = Hasher::new();
        a.str("ab").str("c");
        let mut b = Hasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_roundtrip() {
        let d = Digest(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(""), None);
    }
}
