//! Parallel, cached compilation of the paper-analog 26-node fleet.
//!
//! ```text
//! cargo run --release -p vericomp-pipeline --bin compile_fleet -- \
//!     --jobs 8 --cache-dir target/vericomp-cache
//! ```
//!
//! Compiles every node of the named suite under the selected configuration
//! on the work-stealing pool, serving unchanged nodes from the
//! content-addressed artifact cache, then prints per-node WCET bounds, the
//! run's [`vericomp_pipeline::PipelineStats`] and the fleet output digest
//! (bit-identical runs print identical digests — the CI smoke compares
//! them).

use std::process::ExitCode;

use vericomp_core::{OptLevel, PassConfig};
use vericomp_dataflow::fleet;
use vericomp_pipeline::{Pipeline, PipelineOptions};

struct Args {
    jobs: usize,
    cache_dir: Option<String>,
    level: OptLevel,
    min_hit_rate: Option<f64>,
}

const USAGE: &str =
    "usage: compile_fleet [--jobs N] [--cache-dir DIR] [--level L] [--min-hit-rate F]
  --jobs N          worker threads (default: available parallelism)
  --cache-dir DIR   persistent artifact cache (default: in-memory only)
  --level L         pattern-O0 | opt-no-regalloc | verified | opt-full (default verified)
  --min-hit-rate F  fail unless the cache hit rate is at least F (0..1)";

fn parse_level(s: &str) -> Option<OptLevel> {
    OptLevel::all().into_iter().find(|l| l.to_string() == s)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 0,
        cache_dir: None,
        level: OptLevel::Verified,
        min_hit_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs an argument"))
        };
        match flag.as_str() {
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a number".to_string())?;
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--level" => {
                let v = value("--level")?;
                args.level =
                    parse_level(&v).ok_or_else(|| format!("unknown level `{v}`\n{USAGE}"))?;
            }
            "--min-hit-rate" => {
                args.min_hit_rate = Some(
                    value("--min-hit-rate")?
                        .parse()
                        .map_err(|_| "--min-hit-rate needs a number in 0..1".to_string())?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let options = PipelineOptions {
        jobs: args.jobs,
        cache_dir: args.cache_dir.clone().map(Into::into),
        ..PipelineOptions::default()
    };
    let pipeline = match Pipeline::new(&options) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    let nodes = fleet::named_suite();
    let passes = PassConfig::for_level(args.level);
    println!(
        "compile_fleet: {} nodes at {} on {} workers, cache {}",
        nodes.len(),
        args.level,
        pipeline.jobs(),
        args.cache_dir.as_deref().unwrap_or("(memory)"),
    );

    let result = match pipeline.compile_fleet(&nodes, &passes, &args.level.to_string()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{:<24} {:>8} {:>9}  verdict", "node", "WCET", "source");
    for o in &result.outcomes {
        println!(
            "{:<24} {:>8} {:>9}  {}",
            o.name,
            o.artifact.report.wcet,
            if o.cached { "cache" } else { "compiled" },
            o.artifact.verdict.describe(),
        );
    }
    println!("{}", result.stats.render());
    println!("fleet digest: {}", result.digest());

    if let Some(min) = args.min_hit_rate {
        if result.stats.hit_rate() < min {
            eprintln!(
                "compile_fleet: hit rate {:.3} below required {min:.3}",
                result.stats.hit_rate()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
