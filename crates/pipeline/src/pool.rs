//! A std-only work-stealing thread pool and a dependency-aware job graph.
//!
//! No external crates (the testkit precedent): workers keep per-thread
//! LIFO deques, steal FIFO from each other when empty, and fall back to a
//! shared injector queue fed by non-worker threads. Tasks spawned *from
//! inside* a worker (job-graph continuations) go to that worker's own
//! deque, which keeps a node's compile → analyze chain hot on one core
//! while idle workers steal whole other nodes.
//!
//! The [`JobGraph`] on top schedules jobs with explicit dependencies:
//! a job runs once all of its dependencies completed, so the compile /
//! validate / analyze stages of *independent* nodes overlap freely while
//! each node's stages stay ordered. Panics inside jobs are caught,
//! forwarded to the caller of [`JobGraph::run`] / [`ThreadPool::run_all`],
//! and never wedge the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Per-worker deques. Owners push/pop the back (LIFO, cache-warm);
    /// thieves steal from the front (FIFO, oldest work first).
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Queue fed by threads outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Sleeping-worker wakeup: the mutex guards `sleep_epoch`.
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
    /// First panic payload observed in a task, replayed to the waiter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct SleepState {
    /// Bumped on every submission so sleepers re-scan instead of missing
    /// work enqueued between their scan and their wait.
    epoch: u64,
    shutdown: bool,
}

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is a
    /// pool worker — routes nested spawns to the worker's own deque.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// The work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers; `0` selects the machine's
    /// available parallelism.
    #[must_use]
    pub fn new(threads: usize) -> ThreadPool {
        let threads = if threads == 0 {
            default_parallelism()
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(SleepState {
                epoch: 0,
                shutdown: false,
            }),
            wakeup: Condvar::new(),
            panic: Mutex::new(None),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vericomp-pipeline-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one task. From a worker thread it lands on that worker's
    /// own deque; from outside on the shared injector.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let task: Task = Box::new(task);
        let me = WORKER.with(std::cell::Cell::get);
        let pool_id = Arc::as_ptr(&self.shared) as usize;
        match me {
            Some((id, index)) if id == pool_id => {
                self.shared.queues[index]
                    .lock()
                    .expect("pool queue lock")
                    .push_back(task);
            }
            _ => {
                self.shared
                    .injector
                    .lock()
                    .expect("pool injector lock")
                    .push_back(task);
            }
        }
        let mut sleep = self.shared.sleep.lock().expect("pool sleep lock");
        sleep.epoch += 1;
        drop(sleep);
        self.shared.wakeup.notify_all();
    }

    /// Runs a batch of independent tasks to completion and returns their
    /// results in submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any task.
    pub fn run_all<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let done = Arc::new(Latch::new(n));
        for (i, task) in tasks.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let done = Arc::clone(&done);
            let shared = Arc::clone(&self.shared);
            self.spawn(move || {
                // Count down even on panic so the waiter never wedges; the
                // payload is replayed below.
                let outcome = catch_unwind(AssertUnwindSafe(task));
                match outcome {
                    Ok(v) => results.lock().expect("pool results lock")[i] = Some(v),
                    Err(payload) => {
                        shared
                            .panic
                            .lock()
                            .expect("pool panic lock")
                            .get_or_insert(payload);
                    }
                }
                // The waiter may resume the instant the count hits zero,
                // racing with this closure's teardown — release our clone
                // of the results first.
                drop(results);
                done.count_down();
            });
        }
        done.wait();
        self.replay_panic();
        let mut slots = results.lock().expect("pool results lock");
        slots
            .iter_mut()
            .map(|v| v.take().expect("every task stored its result"))
            .collect()
    }

    fn replay_panic(&self) {
        let payload = self.shared.panic.lock().expect("pool panic lock").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut sleep = self.shared.sleep.lock().expect("pool sleep lock");
            sleep.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let pool_id = Arc::as_ptr(shared) as usize;
    WORKER.with(|w| w.set(Some((pool_id, index))));
    loop {
        if let Some(task) = find_task(shared, index) {
            // A panicking task must not kill the worker: the payload is
            // stashed for the thread that awaits the batch.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                shared
                    .panic
                    .lock()
                    .expect("pool panic lock")
                    .get_or_insert(payload);
            }
            continue;
        }
        // Nothing found: sleep until a submission bumps the epoch.
        let sleep = shared.sleep.lock().expect("pool sleep lock");
        if sleep.shutdown {
            return;
        }
        let epoch = sleep.epoch;
        // Re-check under the lock epoch: work enqueued since the scan
        // bumped the epoch and we skip the wait.
        drop(sleep);
        if has_visible_work(shared, index) {
            continue;
        }
        let mut sleep = shared.sleep.lock().expect("pool sleep lock");
        while sleep.epoch == epoch && !sleep.shutdown {
            sleep = shared.wakeup.wait(sleep).expect("pool condvar wait");
        }
        if sleep.shutdown {
            return;
        }
    }
}

fn has_visible_work(shared: &Shared, index: usize) -> bool {
    if !shared.queues[index]
        .lock()
        .expect("pool queue lock")
        .is_empty()
    {
        return true;
    }
    if !shared
        .injector
        .lock()
        .expect("pool injector lock")
        .is_empty()
    {
        return true;
    }
    shared
        .queues
        .iter()
        .any(|q| !q.lock().expect("pool queue lock").is_empty())
}

fn find_task(shared: &Shared, index: usize) -> Option<Task> {
    // 1. own deque, LIFO
    if let Some(t) = shared.queues[index]
        .lock()
        .expect("pool queue lock")
        .pop_back()
    {
        return Some(t);
    }
    // 2. injector
    if let Some(t) = shared
        .injector
        .lock()
        .expect("pool injector lock")
        .pop_front()
    {
        return Some(t);
    }
    // 3. steal FIFO from the others, starting after ourselves
    let n = shared.queues.len();
    for off in 1..n {
        let victim = (index + off) % n;
        if let Some(t) = shared.queues[victim]
            .lock()
            .expect("pool queue lock")
            .pop_front()
        {
            return Some(t);
        }
    }
    None
}

/// A countdown latch: `wait` blocks until `count_down` was called `n`
/// times.
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            zero: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("latch lock");
        *r -= 1;
        if *r == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("latch lock");
        while *r != 0 {
            r = self.zero.wait(r).expect("latch wait");
        }
    }
}

/// Identifier of a job inside a [`JobGraph`].
pub type JobId = usize;

struct JobEntry {
    task: Mutex<Option<Task>>,
    /// Dependencies not yet completed.
    pending: AtomicUsize,
    dependents: Vec<JobId>,
}

/// A dependency graph of jobs executed on a [`ThreadPool`].
///
/// Jobs are closures; edges are declared at [`JobGraph::add`] time and must
/// point backwards (to already-added jobs), which makes cycles impossible
/// by construction.
#[derive(Default)]
pub struct JobGraph {
    jobs: Vec<(Option<Task>, Vec<JobId>)>,
}

impl std::fmt::Debug for JobGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobGraph")
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl JobGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> JobGraph {
        JobGraph::default()
    }

    /// Number of jobs added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Adds a job depending on `deps` (all returned by earlier `add`
    /// calls) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is not an earlier job.
    pub fn add(&mut self, deps: &[JobId], task: impl FnOnce() + Send + 'static) -> JobId {
        let id = self.jobs.len();
        for &d in deps {
            assert!(d < id, "job dependencies must point backwards");
        }
        self.jobs.push((Some(Box::new(task)), deps.to_vec()));
        id
    }

    /// Executes the whole graph on `pool`, returning when every job
    /// completed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any job.
    pub fn run(self, pool: &ThreadPool) {
        let n = self.jobs.len();
        if n == 0 {
            return;
        }
        let mut entries: Vec<JobEntry> = self
            .jobs
            .iter()
            .map(|(_, deps)| JobEntry {
                task: Mutex::new(None),
                pending: AtomicUsize::new(deps.len()),
                dependents: Vec::new(),
            })
            .collect();
        for (id, (task, deps)) in self.jobs.into_iter().enumerate() {
            *entries[id].task.lock().expect("job slot lock") = task;
            for d in deps {
                entries[d].dependents.push(id);
            }
        }
        let entries = Arc::new(entries);
        let done = Arc::new(Latch::new(n));

        // Seed the initially ready jobs; completions cascade from there.
        // The closures must be 'static while the pool is only borrowed, so
        // they requeue dependents through a non-owning handle instead.
        let handle = ThreadPoolRef {
            shared: Arc::clone(&pool.shared),
        };
        let ready: Vec<JobId> = (0..n)
            .filter(|&id| entries[id].pending.load(Ordering::SeqCst) == 0)
            .collect();
        for id in ready {
            spawn_job(&handle, &entries, &done, id);
        }
        done.wait();
        pool.replay_panic();
    }
}

/// A non-owning handle to a pool's shared state, used by in-flight jobs to
/// requeue newly ready dependents without borrowing the `ThreadPool`.
struct ThreadPoolRef {
    shared: Arc<Shared>,
}

impl ThreadPoolRef {
    fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let task: Task = Box::new(task);
        let me = WORKER.with(std::cell::Cell::get);
        let pool_id = Arc::as_ptr(&self.shared) as usize;
        match me {
            Some((id, index)) if id == pool_id => {
                self.shared.queues[index]
                    .lock()
                    .expect("pool queue lock")
                    .push_back(task);
            }
            _ => {
                self.shared
                    .injector
                    .lock()
                    .expect("pool injector lock")
                    .push_back(task);
            }
        }
        let mut sleep = self.shared.sleep.lock().expect("pool sleep lock");
        sleep.epoch += 1;
        drop(sleep);
        self.shared.wakeup.notify_all();
    }
}

fn spawn_job(pool: &ThreadPoolRef, entries: &Arc<Vec<JobEntry>>, done: &Arc<Latch>, id: JobId) {
    let entries2 = Arc::clone(entries);
    let done2 = Arc::clone(done);
    let shared = Arc::clone(&pool.shared);
    pool.spawn(move || {
        let task = entries2[id]
            .task
            .lock()
            .expect("job slot lock")
            .take()
            .expect("a job runs exactly once");
        // Panic containment mirrors run_all: mark completion regardless.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            shared
                .panic
                .lock()
                .expect("pool panic lock")
                .get_or_insert(payload);
        }
        for &dep in &entries2[id].dependents {
            if entries2[dep].pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let pool = ThreadPoolRef {
                    shared: Arc::clone(&shared),
                };
                spawn_job(&pool, &entries2, &done2, dep);
            }
        }
        done2.count_down();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_all_preserves_order_and_runs_everything() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run_all(tasks);
        assert_eq!(out, (0..64usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = ThreadPool::new(1);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        assert_eq!(pool.run_all(tasks), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn job_graph_respects_dependencies() {
        let pool = ThreadPool::new(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = JobGraph::new();
        // diamond per "node", several independent nodes
        for node in 0..8u32 {
            let o = Arc::clone(&order);
            let a = g.add(&[], move || o.lock().unwrap().push((node, 0)));
            let o = Arc::clone(&order);
            let b = g.add(&[a], move || o.lock().unwrap().push((node, 1)));
            let o = Arc::clone(&order);
            let c = g.add(&[a], move || o.lock().unwrap().push((node, 2)));
            let o = Arc::clone(&order);
            g.add(&[b, c], move || o.lock().unwrap().push((node, 3)));
        }
        g.run(&pool);
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 32);
        for node in 0..8u32 {
            let pos = |stage: u32| {
                order
                    .iter()
                    .position(|&(n, s)| n == node && s == stage)
                    .expect("every stage ran")
            };
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    fn stages_of_independent_chains_overlap_on_one_pass() {
        // Smoke: a 2-stage pipeline over many items completes with the
        // expected per-item ordering even under heavy stealing.
        let pool = ThreadPool::new(8);
        let hits = Arc::new(AtomicU64::new(0));
        let mut g = JobGraph::new();
        for _ in 0..100 {
            let h = Arc::clone(&hits);
            let a = g.add(&[], move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            let h = Arc::clone(&hits);
            g.add(&[a], move || {
                h.fetch_add(1000, Ordering::SeqCst);
            });
        }
        g.run(&pool);
        assert_eq!(hits.load(Ordering::SeqCst), 100 + 100 * 1000);
    }

    #[test]
    fn panics_propagate_without_wedging() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("deliberate test panic")),
            Box::new(|| 3),
        ];
        let result = catch_unwind(AssertUnwindSafe(|| pool.run_all(tasks)));
        assert!(result.is_err());
        // pool still usable afterwards
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 7)];
        assert_eq!(pool.run_all(tasks), vec![7]);
    }
}
