//! Every compiled binary must round-trip through the real 32-bit encoding —
//! the WCET analyzer depends on it (it reconstructs programs from the
//! words), and it demonstrates the assembler/disassembler pair is total on
//! the compiler's output.

use vericomp::arch::Program;
use vericomp::core::OptLevel;
use vericomp::dataflow::fleet;
use vericomp::harness::compile_node;
use vericomp_testkit::fleet::{random_fleet, FleetConfig};

#[test]
fn named_suite_encodes_and_decodes_identically() {
    for node in fleet::named_suite() {
        for level in OptLevel::all() {
            let binary = compile_node(&node, level)
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let words = binary.encode_text();
            assert_eq!(words.len(), binary.code.len());
            let decoded = Program::decode_text(&binary.config, &words)
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            assert_eq!(decoded, binary.code, "{} at {level}", node.name());
        }
    }
}

#[test]
fn random_fleet_encodes_and_decodes_identically() {
    let cfg = FleetConfig {
        nodes: 15,
        min_symbols: 10,
        max_symbols: 50,
        seed: 77,
    };
    for node in random_fleet(&cfg) {
        for level in [OptLevel::PatternO0, OptLevel::OptFull] {
            let binary = compile_node(&node, level)
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let decoded = Program::decode_text(&binary.config, &binary.encode_text())
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            assert_eq!(decoded, binary.code, "{} at {level}", node.name());
        }
    }
}

#[test]
fn listings_match_the_paper_shape() {
    // Listing 1 vs Listing 2 (§3.3): the pattern code is strictly larger
    // and has strictly more memory accesses.
    let l = vericomp_bench::listings::run();
    assert!(
        l.counts.0 > l.counts.1,
        "pattern {} vs verified {}",
        l.counts.0,
        l.counts.1
    );
    assert!(
        l.mem_ops.0 > 2 * l.mem_ops.1,
        "memory traffic must collapse"
    );
    assert!(l.pattern.contains("lfd"));
    assert!(l.pattern.contains("fadd"));
    assert!(l.pattern.contains("stfd"));
    assert!(l.verified.contains("fadd"));
}
