//! Determinism gate of the parallel compilation service: a sweep compiled
//! with `--jobs 8` must be bit-identical — binaries, annotation tables and
//! WCET bounds — to `--jobs 1` and to the pre-pipeline serial path. The
//! whole §3.5 correctness story rides on this: a cache hit replays the
//! validator verdict of an earlier run only because the compilation is a
//! pure function of (source, passes, machine config).

use vericomp::arch::MachineConfig;
use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::fleet;
use vericomp::pipeline::{Pipeline, PipelineOptions, SearchSpec, SpanKind, SweepSpec};
use vericomp::testkit::scenario::{Scenario, ScenarioConfig};

fn pipeline_with_jobs(jobs: usize) -> Pipeline {
    Pipeline::new(
        &PipelineOptions::builder()
            .jobs(jobs)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline")
}

#[test]
fn fleet_build_is_bit_identical_across_job_counts_and_vs_serial() {
    let nodes = fleet::named_suite();
    assert_eq!(nodes.len(), 26, "the paper-analog suite");
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");

    // the aggregate digests cover encoded text, resolved annotation
    // tables and the full WCET reports of every node, in order
    assert_eq!(one.digest(), eight.digest(), "jobs=1 vs jobs=8 diverge");

    // and against the pre-pipeline serial path, artifact by artifact
    let compiler = Compiler::new(OptLevel::Verified);
    for (node, cell) in nodes.iter().zip(eight.cells()) {
        let serial = compiler
            .compile(&node.to_minic(), "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let report = vericomp::wcet::analyze(&serial, "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let artifact = &cell.outcome.artifact;
        assert_eq!(
            serial.encode_text(),
            artifact.program.encode_text(),
            "{}: binary words differ",
            node.name()
        );
        assert_eq!(
            serial
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            artifact
                .program
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            "{}: annotation files differ",
            node.name()
        );
        assert_eq!(
            report.wcet,
            artifact.report.wcet,
            "{}: WCET bounds differ",
            node.name()
        );
        assert_eq!(
            report.loop_bounds,
            artifact.report.loop_bounds,
            "{}: loop bounds differ",
            node.name()
        );
    }
}

#[test]
fn sweep_matrix_is_bit_identical_across_job_counts_and_vs_serial() {
    // the full three-axis request: nodes × configs × machines, exactly
    // what `run_sweep` shards onto the pool in one job set
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(4).collect();
    let slow_mem = {
        let mut m = MachineConfig::mpc755();
        m.mem_latency *= 4;
        m
    };
    let spec = SweepSpec::new()
        .nodes(&nodes)
        .levels([OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull])
        .machine("mpc755", &MachineConfig::mpc755())
        .machine("slow-mem", &slow_mem);
    assert_eq!(spec.cell_count(), 4 * 3 * 2);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "sweep matrix diverges across job counts"
    );

    // every cell must equal the serial compiler run with that cell's
    // passes on that cell's machine, bit for bit
    for (ui, node) in nodes.iter().enumerate() {
        for (ci, (config, passes)) in spec.configs().iter().enumerate() {
            for (mi, (machine, mc)) in spec.machines().iter().enumerate() {
                let cell = &eight[(ui, ci, mi)];
                assert_eq!(
                    (&cell.unit, &cell.config, &cell.machine),
                    (&node.name().to_owned(), config, machine)
                );
                let serial = Compiler::with_config(OptLevel::Verified, mc.clone())
                    .compile_with_passes(&node.to_minic(), "step", passes)
                    .unwrap_or_else(|e| panic!("{}/{config}/{machine}: {e}", node.name()));
                let report = vericomp::wcet::analyze(&serial, "step")
                    .unwrap_or_else(|e| panic!("{}/{config}/{machine}: {e}", node.name()));
                assert_eq!(
                    serial.encode_text(),
                    cell.outcome.artifact.program.encode_text(),
                    "{}/{config}/{machine}: binary words differ",
                    node.name()
                );
                assert_eq!(
                    report.wcet,
                    cell.wcet(),
                    "{}/{config}/{machine}: WCET bounds differ",
                    node.name()
                );
            }
        }
    }
}

#[test]
fn lattice_search_is_bit_identical_across_job_counts_and_vs_serial() {
    // the search layers generations of sweeps on the pool; its whole
    // probe trace — labels, lattice points, bounds, pruning decisions —
    // must be a pure function of the spec, whatever the job count
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(4).collect();
    let spec = SearchSpec::new().nodes(&nodes);

    let one = pipeline_with_jobs(1).search_wcet(&spec).expect("jobs=1");
    let eight = pipeline_with_jobs(8).search_wcet(&spec).expect("jobs=8");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "search trace diverges across job counts"
    );

    // serial reference: every probe's bound recomputed with the plain
    // compiler outside the pipeline, and the winner re-derived as the
    // first strict minimum in probe order
    let compiler = Compiler::new(OptLevel::Verified);
    for (node, search) in nodes.iter().zip(&eight.nodes) {
        let src = node.to_minic();
        let mut first_min: Option<(u64, &str)> = None;
        for probe in &search.probed {
            let serial = compiler
                .compile_with_passes(&src, "step", &probe.passes)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", node.name(), probe.label));
            let report = vericomp::wcet::analyze(&serial, "step")
                .unwrap_or_else(|e| panic!("{}/{}: {e}", node.name(), probe.label));
            assert_eq!(
                report.wcet,
                probe.wcet,
                "{}/{}: probe bound differs from the serial compiler",
                node.name(),
                probe.label
            );
            if first_min.map(|(w, _)| probe.wcet < w).unwrap_or(true) {
                first_min = Some((probe.wcet, &probe.label));
            }
        }
        let (min_wcet, min_label) = first_min.expect("probes");
        assert_eq!(
            (search.winner.wcet, search.winner.label.as_str()),
            (min_wcet, min_label),
            "{}: winner is not the first minimum in probe order",
            node.name()
        );
    }
}

#[test]
fn trace_profile_counters_are_deterministic_across_job_counts() {
    // span *times* vary run to run, but the span/stage/pass *counts* are a
    // pure function of the spec — the profile's counter digest must be
    // bit-identical whatever the job count
    let nodes = fleet::named_suite();
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.trace().profile().counter_digest(),
        eight.trace().profile().counter_digest(),
        "profile counters diverge across job counts"
    );

    // a cold run records one compile stage span per cell, with nested
    // per-pass spans inside it
    let trace = eight.trace();
    assert_eq!(trace.count_of(SpanKind::Stage, "compile"), 26);
    assert_eq!(trace.count_of(SpanKind::Stage, "cache-lookup"), 26);
    assert_eq!(trace.count_of(SpanKind::Pass, "lower"), 26);

    // a warm rerun replays everything: full cache-lookup coverage, zero
    // compile stage spans and zero pass spans
    let pipeline = pipeline_with_jobs(8);
    pipeline.run_sweep(&spec).expect("cold prewarm");
    let replay = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(replay.stats.jobs_cached, 26);
    let rt = replay.trace();
    assert_eq!(rt.count_of(SpanKind::Stage, "cache-lookup"), 26);
    assert_eq!(rt.count_of(SpanKind::Stage, "compile"), 0);
    assert_eq!(rt.count_of(SpanKind::Pass, "lower"), 0);
}

#[test]
fn scenario_verdicts_are_bit_identical_across_job_counts() {
    // a generated multi-rate scenario through the same gate: both the
    // sweep digest and the schedulability report (verdict order, frame
    // WCETs, rendering, digest) must be pure functions of the spec
    let scn = Scenario::generate(
        &ScenarioConfig::builder()
            .name("det")
            .tasks(8)
            .symbols(6, 20)
            .frames(4)
            .seed(0xD17E)
            .build()
            .expect("valid config"),
    )
    .expect("generates");
    let spec = scn
        .to_sweep_spec()
        .levels([OptLevel::Verified, OptLevel::OptFull]);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "scenario sweep diverges across job counts"
    );
    let report_one = scn.check(&one);
    let report_eight = scn.check(&eight);
    assert_eq!(
        report_one.digest(),
        report_eight.digest(),
        "schedulability digests diverge across job counts"
    );
    assert_eq!(report_one.render(), report_eight.render());
    assert!(report_one.feasible(), "derived budgets must fit:\n{}", {
        report_one.render()
    });

    // warm replay serves every scenario cell from the cache: zero compile
    // stage spans, zero pass spans, and the same verdicts
    let pipeline = pipeline_with_jobs(8);
    pipeline.run_sweep(&spec).expect("cold prewarm");
    let replay = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(replay.stats.jobs_cached, spec.cell_count() as u64);
    let rt = replay.trace();
    assert_eq!(
        rt.count_of(SpanKind::Stage, "cache-lookup"),
        spec.cell_count() as u64
    );
    assert_eq!(rt.count_of(SpanKind::Stage, "compile"), 0);
    assert_eq!(rt.count_of(SpanKind::Pass, "lower"), 0);
    assert_eq!(
        scn.check(&replay).digest(),
        report_one.digest(),
        "replayed verdicts diverge from the cold build"
    );
}

#[test]
fn warm_replay_is_bit_identical_to_the_cold_build() {
    let nodes = fleet::named_suite();
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::OptFull);
    let pipeline = pipeline_with_jobs(8);
    let cold = pipeline.run_sweep(&spec).expect("cold sweep");
    let warm = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(cold.stats.jobs_run, 26);
    assert_eq!(warm.stats.jobs_cached, 26);
    assert_eq!(cold.digest(), warm.digest(), "replayed artifacts diverge");
    for cell in warm.cells() {
        assert!(cell.outcome.cached);
        // opt-full runs tunneling and scheduling under validators: the
        // replayed verdict must carry exactly that evidence
        assert!(cell.outcome.artifact.verdict.allocation_checked);
        assert!(cell.outcome.artifact.verdict.tunnel_validated);
        assert!(cell.outcome.artifact.verdict.schedule_validated);
    }
}
