//! Determinism gate of the parallel compilation service: a sweep compiled
//! with `--jobs 8` must be bit-identical — binaries, annotation tables and
//! WCET bounds — to `--jobs 1` and to the pre-pipeline serial path. The
//! whole §3.5 correctness story rides on this: a cache hit replays the
//! validator verdict of an earlier run only because the compilation is a
//! pure function of (source, passes, machine config).

use vericomp::arch::MachineConfig;
use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::fleet;
use vericomp::pipeline::{Pipeline, PipelineOptions, SearchSpec, SpanKind, SweepSpec};
use vericomp::testkit::scenario::{Scenario, ScenarioConfig};

fn pipeline_with_jobs(jobs: usize) -> Pipeline {
    Pipeline::new(
        &PipelineOptions::builder()
            .jobs(jobs)
            .build()
            .expect("valid options"),
    )
    .expect("in-memory pipeline")
}

#[test]
fn fleet_build_is_bit_identical_across_job_counts_and_vs_serial() {
    let nodes = fleet::named_suite();
    assert_eq!(nodes.len(), 26, "the paper-analog suite");
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");

    // the aggregate digests cover encoded text, resolved annotation
    // tables and the full WCET reports of every node, in order
    assert_eq!(one.digest(), eight.digest(), "jobs=1 vs jobs=8 diverge");

    // and against the pre-pipeline serial path, artifact by artifact
    let compiler = Compiler::new(OptLevel::Verified);
    for (node, cell) in nodes.iter().zip(eight.cells()) {
        let serial = compiler
            .compile(&node.to_minic(), "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let report = vericomp::harness::analyze_wcet(&serial, "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let artifact = &cell.outcome.artifact;
        assert_eq!(
            serial.encode_text(),
            artifact.program.encode_text(),
            "{}: binary words differ",
            node.name()
        );
        assert_eq!(
            serial
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            artifact
                .program
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            "{}: annotation files differ",
            node.name()
        );
        assert_eq!(
            report.wcet,
            artifact.report.wcet,
            "{}: WCET bounds differ",
            node.name()
        );
        assert_eq!(
            report.loop_bounds,
            artifact.report.loop_bounds,
            "{}: loop bounds differ",
            node.name()
        );
    }
}

#[test]
fn sweep_matrix_is_bit_identical_across_job_counts_and_vs_serial() {
    // the full three-axis request: nodes × configs × machines, exactly
    // what `run_sweep` shards onto the pool in one job set
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(4).collect();
    let slow_mem = {
        let mut m = MachineConfig::mpc755();
        m.mem_latency *= 4;
        m
    };
    let spec = SweepSpec::new()
        .nodes(&nodes)
        .levels([OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull])
        .machine("mpc755", &MachineConfig::mpc755())
        .machine("slow-mem", &slow_mem);
    assert_eq!(spec.cell_count(), 4 * 3 * 2);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "sweep matrix diverges across job counts"
    );

    // every cell must equal the serial compiler run with that cell's
    // passes on that cell's machine, bit for bit
    for (ui, node) in nodes.iter().enumerate() {
        for (ci, (config, passes)) in spec.configs().iter().enumerate() {
            for (mi, (machine, mc)) in spec.machines().iter().enumerate() {
                let cell = &eight[(ui, ci, mi)];
                assert_eq!(
                    (&cell.unit, &cell.config, &cell.machine),
                    (&node.name().to_owned(), config, machine)
                );
                let serial = Compiler::with_config(OptLevel::Verified, mc.clone())
                    .compile_with_passes(&node.to_minic(), "step", passes)
                    .unwrap_or_else(|e| panic!("{}/{config}/{machine}: {e}", node.name()));
                let report = vericomp::harness::analyze_wcet(&serial, "step")
                    .unwrap_or_else(|e| panic!("{}/{config}/{machine}: {e}", node.name()));
                assert_eq!(
                    serial.encode_text(),
                    cell.outcome.artifact.program.encode_text(),
                    "{}/{config}/{machine}: binary words differ",
                    node.name()
                );
                assert_eq!(
                    report.wcet,
                    cell.wcet(),
                    "{}/{config}/{machine}: WCET bounds differ",
                    node.name()
                );
            }
        }
    }
}

#[test]
fn lattice_search_is_bit_identical_across_job_counts_and_vs_serial() {
    // the search layers generations of sweeps on the pool; its whole
    // probe trace — labels, lattice points, bounds, pruning decisions —
    // must be a pure function of the spec, whatever the job count
    let nodes: Vec<_> = fleet::named_suite().into_iter().take(4).collect();
    let spec = SearchSpec::new().nodes(&nodes);

    let one = pipeline_with_jobs(1).search_wcet(&spec).expect("jobs=1");
    let eight = pipeline_with_jobs(8).search_wcet(&spec).expect("jobs=8");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "search trace diverges across job counts"
    );

    // serial reference: every probe's bound recomputed with the plain
    // compiler outside the pipeline, and the winner re-derived as the
    // first strict minimum in probe order
    let compiler = Compiler::new(OptLevel::Verified);
    for (node, search) in nodes.iter().zip(&eight.nodes) {
        let src = node.to_minic();
        let mut first_min: Option<(u64, &str)> = None;
        for probe in &search.probed {
            let serial = compiler
                .compile_with_passes(&src, "step", &probe.passes)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", node.name(), probe.label));
            let report = vericomp::harness::analyze_wcet(&serial, "step")
                .unwrap_or_else(|e| panic!("{}/{}: {e}", node.name(), probe.label));
            assert_eq!(
                report.wcet,
                probe.wcet,
                "{}/{}: probe bound differs from the serial compiler",
                node.name(),
                probe.label
            );
            if first_min.map(|(w, _)| probe.wcet < w).unwrap_or(true) {
                first_min = Some((probe.wcet, &probe.label));
            }
        }
        let (min_wcet, min_label) = first_min.expect("probes");
        assert_eq!(
            (search.winner.wcet, search.winner.label.as_str()),
            (min_wcet, min_label),
            "{}: winner is not the first minimum in probe order",
            node.name()
        );
    }
}

#[test]
fn trace_profile_counters_are_deterministic_across_job_counts() {
    // span *times* vary run to run, but the span/stage/pass *counts* are a
    // pure function of the spec — the profile's counter digest must be
    // bit-identical whatever the job count
    let nodes = fleet::named_suite();
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::Verified);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.trace().profile().counter_digest(),
        eight.trace().profile().counter_digest(),
        "profile counters diverge across job counts"
    );

    // a cold run records one compile stage span per cell, with nested
    // per-pass spans inside it
    let trace = eight.trace();
    assert_eq!(trace.count_of(SpanKind::Stage, "compile"), 26);
    assert_eq!(trace.count_of(SpanKind::Stage, "cache-lookup"), 26);
    assert_eq!(trace.count_of(SpanKind::Pass, "lower"), 26);

    // a warm rerun replays everything: full cache-lookup coverage, zero
    // compile stage spans and zero pass spans
    let pipeline = pipeline_with_jobs(8);
    pipeline.run_sweep(&spec).expect("cold prewarm");
    let replay = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(replay.stats.jobs_cached, 26);
    let rt = replay.trace();
    assert_eq!(rt.count_of(SpanKind::Stage, "cache-lookup"), 26);
    assert_eq!(rt.count_of(SpanKind::Stage, "compile"), 0);
    assert_eq!(rt.count_of(SpanKind::Pass, "lower"), 0);
}

#[test]
fn scenario_verdicts_are_bit_identical_across_job_counts() {
    // a generated multi-rate scenario through the same gate: both the
    // sweep digest and the schedulability report (verdict order, frame
    // WCETs, rendering, digest) must be pure functions of the spec
    let scn = Scenario::generate(
        &ScenarioConfig::builder()
            .name("det")
            .tasks(8)
            .symbols(6, 20)
            .frames(4)
            .seed(0xD17E)
            .build()
            .expect("valid config"),
    )
    .expect("generates");
    let spec = scn
        .to_sweep_spec()
        .levels([OptLevel::Verified, OptLevel::OptFull]);

    let one = pipeline_with_jobs(1)
        .run_sweep(&spec)
        .expect("jobs=1 sweep");
    let eight = pipeline_with_jobs(8)
        .run_sweep(&spec)
        .expect("jobs=8 sweep");
    assert_eq!(
        one.digest(),
        eight.digest(),
        "scenario sweep diverges across job counts"
    );
    let report_one = scn.check(&one);
    let report_eight = scn.check(&eight);
    assert_eq!(
        report_one.digest(),
        report_eight.digest(),
        "schedulability digests diverge across job counts"
    );
    assert_eq!(report_one.render(), report_eight.render());
    assert!(report_one.feasible(), "derived budgets must fit:\n{}", {
        report_one.render()
    });

    // warm replay serves every scenario cell from the cache: zero compile
    // stage spans, zero pass spans, and the same verdicts
    let pipeline = pipeline_with_jobs(8);
    pipeline.run_sweep(&spec).expect("cold prewarm");
    let replay = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(replay.stats.jobs_cached, spec.cell_count() as u64);
    let rt = replay.trace();
    assert_eq!(
        rt.count_of(SpanKind::Stage, "cache-lookup"),
        spec.cell_count() as u64
    );
    assert_eq!(rt.count_of(SpanKind::Stage, "compile"), 0);
    assert_eq!(rt.count_of(SpanKind::Pass, "lower"), 0);
    assert_eq!(
        scn.check(&replay).digest(),
        report_one.digest(),
        "replayed verdicts diverge from the cold build"
    );
}

#[test]
fn warm_replay_is_bit_identical_to_the_cold_build() {
    let nodes = fleet::named_suite();
    let spec = SweepSpec::new().nodes(&nodes).level(OptLevel::OptFull);
    let pipeline = pipeline_with_jobs(8);
    let cold = pipeline.run_sweep(&spec).expect("cold sweep");
    let warm = pipeline.run_sweep(&spec).expect("warm sweep");
    assert_eq!(cold.stats.jobs_run, 26);
    assert_eq!(warm.stats.jobs_cached, 26);
    assert_eq!(cold.digest(), warm.digest(), "replayed artifacts diverge");
    for cell in warm.cells() {
        assert!(cell.outcome.cached);
        // opt-full runs tunneling and scheduling under validators: the
        // replayed verdict must carry exactly that evidence
        assert!(cell.outcome.artifact.verdict.allocation_checked);
        assert!(cell.outcome.artifact.verdict.tunnel_validated);
        assert!(cell.outcome.artifact.verdict.schedule_validated);
    }
}

// ---------------------------------------------------------------------------
// Daemon determinism gates: a sweep served by `vericomp_serve` must be
// bit-identical to a solo `run_sweep` of the same spec — across job counts,
// shard counts, server restarts, forced eviction, and concurrent clients.
// ---------------------------------------------------------------------------

use vericomp::pipeline::{normalize_spec, Client, Server, ServerOptions};

fn daemon_socket(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vericomp-det-{tag}-{}.sock", std::process::id()))
}

fn daemon_spec(nodes: std::ops::Range<usize>) -> SweepSpec {
    let suite = fleet::named_suite();
    let spec = SweepSpec::new()
        .nodes(&suite[nodes])
        .levels([OptLevel::Verified, OptLevel::OptFull]);
    normalize_spec(&spec, &MachineConfig::mpc755())
}

#[test]
fn daemon_response_is_bit_identical_to_solo_across_jobs_and_shards() {
    let spec = daemon_spec(0..4);
    let solo = pipeline_with_jobs(1).run_sweep(&spec).expect("solo sweep");

    let mut store_digests = Vec::new();
    for (jobs, shards) in [(1usize, 1usize), (4, 1), (1, 4), (4, 8)] {
        let socket = daemon_socket(&format!("axes-{jobs}-{shards}"));
        let mut options = ServerOptions::new(&socket);
        options.jobs = jobs;
        options.shards = shards;
        let server = Server::new(&options).expect("binds");
        let store = server.store().clone();
        let handle = std::thread::spawn(move || server.run().expect("serves"));

        let mut client = Client::connect(&socket).expect("connects");
        let served = client.run_sweep(&spec).expect("served");
        assert!(served.verify(), "jobs={jobs} shards={shards}: bad frame");
        assert_eq!(
            served.digest,
            solo.digest(),
            "jobs={jobs} shards={shards}: daemon digest diverges from solo"
        );
        store_digests.push(store.store_digest());
        client.shutdown().expect("acknowledged");
        handle.join().expect("clean run");
    }
    // the resident key set is a pure function of the work: the store
    // digest must not depend on worker count or shard layout
    assert!(
        store_digests.windows(2).all(|w| w[0] == w[1]),
        "store digest varies with jobs/shards: {store_digests:?}"
    );
}

#[test]
fn daemon_restart_mid_suite_preserves_digests() {
    let socket = daemon_socket("restart");
    let cache =
        std::env::temp_dir().join(format!("vericomp-det-restart-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    let first_half = daemon_spec(0..3);
    let full = daemon_spec(0..6);
    let solo_half = pipeline_with_jobs(1).run_sweep(&first_half).expect("solo");
    let solo_full = pipeline_with_jobs(1).run_sweep(&full).expect("solo");

    // first server lifetime: compile the first half, then stop
    {
        let mut options = ServerOptions::new(&socket);
        options.cache_dir = Some(cache.clone());
        let server = Server::new(&options).expect("binds");
        let handle = std::thread::spawn(move || server.run().expect("serves"));
        let mut client = Client::connect(&socket).expect("connects");
        let served = client.run_sweep(&first_half).expect("served");
        assert_eq!(served.digest, solo_half.digest());
        client.shutdown().expect("acknowledged");
        handle.join().expect("clean run");
        assert!(!socket.exists(), "socket must be removed between lifetimes");
    }

    // second lifetime on the same socket + store dir: the first half
    // replays from disk, the rest compiles fresh — same digest as solo
    {
        let mut options = ServerOptions::new(&socket);
        options.cache_dir = Some(cache.clone());
        let server = Server::new(&options).expect("re-binds");
        let handle = std::thread::spawn(move || server.run().expect("serves"));
        let mut client = Client::connect(&socket).expect("connects");
        let served = client.run_sweep(&full).expect("served");
        assert_eq!(
            served.digest,
            solo_full.digest(),
            "digest diverges across a server restart"
        );
        let replayed = served.cells.iter().filter(|c| c.cached).count();
        assert!(
            replayed >= first_half.cell_count(),
            "restart must replay the persisted half ({replayed} cached)"
        );
        client.shutdown().expect("acknowledged");
        handle.join().expect("clean run");
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn daemon_eviction_recompiles_to_identical_digests() {
    let socket = daemon_socket("evict");
    let mut options = ServerOptions::new(&socket);
    options.shards = 1;
    // sized to hold one six-cell sweep but not two: the second sweep
    // evicts the first's batch, the third forces recompiles
    options.max_bytes = Some(16_000);
    let server = Server::new(&options).expect("binds");
    let store = server.store().clone();
    let handle = std::thread::spawn(move || server.run().expect("serves"));

    let spec_a = daemon_spec(0..3);
    let spec_b = daemon_spec(3..6);
    let solo_a = pipeline_with_jobs(1).run_sweep(&spec_a).expect("solo a");
    let solo_b = pipeline_with_jobs(1).run_sweep(&spec_b).expect("solo b");

    let mut client = Client::connect(&socket).expect("connects");
    let first = client.run_sweep(&spec_a).expect("cold a");
    assert_eq!(first.digest, solo_a.digest());
    let second = client.run_sweep(&spec_b).expect("cold b");
    assert_eq!(second.digest, solo_b.digest());

    client.shutdown().expect("acknowledged");
    let stats = handle.join().expect("clean run");
    assert!(
        stats.evictions > 0,
        "the byte bound must have forced evictions (resident {} bytes {})",
        stats.resident,
        stats.store_bytes
    );
    drop(store);

    // a fresh server on the same socket: the evicted cells recompile
    // from scratch to the exact same digest
    let server = Server::new(&options).expect("re-binds");
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    let mut client = Client::connect(&socket).expect("connects");
    let again = client.run_sweep(&spec_a).expect("recompiled a");
    assert_eq!(
        again.digest,
        solo_a.digest(),
        "evicted cells recompile to a different digest"
    );
    client.shutdown().expect("acknowledged");
    handle.join().expect("clean run");
}

#[test]
fn daemon_concurrent_clients_match_solo_and_store_digest_ignores_arrival_order() {
    let spec_a = daemon_spec(0..4);
    let spec_b = daemon_spec(2..6); // overlaps a on nodes 2..4
    let solo_a = pipeline_with_jobs(1).run_sweep(&spec_a).expect("solo a");
    let solo_b = pipeline_with_jobs(1).run_sweep(&spec_b).expect("solo b");

    let mut store_digests = Vec::new();
    for (tag, first_a) in [("order-ab", true), ("order-ba", false)] {
        let socket = daemon_socket(tag);
        let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
        let store = server.store().clone();
        let handle = std::thread::spawn(move || server.run().expect("serves"));

        // two live connections; submission order flips between the runs
        let mut one = Client::connect(&socket).expect("connects");
        let mut two = Client::connect(&socket).expect("connects");
        let (ra, rb) = if first_a {
            let ra = std::thread::scope(|s| {
                let ja = s.spawn(|| one.run_sweep(&spec_a).expect("served a"));
                let jb = s.spawn(|| two.run_sweep(&spec_b).expect("served b"));
                (ja.join().expect("a"), jb.join().expect("b"))
            });
            ra
        } else {
            let rb = std::thread::scope(|s| {
                let jb = s.spawn(|| two.run_sweep(&spec_b).expect("served b"));
                let ja = s.spawn(|| one.run_sweep(&spec_a).expect("served a"));
                (ja.join().expect("a"), jb.join().expect("b"))
            });
            rb
        };
        assert_eq!(ra.digest, solo_a.digest(), "{tag}: client a diverges");
        assert_eq!(rb.digest, solo_b.digest(), "{tag}: client b diverges");
        store_digests.push(store.store_digest());

        let mut admin = Client::connect(&socket).expect("connects");
        admin.shutdown().expect("acknowledged");
        handle.join().expect("clean run");
    }
    assert_eq!(
        store_digests[0], store_digests[1],
        "resident store digest depends on request arrival order"
    );
}

#[test]
fn daemon_parse_cached_client_uploads_nothing_and_matches_solo() {
    let spec = daemon_spec(0..5);
    let solo = pipeline_with_jobs(1).run_sweep(&spec).expect("solo sweep");

    let socket = daemon_socket("parse-warm");
    let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
    let handle = std::thread::spawn(move || server.run().expect("serves"));

    // client one seeds the parse cache by uploading every unit body
    let mut one = Client::connect(&socket).expect("connects");
    let seeded = one.run_sweep(&spec).expect("seed sweep");
    assert_eq!(seeded.digest, solo.digest(), "seeding sweep diverges");
    let after_seed = one.server_stats().expect("stats");
    assert_eq!(after_seed.units_uploaded, spec.units().len() as u64);

    // client two has never spoken to this daemon, but every digest it
    // offers is already parse-cached: its sweep must negotiate down to
    // zero uploaded bodies and still serve the solo digest bit for bit
    let mut two = Client::connect(&socket).expect("connects");
    let served = two.run_sweep(&spec).expect("negotiated sweep");
    assert!(served.verify(), "bad negotiated frame");
    assert_eq!(
        served.digest,
        solo.digest(),
        "a parse-cached client's sweep diverges from solo"
    );
    let after = two.server_stats().expect("stats");
    assert_eq!(
        after.units_uploaded, after_seed.units_uploaded,
        "fully parse-cached client still uploaded unit bodies"
    );
    assert_eq!(
        after.units_offered,
        after_seed.units_offered + spec.units().len() as u64,
        "fresh connection must negotiate its digests"
    );
    assert!(
        after.parse_hits >= spec.units().len() as u64,
        "negotiated units must resolve from the parse cache"
    );

    let mut admin = Client::connect(&socket).expect("connects");
    admin.shutdown().expect("acknowledged");
    handle.join().expect("clean run");
}

/// Extracts the `counter_digest` value from a metrics-registry JSON blob.
fn metrics_digest(json: &str) -> String {
    let tag = "\"counter_digest\": \"";
    let at = json
        .find(tag)
        .expect("metrics JSON carries a counter digest");
    let rest = &json[at + tag.len()..];
    rest[..rest.find('"').expect("closing quote")].to_owned()
}

/// The metrics registry obeys the repo's digest discipline: for one serial
/// client replaying the identical request sequence, `counter_digest` is a
/// pure function of the workload — invariant across worker counts, shard
/// layouts, and a daemon restart (fresh lifetime, same requests). Wall
/// latencies differ wildly across those axes; only identities and counts
/// are hashed.
#[test]
fn daemon_metrics_counter_digest_is_invariant_across_jobs_shards_and_restart() {
    let first = daemon_spec(0..3);
    let second = daemon_spec(0..5);

    let mut digests = Vec::new();
    // (jobs, shards) axes plus a repeat of the first configuration — the
    // repeat is the "restart" leg: a fresh memory-only lifetime serving
    // the same requests must reproduce the digest bit for bit
    for (tag, jobs, shards) in [
        ("m1", 1usize, 1usize),
        ("m2", 8, 1),
        ("m3", 1, 4),
        ("m4", 8, 8),
        ("m5", 1, 1),
    ] {
        let socket = daemon_socket(&format!("metrics-{tag}"));
        let mut options = ServerOptions::new(&socket);
        options.jobs = jobs;
        options.shards = shards;
        let server = Server::new(&options).expect("binds");
        let handle = std::thread::spawn(move || server.run().expect("serves"));

        let mut client = Client::connect(&socket).expect("connects");
        client.run_sweep(&first).expect("served");
        client.run_sweep(&second).expect("served");
        let json = client.server_metrics().expect("metrics");
        digests.push((tag, metrics_digest(&json)));
        client.shutdown().expect("acknowledged");
        handle.join().expect("clean run");
    }
    assert!(
        digests.windows(2).all(|w| w[0].1 == w[1].1),
        "metrics counter digest varies with jobs/shards/restart: {digests:?}"
    );
}

/// A traced sweep (proto 2.1) returns the server-side spans of exactly
/// that request: stage rows covering every cell, each tagged with the
/// trace id the client chose — and the spans ride outside the response
/// digest, so a traced response stays bit-identical to an untraced one.
#[test]
fn daemon_traced_sweep_returns_tagged_spans_without_changing_the_digest() {
    let spec = daemon_spec(0..3);
    let solo = pipeline_with_jobs(1).run_sweep(&spec).expect("solo sweep");

    let socket = daemon_socket("traced");
    let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
    let handle = std::thread::spawn(move || server.run().expect("serves"));

    let mut client = Client::connect(&socket).expect("connects");
    let trace_id = 0x00c0_ffee_0000_0042u64;
    let traced = client.run_sweep_traced(&spec, trace_id).expect("served");
    assert!(traced.verify(), "bad traced frame");
    assert_eq!(traced.digest, solo.digest(), "trace id leaked into digest");
    assert!(!traced.spans.is_empty(), "traced response carries no spans");
    let tag = format!("trace={trace_id:016x}");
    assert!(
        traced.spans.iter().all(|s| s.detail.contains(&tag)),
        "server span missing its trace tag"
    );
    for stage in ["compile", "analyze", "store"] {
        assert!(
            traced.spans.iter().any(|s| s.name == stage),
            "traced response lacks a `{stage}` stage span"
        );
    }

    // an untraced request on the same connection gets no spans back
    let untraced = client.run_sweep(&spec).expect("served");
    assert!(untraced.spans.is_empty(), "untraced response carries spans");
    assert_eq!(untraced.digest, solo.digest());

    client.shutdown().expect("acknowledged");
    handle.join().expect("clean run");
}
