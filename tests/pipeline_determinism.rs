//! Determinism gate of the parallel compilation service: a fleet compiled
//! with `--jobs 8` must be bit-identical — binaries, annotation tables and
//! WCET bounds — to `--jobs 1` and to the pre-pipeline serial path. The
//! whole §3.5 correctness story rides on this: a cache hit replays the
//! validator verdict of an earlier run only because the compilation is a
//! pure function of (source, passes, machine config).

use vericomp::core::{Compiler, OptLevel, PassConfig};
use vericomp::dataflow::fleet;
use vericomp::pipeline::{Pipeline, PipelineOptions};

fn pipeline_with_jobs(jobs: usize) -> Pipeline {
    Pipeline::new(&PipelineOptions {
        jobs,
        ..PipelineOptions::default()
    })
    .expect("in-memory pipeline")
}

#[test]
fn fleet_build_is_bit_identical_across_job_counts_and_vs_serial() {
    let nodes = fleet::named_suite();
    assert_eq!(nodes.len(), 26, "the paper-analog suite");
    let passes = PassConfig::for_level(OptLevel::Verified);

    let serial_pipe = pipeline_with_jobs(1);
    let parallel_pipe = pipeline_with_jobs(8);
    let one = serial_pipe
        .compile_fleet(&nodes, &passes, "verified")
        .expect("jobs=1 fleet");
    let eight = parallel_pipe
        .compile_fleet(&nodes, &passes, "verified")
        .expect("jobs=8 fleet");

    // the aggregate digests cover encoded text, resolved annotation
    // tables and the full WCET reports of every node, in order
    assert_eq!(one.digest(), eight.digest(), "jobs=1 vs jobs=8 diverge");

    // and against the pre-pipeline serial path, artifact by artifact
    let compiler = Compiler::new(OptLevel::Verified);
    for (node, o8) in nodes.iter().zip(&eight.outcomes) {
        let serial = compiler
            .compile(&node.to_minic(), "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let report = vericomp::wcet::analyze(&serial, "step")
            .unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let artifact = &o8.artifact;
        assert_eq!(
            serial.encode_text(),
            artifact.program.encode_text(),
            "{}: binary words differ",
            node.name()
        );
        assert_eq!(
            serial
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            artifact
                .program
                .annotations
                .iter()
                .map(|a| (a.id, a.resolved_text()))
                .collect::<Vec<_>>(),
            "{}: annotation files differ",
            node.name()
        );
        assert_eq!(
            report.wcet,
            artifact.report.wcet,
            "{}: WCET bounds differ",
            node.name()
        );
        assert_eq!(
            report.loop_bounds,
            artifact.report.loop_bounds,
            "{}: loop bounds differ",
            node.name()
        );
    }
}

#[test]
fn warm_replay_is_bit_identical_to_the_cold_build() {
    let nodes = fleet::named_suite();
    let passes = PassConfig::for_level(OptLevel::OptFull);
    let pipeline = pipeline_with_jobs(8);
    let cold = pipeline
        .compile_fleet(&nodes, &passes, "opt-full")
        .expect("cold fleet");
    let warm = pipeline
        .compile_fleet(&nodes, &passes, "opt-full")
        .expect("warm fleet");
    assert_eq!(cold.stats.jobs_run, 26);
    assert_eq!(warm.stats.jobs_cached, 26);
    assert_eq!(cold.digest(), warm.digest(), "replayed artifacts diverge");
    for o in &warm.outcomes {
        assert!(o.cached);
        // opt-full runs tunneling and scheduling under validators: the
        // replayed verdict must carry exactly that evidence
        assert!(o.artifact.verdict.allocation_checked);
        assert!(o.artifact.verdict.tunnel_validated);
        assert!(o.artifact.verdict.schedule_validated);
    }
}
