//! Wire-protocol robustness: hostile byte streams against a live daemon.
//!
//! The fuzz property drives the v2 protocol's whole hostile-input
//! surface — truncations (including mid-`blob`-payload disconnects),
//! bit flips, corrupted blob lengths, oversized blob claims, injected
//! garbage lines, version skew and raw non-UTF-8 soup — at one shared
//! `vericomp_serve`-shaped server over its Unix socket, exactly the
//! frames a broken or malicious client could produce. The contract
//! under test:
//!
//! * the server **never panics** (its accept loop survives every case
//!   and still serves, shuts down cleanly at the end);
//! * every frame it sends back is a well-formed v2 response document
//!   (usually `error …`) — it never echoes garbage;
//! * a poisoned connection stays *one* connection: after the full fuzz
//!   run the shared store still serves a genuine sweep bit-identical
//!   to a solo `run_sweep` of the same spec.
//!
//! Failures append their seed to `tests/proto_fuzz.proptest-regressions`
//! (testkit prop-harness discipline) and replay with
//! `TESTKIT_SEED=<seed> TESTKIT_CASES=1 cargo test --test proto_fuzz`.

use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use vericomp::pipeline::proto::{decode_response, encode_request};
use vericomp::pipeline::{
    normalize_spec, Client, Request, Server, ServerOptions, SweepSpec, WireSweep,
};
use vericomp_arch::MachineConfig;
use vericomp_core::OptLevel;
use vericomp_dataflow::fleet;
use vericomp_testkit::prop::{check, gens, Config};

/// The small spec behind the valid seed documents: two suite nodes, one
/// config — cheap enough that a mutant surviving as a *valid* sweep only
/// costs one tiny batch.
fn fuzz_spec() -> SweepSpec {
    let suite = fleet::named_suite();
    normalize_spec(
        &SweepSpec::new()
            .nodes(&suite[..2])
            .level(OptLevel::Verified),
        &MachineConfig::mpc755(),
    )
}

/// The valid request documents mutations start from. `shutdown` is
/// deliberately absent: a mutation that leaves it intact would stop the
/// shared server mid-run.
fn seed_documents() -> Vec<Vec<u8>> {
    let spec = fuzz_spec();
    let digests: Vec<_> = spec
        .units()
        .iter()
        .map(vericomp::pipeline::SweepUnit::source_digest)
        .collect();
    [
        Request::Sweep(WireSweep::from_spec(&spec, |_| true)),
        Request::Sweep(WireSweep::from_spec(&spec, |_| false)),
        Request::Have(digests),
        Request::Stats,
    ]
    .iter()
    .map(|r| encode_request(r).expect("seed encodes").into_bytes())
    .collect()
}

/// Deterministic byte soup from two u64s (no RNG in the case body — the
/// case *is* its seed tuple, so shrinking stays meaningful).
fn soup(a: u64, b: u64, len: usize) -> Vec<u8> {
    let mut state = a ^ b.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) as u8
        })
        .collect()
}

/// Lines a garbage-injection mutation may splice in. No `shutdown`.
const GARBAGE_LINES: &[&str] = &[
    "sweep",
    "blob 999999999999999999",
    "blob -7",
    "blob ",
    "unit-ref step deadbeef x",
    "unit",
    "digest zz",
    "have 4000000000",
    "config verified 11111",
    "machine",
    "end",
    "stats",
    "vericomp-request 2",
    "\u{0}\u{0}\u{0}",
];

/// Builds the hostile stream for one case: pick a valid document, apply
/// one mutation family parameterized by `(a, b)`.
fn hostile_bytes(seeds: &[Vec<u8>], which: u8, mutation: u8, a: u64, b: u64) -> Vec<u8> {
    let doc = &seeds[which as usize % seeds.len()];
    let mut bytes = doc.clone();
    match mutation % 7 {
        // truncation anywhere, including inside a blob payload — the
        // write side then disconnects mid-frame
        0 => {
            bytes.truncate((a as usize) % (doc.len() + 1));
        }
        // single flipped byte (guaranteed to differ)
        1 => {
            let pos = (a as usize) % doc.len();
            bytes[pos] ^= (b % 255) as u8 + 1;
        }
        // corrupt the first blob length, or claim an oversized one
        2 => {
            if let Some(text) = std::str::from_utf8(doc).ok() {
                if let Some(start) = text.find("blob ") {
                    let line_end = text[start..].find('\n').map_or(text.len(), |e| start + e);
                    let claimed = if a % 2 == 0 {
                        (1u64 << 30) + 1 + (b % 1024) // over MAX_BLOB_BYTES
                    } else {
                        b % 100_000 // plain length mismatch
                    };
                    let mut out = text[..start].to_string();
                    out.push_str(&format!("blob {claimed}"));
                    out.push_str(&text[line_end..]);
                    bytes = out.into_bytes();
                }
            }
        }
        // splice a garbage line in at a line boundary
        3 => {
            let boundaries: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| (c == b'\n').then_some(i + 1))
                .collect();
            let at = if boundaries.is_empty() {
                0
            } else {
                boundaries[(a as usize) % boundaries.len()]
            };
            let line = GARBAGE_LINES[(b as usize) % GARBAGE_LINES.len()];
            let mut injected = bytes[..at].to_vec();
            injected.extend_from_slice(line.as_bytes());
            injected.push(b'\n');
            injected.extend_from_slice(&bytes[at..]);
            bytes = injected;
        }
        // raw soup, frequently not UTF-8 at all
        4 => {
            bytes = soup(a, b, (a as usize) % 512);
        }
        // duplicated prefix: one-and-a-half documents on one stream
        5 => {
            let cut = (a as usize) % (doc.len() + 1);
            bytes.extend_from_slice(&doc[..cut]);
        }
        // version skew in the header line
        _ => {
            if let Ok(text) = std::str::from_utf8(doc) {
                bytes = text
                    .replacen(
                        "vericomp-request 2",
                        &format!("vericomp-request {}", a % 10),
                        1,
                    )
                    .into_bytes();
            }
        }
    }
    bytes
}

/// One fuzz case: write the hostile stream, half-close, drain replies.
/// Transport errors are fine (the server may drop the connection); a
/// hang or an undecodable reply frame is a property violation.
fn throw_at_server(socket: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    let stream = UnixStream::connect(socket).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    // a dropped connection can surface as EPIPE here — allowed
    let mut writer = &stream;
    let _ = writer.write_all(bytes);
    let _ = writer.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut reader = BufReader::new(&stream);
    loop {
        match vericomp::pipeline::read_frame(&mut reader) {
            Ok(Some(frame)) => {
                let text = std::str::from_utf8(&frame)
                    .map_err(|_| "server sent a non-UTF-8 frame".to_string())?;
                decode_response(text)
                    .map_err(|e| format!("server sent an undecodable frame: {e}\n{text}"))?;
            }
            Ok(None) => return Ok(()), // clean EOF: connection served or dropped
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Err("server went silent for 60 s (hang)".to_string());
            }
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                return Err("server went silent for 60 s (hang)".to_string());
            }
            // reset/EPIPE mid-frame: the server dropped this connection
            Err(_) => return Ok(()),
        }
    }
}

#[test]
fn hostile_streams_never_panic_the_server_or_poison_the_store() {
    let socket = std::env::temp_dir().join(format!("vericomp-fuzz-{}.sock", std::process::id()));
    let server = Server::new(&ServerOptions::new(&socket)).expect("binds");
    let handle = std::thread::spawn(move || server.run().expect("server must survive the fuzz"));

    let spec = fuzz_spec();
    let solo = vericomp::pipeline::Pipeline::in_memory()
        .run_sweep(&spec)
        .expect("solo sweep");

    let seeds = seed_documents();
    let gen = gens::pair(
        gens::pair(gens::u8_range(0, 8), gens::u8_range(0, 7)),
        gens::pair(gens::any_u64(), gens::any_u64()),
    );
    let cfg = Config::with_cases(96).with_regressions(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proto_fuzz.proptest-regressions"
    ));
    check(
        "hostile_streams_get_error_or_disconnect",
        &cfg,
        &gen,
        |&((which, mutation), (a, b))| {
            let bytes = hostile_bytes(&seeds, which, mutation, a, b);
            throw_at_server(&socket, &bytes)
        },
    );

    // the shared store survived every case: a genuine client still gets
    // the solo-identical digest, and the daemon still shuts down cleanly
    let mut client = Client::connect(&socket).expect("connects after the fuzz");
    let served = client.run_sweep(&spec).expect("serves after the fuzz");
    assert!(served.verify(), "post-fuzz frame fails verification");
    assert_eq!(
        served.digest,
        solo.digest(),
        "fuzzing poisoned the shared store"
    );
    client.shutdown().expect("acknowledged");
    handle.join().expect("clean shutdown after the fuzz");
    assert!(!socket.exists(), "socket must be removed on shutdown");
}
