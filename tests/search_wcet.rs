//! Acceptance gate of the lattice search (paper §4, Table 1): on every
//! node of the paper-analog suite the search winner must be at least as
//! good as the best of the fixed WCET-driven candidates, every probe must
//! keep the translation validators pinned on, and dominance pruning must
//! actually fire somewhere — otherwise the "search" is just the old fixed
//! loop with extra bookkeeping.

use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::fleet;
use vericomp::harness::wcet_driven_candidates;
use vericomp::pipeline::{Pipeline, SearchSpec};

#[test]
fn winner_beats_every_fixed_candidate_on_every_suite_node() {
    let nodes = fleet::named_suite();
    assert_eq!(nodes.len(), 26, "the paper-analog suite");
    let mut spec = SearchSpec::new().nodes(&nodes);
    for (name, passes) in wcet_driven_candidates() {
        spec = spec.seed(name, &passes);
    }
    let result = Pipeline::in_memory().search_wcet(&spec).expect("search");
    assert_eq!(result.nodes.len(), nodes.len());

    let compiler = Compiler::new(OptLevel::Verified);
    for (node, search) in nodes.iter().zip(&result.nodes) {
        assert_eq!(search.unit, node.name());
        // safety invariant: the search may trade any optimization flag,
        // never the validators
        for probe in &search.probed {
            assert!(
                probe.passes.validators,
                "{}/{}: probe dropped the validators",
                node.name(),
                probe.label
            );
        }
        assert!(search.winner.passes.validators);

        // the winner is at least as good as every fixed candidate,
        // recomputed serially and independently of the pipeline
        for (name, passes) in wcet_driven_candidates() {
            let bin = compiler
                .compile_with_passes(&node.to_minic(), "step", &passes)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()));
            let wcet = vericomp::harness::analyze_wcet(&bin, "step")
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()))
                .wcet;
            assert!(
                search.winner.wcet <= wcet,
                "{}: winner {} ({}) worse than fixed candidate {name} ({wcet})",
                node.name(),
                search.winner.wcet,
                search.winner.label,
            );
        }
    }

    // dominance pruning must have cut at least one flag somewhere, and
    // every decision must be auditable
    assert!(
        result.total_pruned() > 0,
        "no flag was dominance-pruned on any node"
    );
    for search in &result.nodes {
        for d in &search.pruned {
            assert!(
                d.trials >= 2,
                "{}: pruned `{}` on one trial",
                search.unit,
                d.flag
            );
        }
    }
}
