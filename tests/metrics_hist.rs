//! Property tests for the metrics histogram: power-of-two bucketing must
//! agree with an exact sorted-reference quantile at every probed `q`,
//! across uniform, skewed and bucket-boundary-heavy distributions.
//!
//! The invariant is exact, not approximate: bucketization is monotone, so
//! the histogram's `quantile(q)` must equal `bucket_upper(bucket_index(x))`
//! where `x` is the rank-selected element of the *sorted raw data* — the
//! histogram may round a value up to its bucket ceiling, but it must land
//! in exactly the bucket the reference element lands in.
//!
//! Failures append their seed to `tests/metrics_hist.proptest-regressions`
//! and replay with `TESTKIT_SEED=<seed> TESTKIT_CASES=1`.

use vericomp::pipeline::{bucket_index, bucket_upper, Histogram, Registry};
use vericomp::testkit::prop::{self, gens, Config, Gen};

/// The exact reference: rank-select the sorted raw observations, then
/// bucket-ceil. `rank = clamp(ceil(q·n), 1, n)`, the same nearest-rank
/// definition the histogram implements over its cumulative counts.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    let rank = ((q * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
    let x = sorted[usize::try_from(rank - 1).expect("rank fits usize")];
    bucket_upper(bucket_index(x))
}

/// Observation generators spanning the shapes that stress the bucketing:
/// small uniforms (dense low buckets), full-range u64 (sparse high
/// buckets), and values pinned to bucket boundaries `2^k - 1 | 2^k | 2^k + 1`
/// where an off-by-one in `bucket_index` would flip the answer.
fn observation() -> Gen<u64> {
    let boundary = gens::u32_range(0, 63).map(|k| {
        let base = 1u64 << k;
        match k % 3 {
            0 => base.saturating_sub(1),
            1 => base,
            _ => base.saturating_add(1),
        }
    });
    gens::one_of(vec![
        gens::u32_range(0, 100).map(u64::from),
        gens::any_u64(),
        boundary,
        gens::just(0u64),
        gens::just(u64::MAX),
    ])
}

#[test]
fn histogram_quantiles_match_sorted_reference() {
    let cfg = Config::with_cases(300).with_regressions("tests/metrics_hist.proptest-regressions");
    let gen = gens::vec_of(observation(), 1, 200);
    prop::check(
        "histogram_quantiles_match_sorted_reference",
        &cfg,
        &gen,
        |obs| {
            let mut hist = Histogram::new();
            for &v in obs {
                hist.record(v);
            }
            let mut sorted = obs.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
                let got = hist
                    .quantile(q)
                    .ok_or_else(|| "quantile on non-empty histogram returned None".to_owned())?;
                let want = reference_quantile(&sorted, q);
                if got != want {
                    return Err(format!(
                        "q={q}: histogram said {got}, sorted reference says {want} \
                     (n={}, min={}, max={})",
                        sorted.len(),
                        sorted[0],
                        sorted[sorted.len() - 1],
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn merge_equals_recording_the_concatenation() {
    let cfg = Config::with_cases(150);
    let gen = gens::pair(
        gens::vec_of(observation(), 0, 80),
        gens::vec_of(observation(), 0, 80),
    );
    prop::check(
        "merge_equals_recording_the_concatenation",
        &cfg,
        &gen,
        |(a, b)| {
            let mut ha = Histogram::new();
            for &v in a {
                ha.record(v);
            }
            let mut hb = Histogram::new();
            for &v in b {
                hb.record(v);
            }
            ha.merge(&hb);
            let mut hc = Histogram::new();
            for &v in a.iter().chain(b) {
                hc.record(v);
            }
            if ha.count() != hc.count() || ha.buckets() != hc.buckets() {
                return Err("merge(a,b) disagrees with record(a++b)".to_owned());
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                if ha.quantile(q) != hc.quantile(q) {
                    return Err(format!("merged quantile q={q} disagrees with concat"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn counter_digest_ignores_observed_values_but_not_counts() {
    let cfg = Config::with_cases(100);
    let gen = gens::vec_of(observation(), 1, 60);
    prop::check(
        "counter_digest_ignores_observed_values_but_not_counts",
        &cfg,
        &gen,
        |obs| {
            // same histogram names and counts, wildly different values —
            // the digest hashes identities and counts, never timings
            let a = Registry::new();
            let b = Registry::new();
            for (i, &v) in obs.iter().enumerate() {
                a.observe("request_wall_ns", v);
                b.observe("request_wall_ns", u64::try_from(i).expect("index fits u64"));
            }
            a.incr("requests", 7);
            b.incr("requests", 7);
            a.set_gauge("queue_peak", 3);
            b.set_gauge("queue_peak", 9999);
            if a.counter_digest() != b.counter_digest() {
                return Err("digest depended on observed values or gauges".to_owned());
            }
            // ...but one extra observation must change it
            b.observe("request_wall_ns", 0);
            if a.counter_digest() == b.counter_digest() {
                return Err("digest ignored the histogram count".to_owned());
            }
            Ok(())
        },
    );
}
