//! The analyzer's core contract: on every tested node, input and compiler
//! configuration, the static WCET bound dominates the simulator's measured
//! cycle count — including cold and warm caches.

use vericomp::core::OptLevel;
use vericomp::dataflow::fleet;
use vericomp::harness::{analyze_wcet, compile_node};
use vericomp::mach::Simulator;
use vericomp_testkit::fleet as rfleet;

#[test]
fn wcet_dominates_simulation_on_named_suite() {
    for node in fleet::named_suite() {
        for level in OptLevel::all() {
            let binary = compile_node(&node, level)
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let report = analyze_wcet(&binary, "step")
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let mut sim = Simulator::new(binary);
            // several activations with varied inputs; caches warm up, the
            // bound must hold regardless
            for step in 0..4u32 {
                for port in 0..8 {
                    sim.set_io_f64(port, f64::from(step * 7 + port) * 1.37 - 9.0);
                }
                let outcome = sim
                    .run(10_000_000)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
                assert!(
                    report.wcet >= outcome.stats.cycles,
                    "{} at {level}: WCET {} < measured {} (step {step})",
                    node.name(),
                    report.wcet,
                    outcome.stats.cycles,
                );
            }
        }
    }
}

#[test]
fn wcet_dominates_simulation_on_random_fleet() {
    let cfg = rfleet::FleetConfig {
        nodes: 12,
        min_symbols: 15,
        max_symbols: 45,
        seed: 42,
    };
    for node in rfleet::random_fleet(&cfg) {
        for level in [OptLevel::PatternO0, OptLevel::Verified] {
            let binary = compile_node(&node, level)
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let report = analyze_wcet(&binary, "step")
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
            let mut sim = Simulator::new(binary);
            for step in 0..3u32 {
                for port in 0..4 {
                    sim.set_io_f64(port, f64::from(step) * 2.5 - f64::from(port));
                }
                for g in sim.program().globals.clone() {
                    if g.name.contains("_in") {
                        let _ = sim.set_global_f64(&g.name, 0, f64::from(step) - 0.5);
                    }
                }
                let outcome = sim
                    .run(10_000_000)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
                assert!(
                    report.wcet >= outcome.stats.cycles,
                    "{} at {level}: WCET {} < measured {}",
                    node.name(),
                    report.wcet,
                    outcome.stats.cycles
                );
            }
        }
    }
}

#[test]
fn wcet_not_absurdly_loose_on_straightline_nodes() {
    // For loop-free, acquisition-free nodes the bound should be within a
    // small factor of a cold-cache measurement (sanity against gross
    // pessimism; precision is part of the paper's story).
    for node in fleet::named_suite() {
        let has_loops_or_io = node.instances().iter().any(|i| {
            matches!(
                i.kind,
                vericomp::dataflow::Symbol::Lookup1dSearch { .. }
                    | vericomp::dataflow::Symbol::Acquisition(_)
            )
        });
        if has_loops_or_io {
            continue;
        }
        let binary = compile_node(&node, OptLevel::Verified).expect("compiles");
        let report = analyze_wcet(&binary, "step").expect("analyzable");
        let mut sim = Simulator::new(binary);
        let outcome = sim.run(10_000_000).expect("runs");
        assert!(
            report.wcet <= outcome.stats.cycles * 4 + 200,
            "{}: WCET {} vs cold measurement {} — suspiciously loose",
            node.name(),
            report.wcet,
            outcome.stats.cycles
        );
    }
}
