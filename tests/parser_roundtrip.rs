//! The MiniC concrete syntax is a faithful exchange format: every program
//! the automatic code generator emits pretty-prints to C that parses back
//! to the identical AST — so generated sources can be reviewed, stored and
//! re-ingested like the paper's C files.

use vericomp::dataflow::fleet;
use vericomp::minic::{parse, pretty, typeck};
use vericomp_testkit::fleet::{random_fleet, FleetConfig};

#[test]
fn named_suite_pretty_parse_identity() {
    for node in fleet::named_suite() {
        let p1 = node.to_minic();
        let text = pretty::program_to_c(&p1);
        let p2 = parse::parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", node.name()));
        assert_eq!(p1, p2, "{} does not round-trip", node.name());
        typeck::check(&p2).unwrap_or_else(|e| panic!("{}: {e}", node.name()));
    }
}

#[test]
fn random_fleet_pretty_parse_identity() {
    let cfg = FleetConfig {
        nodes: 25,
        min_symbols: 10,
        max_symbols: 60,
        seed: 2024,
    };
    for node in random_fleet(&cfg) {
        let p1 = node.to_minic();
        let text = pretty::program_to_c(&p1);
        let p2 = parse::parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", node.name()));
        assert_eq!(p1, p2, "{} does not round-trip", node.name());
    }
}

#[test]
fn hand_written_source_compiles_and_runs() {
    // The full path from C text: parse → typecheck → compile → simulate.
    let src = r#"
        double target;
        double position;
        double integ;
        void step() {
            double err;
            err = (target - position);
            integ = (integ + (0.1 * err));
            if (integ > 5.0) { integ = 5.0; }
            if (integ < -5.0) { integ = -5.0; }
            position = (position + ((0.5 * err) + integ));
            __io_write(3, position);
        }
    "#;
    let prog = parse::parse(src).expect("parses");
    typeck::check(&prog).expect("typechecks");
    let binary = vericomp::core::Compiler::new(vericomp::core::OptLevel::Verified)
        .compile(&prog, "step")
        .expect("compiles");
    let mut sim = vericomp::mach::Simulator::new(binary);
    sim.set_global_f64("target", 0, 4.0).expect("global exists");
    for _ in 0..50 {
        sim.run(1_000_000).expect("runs");
    }
    let pos = sim.global_f64("position", 0).expect("global exists");
    assert!(
        (pos - 4.0).abs() < 0.5,
        "controller should approach the target, got {pos}"
    );
}
