//! Whole-application tests: the 26-node named suite linked into a single
//! image with a cyclic executive — the shape of the paper's actual flight
//! software (many nodes, executed every cycle, compiled together).

use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::{fleet, Application};
use vericomp::mach::Simulator;
use vericomp::minic::interp::{Interp, Value};

fn suite_app() -> Application {
    Application::new("fcs", fleet::named_suite()).expect("unique node names")
}

#[test]
fn application_compiles_runs_and_is_differentially_correct() {
    let app = suite_app();
    let src = app.to_minic().expect("assembles");
    vericomp::minic::typeck::check(&src).expect("typechecks");

    for level in [OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull] {
        let binary = Compiler::new(level)
            .compile(&src, "step")
            .expect("compiles");
        let mut interp = Interp::new(&src);
        let mut sim = Simulator::new(binary);
        for step in 0..3u32 {
            for port in 0..8 {
                let v = f64::from(step * 5 + port) * 0.83 - 3.0;
                interp.set_io(port, v);
                sim.set_io_f64(port, v);
            }
            interp.call("step", &[]).expect("interprets");
            sim.run(50_000_000).expect("simulates");
            for g in &src.globals {
                if let vericomp::minic::ast::GlobalDef::ScalarF64(_) = g.def {
                    let a = match interp.global(&g.name).expect("declared") {
                        Value::F(v) => v,
                        _ => unreachable!(),
                    };
                    let b = sim.global_f64(&g.name, 0).expect("declared");
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{level} step {step}: {} differs ({a} vs {b})",
                        g.name
                    );
                }
            }
        }
    }
}

#[test]
fn application_wcet_is_interprocedural_and_sound() {
    let app = suite_app();
    let src = app.to_minic().expect("assembles");
    let binary = Compiler::new(OptLevel::Verified)
        .compile(&src, "step")
        .expect("compiles");
    let report = vericomp::harness::analyze_wcet(&binary, "step").expect("analyzable");

    // every node's step function was analyzed as a callee
    assert_eq!(report.callees.len(), app.nodes().len());
    // the application bound covers the sum of the work: at least the sum of
    // the callee bounds' dominating parts is within it (weak sanity), and it
    // dominates a concrete cold run (the real contract)
    let mut sim = Simulator::new(binary);
    for port in 0..8 {
        sim.set_io_f64(port, 2.5);
    }
    let out = sim.run(100_000_000).expect("runs");
    assert!(
        report.wcet >= out.stats.cycles,
        "application WCET {} < measured {}",
        report.wcet,
        out.stats.cycles
    );
    // and it should not be more than ~4x a cold run of this loop-light code
    assert!(
        report.wcet <= out.stats.cycles * 4,
        "application WCET {} looks unreasonably loose vs {}",
        report.wcet,
        out.stats.cycles
    );
}

#[test]
fn application_wcet_splits_by_node() {
    // per-callee bounds give the per-node WCET decomposition the process
    // needs for scheduling (cheap aiT-style per-task analyses)
    let app = suite_app();
    let src = app.to_minic().expect("assembles");
    let binary = Compiler::new(OptLevel::Verified)
        .compile(&src, "step")
        .expect("compiles");
    let report = vericomp::harness::analyze_wcet(&binary, "step").expect("analyzable");
    let acquisition = report
        .callees
        .get("airdata_acquisition_step")
        .copied()
        .expect("callee");
    let logic = report
        .callees
        .get("gear_logic_step")
        .copied()
        .expect("callee");
    assert!(
        acquisition > logic,
        "acquisition-bound node ({acquisition}) must dominate pure logic ({logic})"
    );
}
