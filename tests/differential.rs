//! Differential testing: the compiled binary running on the machine model
//! must agree with the MiniC reference interpreter on outputs, actuator
//! commands and annotation traces — for every compiler configuration, over
//! generated nodes and randomized inputs (including non-finite values).
//!
//! This is the executable stand-in for CompCert's semantic-preservation
//! theorem (DESIGN.md, E5).

use vericomp::core::OptLevel;
use vericomp::dataflow::fleet;
use vericomp::harness::differential_run;
use vericomp_testkit::fleet::{random_fleet, FleetConfig};
use vericomp_testkit::prop::{check, gens, Config};

#[test]
fn named_suite_differential_all_levels() {
    for node in fleet::named_suite() {
        for level in OptLevel::all() {
            differential_run(&node, level, 3, |step, k| {
                f64::from(step * 11 + 3 * k) * 0.619 - 7.0
            })
            .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
        }
    }
}

#[test]
fn non_finite_inputs_preserved() {
    // NaN and infinities must flow identically through both semantics
    // (the IEEE comparison corner cases are where compilers break).
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        1e308,
        5e-324,
    ];
    for node in fleet::named_suite().into_iter().take(8) {
        for level in [OptLevel::PatternO0, OptLevel::Verified, OptLevel::OptFull] {
            differential_run(&node, level, specials.len() as u32, |step, k| {
                specials[((step + k) as usize) % specials.len()]
            })
            .unwrap_or_else(|e| panic!("{} at {level}: {e}", node.name()));
        }
    }
}

#[test]
fn random_nodes_random_inputs() {
    let inputs = gens::pair(gens::any_u64(), gens::f64_range(0.01, 1000.0));
    check(
        "random_nodes_random_inputs",
        &Config::with_cases(24),
        &inputs,
        |&(seed, scale)| {
            let cfg = FleetConfig {
                nodes: 1,
                min_symbols: 10,
                max_symbols: 40,
                seed,
            };
            let node = random_fleet(&cfg).remove(0);
            for level in OptLevel::all() {
                differential_run(&node, level, 2, |step, k| {
                    (f64::from(step) - 0.5) * scale + f64::from(k) * 0.37
                })
                .map_err(|e| format!("node seed {seed} at {level}: {e}"))?;
            }
            Ok(())
        },
    );
}
