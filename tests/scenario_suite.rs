//! Scenario suite gate: generated multi-rate applications must satisfy
//! their **joint** functional + WCET-budget properties through the front
//! door (`Scenario::to_sweep_spec` → `Pipeline::run_sweep` →
//! `Scenario::check`), over-budget modes must come back as infeasible
//! verdicts rather than panics, and the property harness must catch and
//! shrink a seeded over-budget mode switch to a minimal counterexample.

use std::panic::AssertUnwindSafe;

use vericomp::arch::MachineConfig;
use vericomp::core::OptLevel;
use vericomp::harness;
use vericomp::minic::interp::{Interp, Value};
use vericomp::pipeline::Pipeline;
use vericomp::testkit::prop::{self, Config};
use vericomp::testkit::scenario::{self, Scenario, ScenarioConfig};

/// The scenario suite's joint property: every generated unit typechecks
/// and executes one activation in the reference interpreter, the sweep's
/// translation validators accept every verified cell, and every frame of
/// every mode fits its minor-cycle budget on both machines under both the
/// cheapest and the baseline config.
fn joint_property(pipeline: &Pipeline, cfg: &ScenarioConfig) -> Result<(), String> {
    let scn = Scenario::generate(cfg).map_err(|e| format!("generate: {e}"))?;

    // functional side: units are well-typed and executable at source level
    for unit in scn.units() {
        let p = unit.node.to_minic();
        vericomp::minic::typeck::check(&p).map_err(|e| format!("{}: typeck: {e}", unit.name))?;
        let mut it = Interp::new(&p);
        for g in &p.globals {
            if g.name.contains("_in") {
                let _ = it.set_global(&g.name, Value::F(1.5));
            }
        }
        it.call("step", &[])
            .map_err(|e| format!("{}: interp: {e}", unit.name))?;
    }

    // WCET side: compile through the front door on the worst supported
    // machine/config pairs the budget model is calibrated against
    let spec = scn
        .to_sweep_spec()
        .levels([OptLevel::PatternO0, OptLevel::Verified])
        .machine("mpc755", &MachineConfig::mpc755())
        .machine("tiny-caches", &MachineConfig::tiny_caches());
    let build = harness::compile_scenario_with(pipeline, &scn, spec)
        .map_err(|e| format!("pipeline: {e}"))?;

    for cell in build.sweep.cells() {
        if cell.config == "verified" && !cell.outcome.artifact.verdict.allocation_checked {
            return Err(format!(
                "{}/{}/{}: verified cell without validator evidence",
                cell.unit, cell.config, cell.machine
            ));
        }
    }
    if !build.report.feasible() {
        let rows: Vec<String> = build
            .report
            .infeasible()
            .map(|v| {
                format!(
                    "{} frame {} on {}/{}: wcet {} > budget {}",
                    v.mode, v.frame, v.config, v.machine, v.wcet, v.budget
                )
            })
            .collect();
        return Err(format!(
            "budget model unsound for this seed: {}",
            rows.join("; ")
        ));
    }
    Ok(())
}

#[test]
fn generated_scenarios_satisfy_their_joint_properties() {
    // one shared in-memory pipeline: shrink candidates and nearby cases
    // re-use cached artifacts, so the property stays debug-test sized
    let pipeline = Pipeline::in_memory();
    prop::check(
        "scenario_joint_property",
        &Config::with_cases(4).with_regressions("tests/scenario_suite.proptest-regressions"),
        &scenario::gens::small(),
        |cfg| joint_property(&pipeline, cfg),
    );
}

#[test]
fn over_budget_mode_is_reported_infeasible_not_panicked() {
    let cfg = ScenarioConfig::builder()
        .name("overb")
        .tasks(5)
        .symbols(6, 14)
        .frames(4)
        .seed(0xB07)
        .override_budget("degraded", 1)
        .build()
        .expect("valid config");
    let scn = Scenario::generate(&cfg).expect("generates");
    let build = harness::compile_scenario(
        &scn,
        &vericomp::pipeline::PipelineOptions::builder()
            .jobs(4)
            .build()
            .expect("valid options"),
    )
    .expect("an over-budget mode must not fail the pipeline");

    assert!(!build.report.feasible());
    // the executive prologue alone exceeds a 1-cycle budget, so every
    // degraded frame is over — and only degraded frames are
    assert!(build.report.infeasible_count() >= cfg.minor_frames);
    for v in build.report.infeasible() {
        assert_eq!(v.mode, "degraded", "unexpected infeasible row: {v:?}");
        assert_eq!(v.budget, 1);
        assert!(v.wcet >= scenario::EXEC_OVERHEAD);
    }
    // other modes still fit
    assert!(build
        .report
        .verdicts
        .iter()
        .filter(|v| v.mode != "degraded")
        .all(|v| v.feasible()));
    let rendered = build.report.render();
    assert!(rendered.contains("OVER by"), "render lost the OVER rows");
    assert!(rendered.contains("FITS"), "render lost the FITS rows");
}

#[test]
fn harness_catches_and_shrinks_a_seeded_over_budget_mode_switch() {
    // seed the generator with configs whose degraded budget is forced to
    // one cycle: every sampled scenario violates the joint property, and
    // the harness must shrink the counterexample to the structural minimum
    // (Gen::map drops the shrinker, so re-attach the structural one — the
    // shrink candidates clone the mode list and keep the sabotage)
    let inner = scenario::gens::small();
    let shrinker = scenario::gens::small();
    let sabotaged = prop::Gen::new(move |rng| {
        let mut cfg = inner.sample(rng);
        for mode in &mut cfg.modes {
            if mode.name == "degraded" {
                mode.budget_override = Some(1);
            }
        }
        cfg
    })
    .with_shrink(move |cfg| shrinker.shrink(cfg));
    let pipeline = Pipeline::in_memory();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        prop::check(
            "over_budget_mode_switch",
            &Config {
                cases: 1,
                max_shrink_evals: 32,
                ..Config::default()
            },
            &sabotaged,
            |cfg| joint_property(&pipeline, cfg),
        );
    }));
    let msg = *result
        .expect_err("the harness must catch the over-budget mode switch")
        .downcast::<String>()
        .expect("harness panics with a String");
    assert!(
        msg.contains("minimal counterexample"),
        "no shrink report in: {msg}"
    );
    assert!(
        msg.contains("replay: TESTKIT_SEED="),
        "no replay incantation in: {msg}"
    );
    assert!(
        msg.contains("budget model unsound") || msg.contains("wcet"),
        "failure is not the budget property: {msg}"
    );
    // greedy shrinking reaches the structural minimum: a single task on a
    // single-frame major cycle (mode list still contains the sabotaged
    // degraded mode, or the property would pass)
    assert!(
        msg.contains("tasks: 1") && msg.contains("minor_frames: 1"),
        "counterexample not minimal: {msg}"
    );
}

#[test]
fn scenario_digest_is_stable_for_a_pinned_seed() {
    // the scenario analog of the golden fleet digest: task generation is
    // keyed per-task (mix(seed, i)), so this pins the whole derivation —
    // census draws, period/offset draws, mode-variant rewrites and unit
    // dedup. If it moves, budgets and every scenario bench shift too.
    let cfg = ScenarioConfig::builder()
        .tasks(6)
        .seed(0x90_1DEA)
        .build()
        .expect("valid config");
    let scn = Scenario::generate(&cfg).expect("generates");
    assert_eq!(
        scn.source_digest().to_string(),
        "4bff255332345ed6e4a82d41f4fde24d",
        "pinned scenario derivation drifted"
    );
}
