//! Incremental-analyzer gate: after mutating one function of a seeded
//! fleet, a warm [`Analyzer`] session must (a) re-derive bounds
//! bit-identical to a from-scratch session on the mutated fleet, and
//! (b) serve every *untouched* function from its fact cache — zero fresh
//! fixpoints, at least one cache replay per unchanged program.

use vericomp::core::OptLevel;
use vericomp::harness;
use vericomp::testkit::fleet::{self, FleetConfig};
use vericomp::testkit::prop::{self, Config, Gen};
use vericomp::wcet::{AnalysisRequest, Analyzer, WcetReport};

/// One property case: a seeded fleet plus which member gets mutated.
#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    nodes: usize,
    mutant: usize,
}

fn cases() -> Gen<Case> {
    Gen::new(|rng| {
        let nodes = 2 + (rng.next_u64() % 5) as usize; // 2..=6
        Case {
            seed: rng.next_u64(),
            nodes,
            mutant: (rng.next_u64() % nodes as u64) as usize,
        }
    })
    .with_shrink(|c| {
        let mut out = Vec::new();
        if c.nodes > 2 {
            out.push(Case {
                nodes: c.nodes - 1,
                mutant: c.mutant.min(c.nodes - 2),
                ..*c
            });
        }
        if c.mutant > 0 {
            out.push(Case { mutant: 0, ..*c });
        }
        if c.seed > 0 {
            out.push(Case {
                seed: c.seed / 2,
                ..*c
            });
        }
        out
    })
}

fn generate(seed: u64, nodes: usize) -> Vec<vericomp::dataflow::Node> {
    let cfg = FleetConfig::builder()
        .nodes(nodes)
        .symbols(4, 10)
        .seed(seed)
        .build()
        .expect("valid fleet config");
    fleet::random_fleet(&cfg)
}

fn property(case: &Case) -> Result<(), String> {
    let nodes = generate(case.seed, case.nodes);
    // same positional name, freshly rolled body — "one function changed"
    let donor = generate(case.seed ^ 0x5eed_d1f7, case.nodes);
    let src = |n: &vericomp::dataflow::Node| vericomp::minic::pretty::program_to_c(&n.to_minic());
    let mutated_differs = src(&donor[case.mutant]) != src(&nodes[case.mutant]);

    let compile = |n: &vericomp::dataflow::Node| {
        harness::compile_node(n, OptLevel::Verified).map_err(|e| format!("compile: {e}"))
    };
    let programs: Vec<_> = nodes.iter().map(compile).collect::<Result<_, _>>()?;
    let mut mutated = programs.clone();
    mutated[case.mutant] = compile(&donor[case.mutant])?;

    // cold pass primes the session fact cache with the original fleet
    let session = Analyzer::default();
    for p in &programs {
        session
            .analyze(&AnalysisRequest::new(p, "step"))
            .map_err(|e| format!("cold analyze: {e}"))?;
    }

    // incremental pass over the mutated fleet through the warm session
    let mut incremental: Vec<WcetReport> = Vec::new();
    for (i, p) in mutated.iter().enumerate() {
        let a = session
            .analyze(&AnalysisRequest::new(p, "step"))
            .map_err(|e| format!("incremental analyze: {e}"))?;
        if i != case.mutant {
            if a.functions_analyzed != 0 {
                return Err(format!(
                    "untouched program {i} re-ran {} fixpoints",
                    a.functions_analyzed
                ));
            }
            if a.functions_reused == 0 {
                return Err(format!("untouched program {i} reports no cache reuse"));
            }
        } else if mutated_differs && a.functions_analyzed == 0 {
            return Err("mutated program was served entirely from cache".to_string());
        }
        incremental.push(a.into_report());
    }

    // from-scratch session on the mutated fleet: bounds must be identical
    let fresh = Analyzer::default();
    for (i, p) in mutated.iter().enumerate() {
        let scratch = fresh
            .analyze(&AnalysisRequest::new(p, "step"))
            .map_err(|e| format!("scratch analyze: {e}"))?
            .into_report();
        if scratch != incremental[i] {
            return Err(format!(
                "program {i}: incremental bound diverged from scratch \
                 ({} vs {})",
                incremental[i].wcet, scratch.wcet
            ));
        }
    }
    Ok(())
}

#[test]
fn incremental_reanalysis_matches_from_scratch_bit_exactly() {
    prop::check(
        "analyzer_incremental",
        &Config::with_cases(8).with_regressions("tests/analyzer_incremental.proptest-regressions"),
        &cases(),
        property,
    );
}

#[test]
fn warm_session_replays_an_unchanged_fleet_without_any_fixpoint() {
    let nodes = generate(0xFAC7, 4);
    let session = Analyzer::default();
    let programs: Vec<_> = nodes
        .iter()
        .map(|n| harness::compile_node(n, OptLevel::Verified).expect("compiles"))
        .collect();
    let cold: Vec<_> = programs
        .iter()
        .map(|p| {
            session
                .analyze(&AnalysisRequest::new(p, "step"))
                .expect("analyzes")
                .into_report()
        })
        .collect();
    let analyzed_after_cold = session.stats().functions_analyzed;
    assert!(analyzed_after_cold > 0);
    assert!(session.stats().facts_cached > 0);

    for (p, want) in programs.iter().zip(&cold) {
        let a = session
            .analyze(&AnalysisRequest::new(p, "step"))
            .expect("analyzes");
        assert_eq!(a.functions_analyzed, 0, "warm replay ran a fixpoint");
        assert!(a.functions_reused >= 1);
        assert_eq!(&a.into_report(), want);
    }
    assert_eq!(
        session.stats().functions_analyzed,
        analyzed_after_cold,
        "warm pass grew the fresh-analysis counter"
    );
}
