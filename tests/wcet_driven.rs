//! WCET-driven compilation (paper §4 / WCC-style): the driver must return
//! the candidate with the smallest analyzed bound, never exceed the plain
//! verified configuration, and stay semantics-preserving.

use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::fleet;
use vericomp::harness::{compile_node, compile_wcet_driven, wcet_driven_candidates};
use vericomp::mach::Simulator;

#[test]
fn sweep_driver_matches_the_serial_candidate_loop_bit_exactly() {
    // the driver is one pipeline sweep since the matrix API; it must
    // still produce exactly what a plain loop over the candidates does
    for node in fleet::named_suite().into_iter().take(3) {
        let src = node.to_minic();
        let (best, report) =
            compile_wcet_driven(&src, "step").unwrap_or_else(|e| panic!("{}: {e}", node.name()));

        let compiler = Compiler::new(OptLevel::Verified);
        let mut serial_best: Option<(u64, Vec<u32>)> = None;
        for ((name, passes), evaluated) in wcet_driven_candidates().iter().zip(&report) {
            let bin = compiler
                .compile_with_passes(&src, "step", passes)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()));
            let wcet = vericomp::wcet::analyze(&bin, "step")
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()))
                .wcet;
            assert_eq!(evaluated.name, *name, "{}", node.name());
            assert_eq!(evaluated.wcet, wcet, "{}/{name}", node.name());
            if serial_best.as_ref().map(|(w, _)| wcet < *w).unwrap_or(true) {
                serial_best = Some((wcet, bin.encode_text()));
            }
        }
        let (_, serial_text) = serial_best.expect("five candidates");
        assert_eq!(
            best.encode_text(),
            serial_text,
            "{}: chosen binary differs from the serial loop's choice",
            node.name()
        );
    }
}

#[test]
fn driver_never_worse_than_verified() {
    for node in fleet::named_suite().into_iter().take(10) {
        let src = node.to_minic();
        let (best, report) =
            compile_wcet_driven(&src, "step").unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let best_wcet = vericomp::wcet::analyze(&best, "step")
            .expect("analyzable")
            .wcet;

        let verified = compile_node(&node, OptLevel::Verified).expect("compiles");
        let verified_wcet = vericomp::wcet::analyze(&verified, "step")
            .expect("analyzable")
            .wcet;

        assert!(
            best_wcet <= verified_wcet,
            "{}: driver chose {} over verified {}",
            node.name(),
            best_wcet,
            verified_wcet
        );
        assert_eq!(report.len(), 5, "{}", node.name());
        assert_eq!(
            report.iter().map(|c| c.wcet).min(),
            Some(best_wcet),
            "{}: report minimum must be the chosen binary",
            node.name()
        );
    }
}

#[test]
fn driver_result_is_semantics_preserving() {
    let node = fleet::named_suite()
        .into_iter()
        .find(|n| n.name() == "pitch_normal_law")
        .expect("suite node");
    let src = node.to_minic();
    let (best, _) = compile_wcet_driven(&src, "step").expect("drives");

    // compare against the verified binary activation by activation
    let verified = compile_node(&node, OptLevel::Verified).expect("compiles");
    let mut a = Simulator::new(best);
    let mut b = Simulator::new(verified);
    for step in 0..5u32 {
        for port in 0..4 {
            let v = f64::from(step * 3 + port) * 0.41 - 1.0;
            a.set_io_f64(port, v);
            b.set_io_f64(port, v);
        }
        a.run(1_000_000).expect("runs");
        b.run(1_000_000).expect("runs");
        let ga = a.global_f64("pitch_normal_law_surface", 0).expect("output");
        let gb = b.global_f64("pitch_normal_law_surface", 0).expect("output");
        assert_eq!(ga.to_bits(), gb.to_bits(), "step {step}");
    }
}
