//! WCET-driven compilation (paper §4 / WCC-style): the driver is now the
//! pipeline's lattice search seeded with the fixed candidates. It must
//! report every seed at the bound a serial candidate loop computes, never
//! return a binary worse than any seed, resolve ties exactly like the old
//! fixed-candidate driver (seeds probe first, first minimum wins), and
//! stay semantics-preserving.

use vericomp::core::{Compiler, OptLevel, PassConfig};
use vericomp::dataflow::fleet;
use vericomp::harness::{compile_node, compile_wcet_driven, wcet_driven_candidates};
use vericomp::mach::Simulator;

#[test]
fn seed_frontier_covers_every_full_optimizer_extra_in_isolation() {
    let candidates = wcet_driven_candidates();
    assert_eq!(candidates.len(), 6);
    let verified = PassConfig::for_level(OptLevel::Verified);
    let full = PassConfig::for_level(OptLevel::OptFull);
    // each extra of the full optimizer appears as a single-extra seed
    for (extra, on) in [
        ("verified+tunnel", full.tunnel),
        ("verified+sda", full.sda),
        ("verified+sched", full.schedule),
        ("verified+strength", full.strength),
    ] {
        assert!(on, "{extra}: not a full-optimizer extra any more?");
        let (_, passes) = candidates
            .iter()
            .find(|(name, _)| *name == extra)
            .unwrap_or_else(|| panic!("candidate {extra} missing"));
        assert!(passes.validators, "{extra}: validators must stay pinned");
        // exactly the verified baseline plus (at most) that one extra
        let expected = match extra {
            "verified+tunnel" => PassConfig {
                tunnel: true,
                ..verified
            },
            "verified+sda" => PassConfig {
                sda: true,
                ..verified
            },
            "verified+sched" => PassConfig {
                schedule: true,
                ..verified
            },
            _ => PassConfig {
                strength: true,
                ..verified
            },
        };
        assert_eq!(*passes, expected, "{extra}: unexpected pass selection");
    }
}

#[test]
fn search_driver_pins_the_serial_candidate_loop_tie_break() {
    // the driver is a lattice search seeded with the fixed candidates; it
    // must (a) report every seed at exactly the bound a plain serial loop
    // computes, (b) never choose worse than the loop's best, and (c) when
    // no expanded config strictly improves, return bit-for-bit the loop's
    // choice (seeds probe first, first minimum wins ties)
    for node in fleet::named_suite().into_iter().take(3) {
        let src = node.to_minic();
        let (best, report) =
            compile_wcet_driven(&src, "step").unwrap_or_else(|e| panic!("{}: {e}", node.name()));

        let compiler = Compiler::new(OptLevel::Verified);
        let mut serial_best: Option<(u64, Vec<u32>)> = None;
        for ((name, passes), evaluated) in wcet_driven_candidates().iter().zip(&report) {
            let bin = compiler
                .compile_with_passes(&src, "step", passes)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()));
            let wcet = vericomp::harness::analyze_wcet(&bin, "step")
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", node.name()))
                .wcet;
            assert_eq!(evaluated.name, *name, "{}", node.name());
            assert_eq!(evaluated.wcet, wcet, "{}/{name}", node.name());
            if serial_best.as_ref().map(|(w, _)| wcet < *w).unwrap_or(true) {
                serial_best = Some((wcet, bin.encode_text()));
            }
        }
        let (serial_wcet, serial_text) = serial_best.expect("six candidates");
        let best_wcet = vericomp::harness::analyze_wcet(&best, "step")
            .expect("analyzable")
            .wcet;
        assert!(
            best_wcet <= serial_wcet,
            "{}: search chose {best_wcet} over the candidate loop's {serial_wcet}",
            node.name()
        );
        if best_wcet == serial_wcet {
            assert_eq!(
                best.encode_text(),
                serial_text,
                "{}: tie at {serial_wcet} must resolve to the serial loop's choice",
                node.name()
            );
        }
    }
}

#[test]
fn driver_never_worse_than_verified() {
    for node in fleet::named_suite().into_iter().take(10) {
        let src = node.to_minic();
        let (best, report) =
            compile_wcet_driven(&src, "step").unwrap_or_else(|e| panic!("{}: {e}", node.name()));
        let best_wcet = vericomp::harness::analyze_wcet(&best, "step")
            .expect("analyzable")
            .wcet;

        let verified = compile_node(&node, OptLevel::Verified).expect("compiles");
        let verified_wcet = vericomp::harness::analyze_wcet(&verified, "step")
            .expect("analyzable")
            .wcet;

        assert!(
            best_wcet <= verified_wcet,
            "{}: driver chose {} over verified {}",
            node.name(),
            best_wcet,
            verified_wcet
        );
        // the report carries the six seeds plus the search's expansions
        assert!(report.len() >= 6, "{}", node.name());
        assert_eq!(
            report.iter().map(|c| c.wcet).min(),
            Some(best_wcet),
            "{}: report minimum must be the chosen binary",
            node.name()
        );
        // the verified preset already tunnels, so the single-extra tunnel
        // seed shares its lattice point and must report the same bound
        let wcet_of = |name: &str| {
            report
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{}: seed {name} missing", node.name()))
                .wcet
        };
        assert_eq!(
            wcet_of("verified"),
            wcet_of("verified+tunnel"),
            "{}",
            node.name()
        );
    }
}

#[test]
fn driver_result_is_semantics_preserving() {
    let node = fleet::named_suite()
        .into_iter()
        .find(|n| n.name() == "pitch_normal_law")
        .expect("suite node");
    let src = node.to_minic();
    let (best, _) = compile_wcet_driven(&src, "step").expect("drives");

    // compare against the verified binary activation by activation
    let verified = compile_node(&node, OptLevel::Verified).expect("compiles");
    let mut a = Simulator::new(best);
    let mut b = Simulator::new(verified);
    for step in 0..5u32 {
        for port in 0..4 {
            let v = f64::from(step * 3 + port) * 0.41 - 1.0;
            a.set_io_f64(port, v);
            b.set_io_f64(port, v);
        }
        a.run(1_000_000).expect("runs");
        b.run(1_000_000).expect("runs");
        let ga = a.global_f64("pitch_normal_law_surface", 0).expect("output");
        let gb = b.global_f64("pitch_normal_law_surface", 0).expect("output");
        assert_eq!(ga.to_bits(), gb.to_bits(), "step {step}");
    }
}
