//! Integration tests of the §3.4 annotation pipeline across the whole
//! toolchain: source builtin → RTL pro-forma effect → marker + table in the
//! binary → annotation file → value-analysis constraint → loop bound.

use vericomp::core::{Compiler, OptLevel};
use vericomp::dataflow::NodeBuilder;
use vericomp::harness;
use vericomp::wcet::annot::AnnotationFile;
use vericomp::wcet::{
    Analysis, AnalysisError, AnalysisOptions, AnalysisRequest, Analyzer, WcetReport,
};

fn analyze_with(
    program: &vericomp::arch::Program,
    func: &str,
    opts: &AnalysisOptions,
) -> Result<WcetReport, AnalysisError> {
    Analyzer::new(*opts)
        .analyze(&AnalysisRequest::new(program, func))
        .map(Analysis::into_report)
}

fn scan_node() -> vericomp::dataflow::Node {
    let mut b = NodeBuilder::new("annot");
    let x = b.global_input("annot_x");
    let y = b.lookup_search(
        x,
        vec![0.0, 1.0, 2.0, 4.0, 8.0, 16.0],
        vec![0.0, 1.0, 4.0, 16.0, 64.0, 256.0],
    );
    b.output("annot_y", y);
    b.build().expect("valid node")
}

#[test]
fn annotation_survives_every_configuration() {
    let node = scan_node();
    for level in OptLevel::all() {
        let binary = harness::compile_node(&node, level).expect("compiles");
        assert_eq!(binary.annotations.len(), 1, "{level}");
        let entry = &binary.annotations[0];
        assert!(
            entry.format.starts_with("1 <= %1 <= 4"),
            "{level}: {}",
            entry.format
        );
        // the marker instruction is present in the text section
        let markers = binary
            .code
            .iter()
            .filter(|i| matches!(i, vericomp::arch::Inst::Annot { .. }))
            .count();
        assert_eq!(markers, 1, "{level}");
        // the listing shows the paper-style resolved comment
        assert!(
            binary.disassemble().contains("# annotation: 1 <= "),
            "{level}"
        );
    }
}

#[test]
fn argument_location_shifts_from_memory_to_register() {
    let node = scan_node();
    let o0 = harness::compile_node(&node, OptLevel::PatternO0).expect("compiles");
    let verified = harness::compile_node(&node, OptLevel::Verified).expect("compiles");
    use vericomp::arch::program::ArgLoc;
    assert!(
        matches!(o0.annotations[0].args[0], ArgLoc::Stack(..)),
        "at -O0 the scan bound lives in a stack slot"
    );
    assert!(
        matches!(verified.annotations[0].args[0], ArgLoc::Gpr(_)),
        "after register allocation it lives in a register"
    );
}

#[test]
fn analysis_fails_without_and_succeeds_with_annotations() {
    let node = scan_node();
    for level in OptLevel::all() {
        let binary = harness::compile_node(&node, level).expect("compiles");
        match analyze_with(
            &binary,
            "step",
            &AnalysisOptions {
                use_annotations: false,
            },
        ) {
            Err(AnalysisError::UnboundedLoop { .. }) => {}
            other => panic!("{level}: expected unbounded loop, got {other:?}"),
        }
        let report = analyze_with(
            &binary,
            "step",
            &AnalysisOptions {
                use_annotations: true,
            },
        )
        .unwrap_or_else(|e| panic!("{level}: {e}"));
        assert_eq!(
            report.loop_bounds.values().copied().max(),
            Some(4),
            "{level}"
        );
    }
}

#[test]
fn annotation_file_text_roundtrip_through_all_levels() {
    let node = scan_node();
    for level in OptLevel::all() {
        let binary = harness::compile_node(&node, level).expect("compiles");
        let file = AnnotationFile::from_program(&binary);
        let text = file.to_text();
        let parsed =
            AnnotationFile::parse(&text).unwrap_or_else(|e| panic!("{level}: {e}\n{text}"));
        assert_eq!(parsed, file, "{level}");
        assert_eq!(parsed.entries[&0].constraints.len(), 1, "{level}");
        assert_eq!(parsed.entries[&0].constraints[0].lo, 1, "{level}");
        assert_eq!(parsed.entries[&0].constraints[0].hi, 4, "{level}");
    }
}

#[test]
fn wider_scan_configuration_raises_the_wcet() {
    // The annotated bound is a *fact about the configuration global*; a
    // larger table means a larger bound and a larger WCET.
    let small = {
        let mut b = NodeBuilder::new("annot");
        let x = b.global_input("annot_x");
        let y = b.lookup_search(x, vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]);
        b.output("annot_y", y);
        b.build().expect("valid")
    };
    let big = {
        let mut b = NodeBuilder::new("annot");
        let x = b.global_input("annot_x");
        let bp: Vec<f64> = (0..12).map(f64::from).collect();
        let y = b.lookup_search(x, bp.clone(), bp);
        b.output("annot_y", y);
        b.build().expect("valid")
    };
    let wcet = |node: &vericomp::dataflow::Node| {
        let bin = Compiler::new(OptLevel::Verified)
            .compile(&node.to_minic(), "step")
            .expect("compiles");
        vericomp::harness::analyze_wcet(&bin, "step")
            .expect("bounded")
            .wcet
    };
    assert!(wcet(&big) > wcet(&small));
}
