//! Parallel, cached sweep compilation of the paper-analog 26-node fleet —
//! and of generated multi-rate scenarios with schedulability verdicts.
//!
//! ```text
//! cargo run --release -p vericomp --bin compile_fleet -- \
//!     --jobs 8 --cache-dir target/vericomp-cache \
//!     --configs pattern-O0,verified,opt-full --machines mpc755,tiny-caches
//! ```
//!
//! Compiles every requested cell of the (nodes × configs × machines) sweep
//! matrix on the work-stealing pool, serving unchanged cells from the
//! content-addressed artifact cache, then prints per-cell WCET bounds, the
//! run's [`vericomp_pipeline::PipelineStats`] and the sweep output digest
//! (bit-identical runs print identical digests — the CI smoke compares
//! them across job counts and cache states).
//!
//! With `--scenario SEED` the node axis comes from the testkit scenario
//! suite instead of the curated fleet: a generated multi-rate cyclic
//! executive with nominal/degraded/fault-handling modes, lowered through
//! `Scenario::to_sweep_spec` and joined back into a schedulability report
//! whose `sched:` lines and digest are bit-identical across `--jobs`
//! counts. (The binary lives in the root crate because the scenario suite
//! sits in `vericomp-testkit`, which itself builds on the pipeline.)

use std::process::ExitCode;

use vericomp_arch::MachineConfig;
use vericomp_core::OptLevel;
use vericomp_dataflow::fleet;
use vericomp_pipeline::{
    normalize_spec, Client, Pipeline, PipelineOptions, RunTrace, SearchSpec, Span, SweepSpec,
};
use vericomp_testkit::scenario::{Scenario, ScenarioConfig};

struct Args {
    jobs: usize,
    cache_dir: Option<String>,
    configs: Vec<OptLevel>,
    machines: Vec<String>,
    nodes: Option<usize>,
    min_hit_rate: Option<f64>,
    search: bool,
    trace: Option<String>,
    profile: bool,
    scenario: Option<u64>,
    scenario_tasks: usize,
    scenario_frames: usize,
    scenario_overbudget: Option<String>,
    require_feasible: bool,
    reanalyze: bool,
    connect: Option<String>,
}

const USAGE: &str = "usage: compile_fleet [--jobs N] [--cache-dir DIR] [--configs LIST]
                     [--machines LIST] [--nodes N] [--min-hit-rate F] [--search]
                     [--trace FILE] [--profile] [--scenario SEED]
                     [--scenario-tasks N] [--scenario-frames N]
                     [--scenario-overbudget MODE] [--require-feasible]
                     [--reanalyze] [--connect SOCK]
  --jobs N          worker threads (default: available parallelism)
  --cache-dir DIR   persistent artifact cache (default: in-memory only)
  --configs LIST    comma-separated config axis out of
                    pattern-O0,opt-no-regalloc,verified,opt-full (default verified)
  --level L         deprecated alias for --configs with one entry
  --machines LIST   comma-separated machine axis out of mpc755,tiny-caches
                    (default mpc755)
  --nodes N         sweep only the first N suite nodes (default: all 26)
  --min-hit-rate F  fail unless the cache hit rate is at least F (0..1)
  --search          per-node WCET search over the PassConfig lattice instead
                    of a fixed-config sweep (single machine; --configs is
                    rejected — the search seeds its own frontier)
  --trace FILE      write the run's span trace as Chrome trace-event JSON
                    (load in Perfetto / chrome://tracing). With --connect
                    the sweep request carries a trace id and the daemon
                    returns its server-side spans for that request; the
                    file then holds one merged timeline — client spans as
                    pid 1, server spans as pid 2
  --profile         print the per-stage / per-pass profile table; its
                    counter digest is identical across --jobs values.
                    With --connect the table is server-derived instead:
                    lifetime per-stage nanos, store and parse-cache hit
                    rates and wire byte counters from the daemon's
                    ServerStats snapshot
  --scenario SEED   sweep a generated multi-rate scenario (testkit scenario
                    suite) instead of the curated fleet, and print its
                    schedulability report + digest (excludes --search/--nodes)
  --scenario-tasks N    periodic tasks in the scenario (default 12)
  --scenario-frames N   minor frames per major cycle, power of two (default 4)
  --scenario-overbudget MODE
                    force MODE's frame budget to 1 cycle — every non-empty
                    frame of that mode reports OVER (negative-test hook)
  --require-feasible    exit nonzero when any frame verdict is over budget
  --reanalyze       after the sweep, re-derive every unique artifact's WCET
                    through the warm session analyzer and check it against
                    the stored bound; prints a `reanalyze:` audit line and
                    appends analyze:reuse / analyze:fixpoint events to the
                    trace (exits nonzero on any bound mismatch)
  --connect SOCK    submit the sweep to a running vericomp_serve daemon at
                    SOCK instead of compiling locally; the served digests
                    are bit-identical to a solo run's (excludes --search,
                    --jobs and --cache-dir — those configure the server,
                    not the client)

environment overrides (used when the corresponding flag is absent):
  VERICOMP_JOBS       default for --jobs
  VERICOMP_CACHE_DIR  default for --cache-dir";

fn parse_level(s: &str) -> Option<OptLevel> {
    OptLevel::all().into_iter().find(|l| l.to_string() == s)
}

fn parse_machine(s: &str) -> Option<MachineConfig> {
    match s {
        "mpc755" => Some(MachineConfig::mpc755()),
        "tiny-caches" => Some(MachineConfig::tiny_caches()),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 0,
        cache_dir: None,
        configs: Vec::new(),
        machines: Vec::new(),
        nodes: None,
        min_hit_rate: None,
        search: false,
        trace: None,
        profile: false,
        scenario: None,
        scenario_tasks: 12,
        scenario_frames: 4,
        scenario_overbudget: None,
        require_feasible: false,
        reanalyze: false,
        connect: None,
    };
    let mut jobs_set = false;
    let mut cache_dir_set = false;
    let mut scenario_flags = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs an argument"))
        };
        match flag.as_str() {
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a number".to_string())?;
                jobs_set = true;
            }
            "--cache-dir" => {
                args.cache_dir = Some(value("--cache-dir")?);
                cache_dir_set = true;
            }
            "--configs" | "--level" => {
                for v in value(&flag)?.split(',') {
                    args.configs.push(
                        parse_level(v).ok_or_else(|| format!("unknown config `{v}`\n{USAGE}"))?,
                    );
                }
            }
            "--machines" => {
                for v in value("--machines")?.split(',') {
                    parse_machine(v).ok_or_else(|| format!("unknown machine `{v}`\n{USAGE}"))?;
                    args.machines.push(v.to_owned());
                }
            }
            "--nodes" => {
                args.nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|_| "--nodes needs a number".to_string())?,
                );
            }
            "--min-hit-rate" => {
                args.min_hit_rate = Some(
                    value("--min-hit-rate")?
                        .parse()
                        .map_err(|_| "--min-hit-rate needs a number in 0..1".to_string())?,
                );
            }
            "--search" => args.search = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--profile" => args.profile = true,
            "--scenario" => {
                args.scenario = Some(
                    value("--scenario")?
                        .parse()
                        .map_err(|_| "--scenario needs a u64 seed".to_string())?,
                );
            }
            "--scenario-tasks" => {
                args.scenario_tasks = value("--scenario-tasks")?
                    .parse()
                    .map_err(|_| "--scenario-tasks needs a number".to_string())?;
                scenario_flags = true;
            }
            "--scenario-frames" => {
                args.scenario_frames = value("--scenario-frames")?
                    .parse()
                    .map_err(|_| "--scenario-frames needs a number".to_string())?;
                scenario_flags = true;
            }
            "--scenario-overbudget" => {
                args.scenario_overbudget = Some(value("--scenario-overbudget")?);
                scenario_flags = true;
            }
            "--require-feasible" => {
                args.require_feasible = true;
                scenario_flags = true;
            }
            "--reanalyze" => args.reanalyze = true,
            "--connect" => args.connect = Some(value("--connect")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    // env overrides fill in unset flags
    if !jobs_set {
        if let Ok(v) = std::env::var("VERICOMP_JOBS") {
            args.jobs = v
                .parse()
                .map_err(|_| "VERICOMP_JOBS needs a number".to_string())?;
        }
    }
    if args.cache_dir.is_none() {
        if let Ok(v) = std::env::var("VERICOMP_CACHE_DIR") {
            if !v.is_empty() {
                args.cache_dir = Some(v);
            }
        }
    }
    if args.connect.is_some() {
        if args.search {
            return Err("--connect submits fixed sweeps; the search runs locally".to_string());
        }
        if args.reanalyze {
            return Err(
                "--reanalyze audits the local session analyzer; drop it with --connect".to_string(),
            );
        }
        if jobs_set || cache_dir_set {
            return Err(
                "--jobs/--cache-dir configure the server, not the client; drop them with \
                 --connect"
                    .to_string(),
            );
        }
    }
    if args.search && !args.configs.is_empty() {
        return Err("--search seeds its own config frontier; drop --configs/--level".to_string());
    }
    if args.scenario.is_some() && args.search {
        return Err("--scenario sweeps a fixed config axis; drop --search".to_string());
    }
    if args.scenario.is_some() && args.nodes.is_some() {
        return Err("--scenario sizes itself via --scenario-tasks; drop --nodes".to_string());
    }
    if scenario_flags && args.scenario.is_none() {
        return Err("--scenario-* flags and --require-feasible need --scenario SEED".to_string());
    }
    if args.configs.is_empty() {
        args.configs.push(OptLevel::Verified);
    }
    if args.machines.is_empty() {
        args.machines.push("mpc755".to_owned());
    }
    if args.search && args.machines.len() > 1 {
        return Err("--search probes one machine; pass a single --machines entry".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.connect.is_some() {
        return run_connected(&args);
    }

    let mut builder = PipelineOptions::builder().jobs(args.jobs);
    if let Some(dir) = &args.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let options = match builder.build() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline = match Pipeline::new(&options) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.scenario.is_some() {
        return run_scenario(&pipeline, &args);
    }

    let mut nodes = fleet::named_suite();
    if let Some(n) = args.nodes {
        nodes.truncate(n);
    }
    if args.search {
        return run_search(&pipeline, &nodes, &args);
    }
    let mut spec = SweepSpec::new().nodes(&nodes);
    for level in &args.configs {
        spec = spec.level(*level);
    }
    for name in &args.machines {
        spec = spec.machine(name, &parse_machine(name).expect("validated at parse time"));
    }
    println!(
        "compile_fleet: {} nodes × {} configs × {} machines = {} cells on {} workers, cache {}",
        nodes.len(),
        args.configs.len(),
        args.machines.len(),
        spec.cell_count(),
        pipeline.jobs(),
        args.cache_dir.as_deref().unwrap_or("(memory)"),
    );

    let mut result = match pipeline.run_sweep(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<24} {:<16} {:<12} {:>8} {:>9}  verdict",
        "node", "config", "machine", "WCET", "source"
    );
    for cell in result.cells() {
        println!(
            "{:<24} {:<16} {:<12} {:>8} {:>9}  {}",
            cell.unit,
            cell.config,
            cell.machine,
            cell.wcet(),
            if cell.outcome.cached {
                "cache"
            } else {
                "compiled"
            },
            cell.outcome.artifact.verdict.describe(),
        );
    }
    println!("{result}");
    println!("{}", result.stats.render());
    println!("fleet digest: {}", result.digest());
    if args.reanalyze {
        if let Err(code) = run_reanalyze(&pipeline, &mut result) {
            return code;
        }
    }
    if let Err(code) = export_trace(result.trace(), &args) {
        return code;
    }

    if let Some(min) = args.min_hit_rate {
        if result.stats.hit_rate() < min {
            eprintln!(
                "compile_fleet: hit rate {:.3} below required {min:.3}",
                result.stats.hit_rate()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--reanalyze`: audit the sweep through the warm session analyzer and
/// print the greppable `reanalyze:` line (functions_reused counts cache
/// replays — the CI analyzer smoke asserts it is positive on a sweep the
/// same pipeline just ran). A bound mismatch is a correctness failure.
fn run_reanalyze(
    pipeline: &Pipeline,
    result: &mut vericomp_pipeline::SweepResult,
) -> Result<(), ExitCode> {
    let audit = match pipeline.reanalyze_sweep(result) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    println!(
        "reanalyze: artifacts={} functions_reused={} functions_analyzed={}",
        audit.artifacts, audit.functions_reused, audit.functions_analyzed
    );
    for m in &audit.mismatches {
        eprintln!("compile_fleet: reanalysis mismatch: {m}");
    }
    if audit.mismatches.is_empty() {
        Ok(())
    } else {
        Err(ExitCode::FAILURE)
    }
}

/// Scenario construction shared by the local and `--connect` paths:
/// builds the seeded config, generates the scenario, prints the
/// deterministic `scenario:` header line.
fn build_scenario(args: &Args) -> Result<(ScenarioConfig, Scenario), String> {
    let seed = args.scenario.expect("build_scenario needs --scenario");
    let mut builder = ScenarioConfig::builder()
        .name("cli")
        .tasks(args.scenario_tasks)
        .frames(args.scenario_frames)
        .seed(seed);
    if let Some(mode) = &args.scenario_overbudget {
        builder = builder.override_budget(mode, 1);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let scenario = Scenario::generate(&config).map_err(|e| e.to_string())?;
    println!(
        "scenario: {} seed={seed} tasks={} frames={} modes={} units={} symbols={}",
        config.name,
        scenario.tasks().len(),
        config.minor_frames,
        config.modes.len(),
        scenario.units().len(),
        scenario.total_symbols(),
    );
    Ok((config, scenario))
}

/// `--scenario SEED`: generate a multi-rate scenario, sweep its
/// deduplicated task variants through the pipeline, and join the WCET
/// bounds back into a schedulability report. Every `scenario:` / `sched:`
/// line and both digests are pure functions of (seed, flags, axes) — the
/// CI smoke compares them across job counts.
fn run_scenario(pipeline: &Pipeline, args: &Args) -> ExitCode {
    let (_config, scenario) = match build_scenario(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut spec = scenario.to_sweep_spec();
    for level in &args.configs {
        spec = spec.level(*level);
    }
    for name in &args.machines {
        spec = spec.machine(name, &parse_machine(name).expect("validated at parse time"));
    }
    println!(
        "compile_fleet: {} units × {} configs × {} machines = {} cells on {} workers, cache {}",
        scenario.units().len(),
        args.configs.len(),
        args.machines.len(),
        spec.cell_count(),
        pipeline.jobs(),
        args.cache_dir.as_deref().unwrap_or("(memory)"),
    );

    let mut result = match pipeline.run_sweep(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", result.stats.render());
    println!("fleet digest: {}", result.digest());

    let report = scenario.check(&result);
    print!("{}", report.render());
    println!("sched digest: {}", report.digest());
    if args.reanalyze {
        if let Err(code) = run_reanalyze(pipeline, &mut result) {
            return code;
        }
    }
    if let Err(code) = export_trace(result.trace(), args) {
        return code;
    }

    if let Some(min) = args.min_hit_rate {
        if result.stats.hit_rate() < min {
            eprintln!(
                "compile_fleet: hit rate {:.3} below required {min:.3}",
                result.stats.hit_rate()
            );
            return ExitCode::FAILURE;
        }
    }
    if args.require_feasible && !report.feasible() {
        eprintln!(
            "compile_fleet: {} frame verdicts over budget",
            report.infeasible_count()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A fresh nonzero trace id for a `--connect --trace` run: wall-clock
/// nanos folded with the pid. Uniqueness only has to hold across the
/// requests one daemon is concurrently serving — the id exists so the
/// server can tag the spans of *this* request, not as a digest input.
fn fresh_trace_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
    (nanos ^ u64::from(std::process::id()).rotate_left(32)).max(1)
}

/// `--connect SOCK`: submit the sweep (fleet or scenario) to a running
/// `vericomp_serve` daemon and render the served response in the solo
/// run's output shape — same per-cell table, same `fleet digest:` /
/// `sched digest:` lines, and by the service determinism guarantee, the
/// same digest values a local run of the identical request prints.
///
/// With `--trace FILE` the request carries a fresh trace id; the daemon
/// answers with the server-side spans of exactly this request, which are
/// shifted onto the client's epoch timeline (anchored at the request
/// send) and written alongside the client's own connection/request spans
/// as one Chrome trace — client rows under pid 1, server rows under pid 2.
fn run_connected(args: &Args) -> ExitCode {
    let sock = args
        .connect
        .as_deref()
        .expect("run_connected needs --connect");
    let trace_id = if args.trace.is_some() {
        fresh_trace_id()
    } else {
        0
    };
    let epoch = std::time::Instant::now();
    let nanos_since =
        |e: &std::time::Instant| u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut client_spans: Vec<Span> = Vec::new();

    let mut client = match Client::connect(sock) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile_fleet: connecting {sock}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace_id != 0 {
        client_spans.push(Span::stage(
            "connect",
            0,
            0,
            nanos_since(&epoch),
            &format!("sock={sock}"),
        ));
    }

    let scenario = if args.scenario.is_some() {
        match build_scenario(args) {
            Ok((_, scenario)) => Some(scenario),
            Err(e) => {
                eprintln!("compile_fleet: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let (mut spec, unit_count) = match &scenario {
        Some(s) => (s.to_sweep_spec(), s.units().len()),
        None => {
            let mut nodes = fleet::named_suite();
            if let Some(n) = args.nodes {
                nodes.truncate(n);
            }
            let count = nodes.len();
            (SweepSpec::new().nodes(&nodes), count)
        }
    };
    for level in &args.configs {
        spec = spec.level(*level);
    }
    for name in &args.machines {
        spec = spec.machine(name, &parse_machine(name).expect("validated at parse time"));
    }
    let spec = normalize_spec(&spec, &MachineConfig::mpc755());
    println!(
        "compile_fleet: {} units × {} configs × {} machines = {} cells via daemon at {sock}",
        unit_count,
        spec.configs().len(),
        spec.machines().len(),
        spec.cell_count(),
    );

    let request_start = nanos_since(&epoch);
    let result = if trace_id == 0 {
        client.run_sweep(&spec)
    } else {
        client.run_sweep_traced(&spec, trace_id)
    };
    let response = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace_id != 0 {
        client_spans.push(Span::stage(
            "request",
            0,
            request_start,
            nanos_since(&epoch).saturating_sub(request_start),
            &format!("trace={trace_id:016x} cells={}", spec.cell_count()),
        ));
    }

    if let Some(scenario) = &scenario {
        println!("{}", response.stats.render());
        println!("fleet digest: {}", response.digest);
        let report = scenario.check_bounds(&response.configs, &response.machines, |u, c, m| {
            response.get(u, c, m).map(|cell| cell.wcet)
        });
        print!("{}", report.render());
        println!("sched digest: {}", report.digest());
        if args.require_feasible && !report.feasible() {
            eprintln!(
                "compile_fleet: {} frame verdicts over budget",
                report.infeasible_count()
            );
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "{:<24} {:<16} {:<12} {:>8} {:>9}  verdict",
            "node", "config", "machine", "WCET", "source"
        );
        for cell in &response.cells {
            println!(
                "{:<24} {:<16} {:<12} {:>8} {:>9}  {}",
                cell.unit,
                cell.config,
                cell.machine,
                cell.wcet,
                if cell.cached { "cache" } else { "compiled" },
                cell.verdict.describe(),
            );
        }
        println!(
            "sweep {} units × {} configs × {} machines = {} cells ({} run, {} cached)",
            response.units.len(),
            response.configs.len(),
            response.machines.len(),
            response.cells.len(),
            response.stats.jobs_run,
            response.stats.jobs_cached,
        );
        println!("{}", response.stats.render());
        println!("fleet digest: {}", response.digest);
    }

    if args.profile {
        match client.server_stats() {
            Ok(stats) => print_server_profile(&stats),
            Err(e) => {
                eprintln!("compile_fleet: fetching server stats: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.trace {
        let mut merged = RunTrace::new();
        for span in client_spans {
            merged.push(span);
        }
        let server_spans = response.spans.len();
        for mut span in response.spans.clone() {
            // server span timestamps are relative to the server-side sweep
            // start; anchor them at the moment this client sent the request
            // so both processes share one Perfetto timeline
            span.ts_ns = span.ts_ns.saturating_add(request_start);
            span.pid = 2;
            merged.push(span);
        }
        if let Err(e) = std::fs::write(path, merged.to_chrome_json()) {
            eprintln!("compile_fleet: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} spans written to {path} ({server_spans} server-side, trace id {trace_id:016x})",
            merged.len(),
        );
    }

    if let Some(min) = args.min_hit_rate {
        if response.stats.hit_rate() < min {
            eprintln!(
                "compile_fleet: hit rate {:.3} below required {min:.3}",
                response.stats.hit_rate()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--connect --profile`: the daemon has no span trace to export, but its
/// [`vericomp_pipeline::ServerStats`] carries lifetime per-stage nanos and
/// both cache hit rates — render them in the local profile's line shape so
/// the same `profile:` greps work against either path.
fn print_server_profile(stats: &vericomp_pipeline::ServerStats) {
    #[allow(clippy::cast_precision_loss)]
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "profile: stage compile {:>12.2} ms (server lifetime)",
        ms(stats.compile_ns)
    );
    println!(
        "profile: stage analyze {:>12.2} ms (server lifetime)",
        ms(stats.analyze_ns)
    );
    println!(
        "profile: stage store   {:>12.2} ms (server lifetime)",
        ms(stats.store_ns)
    );
    println!(
        "profile: batch wall    {:>12.2} ms ({} batches, {} cells)",
        ms(stats.wall_ns),
        stats.batches,
        stats.batched_cells,
    );
    println!("profile: cache hit rate: {:.1}%", stats.hit_rate() * 100.0);
    println!(
        "profile: parse-cache hit rate: {:.1}%",
        stats.parse_hit_rate() * 100.0
    );
    println!(
        "profile: wire rx {} tx {} bytes, units offered {} uploaded {}",
        stats.bytes_rx, stats.bytes_tx, stats.units_offered, stats.units_uploaded,
    );
}

/// `--trace` / `--profile` handling shared by the sweep and search paths:
/// writes the Chrome trace-event JSON and prints the deterministic profile
/// table (the CI smoke greps its `profile:` lines and compares the counter
/// digest across job counts).
fn export_trace(trace: &vericomp_pipeline::RunTrace, args: &Args) -> Result<(), ExitCode> {
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("compile_fleet: writing {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        println!("trace: {} spans written to {path}", trace.len());
    }
    if args.profile {
        print!("{}", trace.profile().render());
    }
    Ok(())
}

/// `--search`: per-node WCET minimization over the `PassConfig` lattice.
/// Every `search:`-prefixed line is a pure function of the node set and
/// machine — the CI smoke greps them (and the digest) and compares across
/// job counts and cache states; hit rates and timings stay off those lines.
fn run_search(pipeline: &Pipeline, nodes: &[vericomp_dataflow::Node], args: &Args) -> ExitCode {
    let machine_name = &args.machines[0];
    let machine = parse_machine(machine_name).expect("validated at parse time");
    let spec = SearchSpec::new()
        .nodes(nodes)
        .machine(machine_name, &machine);
    println!(
        "compile_fleet: lattice search over {} nodes on {machine_name}, {} workers, cache {}",
        nodes.len(),
        pipeline.jobs(),
        args.cache_dir.as_deref().unwrap_or("(memory)"),
    );

    let result = match pipeline.search_wcet(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    for node in &result.nodes {
        println!(
            "search: {:<24} winner {:<28} wcet {:>7}  probes {:>3}  pruned {}  gens {}",
            node.unit,
            node.winner.label,
            node.winner.wcet,
            node.probes(),
            node.pruned.len(),
            node.generations,
        );
        for d in &node.pruned {
            println!(
                "search: {:<24}   pruned `{}` after generation {} ({} contexts, never improved)",
                node.unit, d.flag, d.generation, d.trials,
            );
        }
    }
    println!("{result}");
    println!("{}", result.stats.render());
    println!("search digest: {}", result.digest());
    if let Err(code) = export_trace(result.trace(), &args) {
        return code;
    }

    if let Some(min) = args.min_hit_rate {
        if result.stats.hit_rate() < min {
            eprintln!(
                "compile_fleet: hit rate {:.3} below required {min:.3}",
                result.stats.hit_rate()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
