//! The compile-as-a-service daemon.
//!
//! ```text
//! # terminal 1 — start the service
//! cargo run --release -p vericomp --bin vericomp_serve -- \
//!     --socket target/vericomp.sock --shards 4 --store-bytes 4000000
//!
//! # terminal 2 — any number of clients
//! cargo run --release -p vericomp --bin compile_fleet -- \
//!     --connect target/vericomp.sock --configs verified,opt-full
//! ```
//!
//! The daemon owns one warm, sharded, size-bounded artifact store and
//! batches concurrently arriving sweep requests into single pipeline
//! runs. Every response digest is bit-identical to what a solo
//! `compile_fleet` run of the same request prints — the determinism
//! gates and the CI daemon smoke compare exactly that.
//!
//! `--stats-of SOCK`, `--metrics-of SOCK`, `--recorder-of SOCK` and
//! `--shutdown SOCK` run one-shot admin requests against an
//! already-running daemon instead of starting one.

use std::process::ExitCode;

use vericomp_pipeline::{Client, Server, ServerOptions};

const USAGE: &str = "usage: vericomp_serve --socket PATH [--jobs N] [--cache-dir DIR]
                     [--shards N] [--store-bytes N] [--parse-bytes N]
                     [--max-inflight-cells N] [--slo F] [--slo-p99-ms N]
                     [--metrics-json FILE] [--no-recorder] [--recorder-cap N]
       vericomp_serve --stats-of PATH | --metrics-of PATH
                    | --recorder-of PATH | --shutdown PATH
  --socket PATH     Unix socket to listen on (stale files are replaced)
  --jobs N          worker threads (default: available parallelism)
  --cache-dir DIR   persistent .vcart store directory (default: memory only)
  --shards N        store shards by digest prefix (default 4)
  --store-bytes N   resident store bound in bytes; exceeding it evicts
                    least-recent batches first, deterministically
                    (default: unbounded)
  --parse-bytes N   parse-cache bound in bytes (canonical source text);
                    0 empties the cache at every batch boundary, so
                    cold clients re-upload every body (default 67108864)
  --max-inflight-cells N
                    admission bound: max sweep cells per batch (default 4096)
  --slo F           hit-rate SLO in 0..1 printed with the stats (default 0.9;
                    0 disables the line)
  --slo-p99-ms N    p99 per-request wall-latency SLO in milliseconds, judged
                    against the request_wall_ns histogram and printed with
                    the stats (default 0: disabled)
  --metrics-json FILE
                    persist the metrics registry as JSON to FILE at clean
                    shutdown
  --no-recorder     disable the flight recorder (recorder-dump requests
                    then answer with an error)
  --recorder-cap N  flight-recorder ring capacity in events (default 4096)
  --stats-of PATH   print a running daemon's stats and exit
  --metrics-of PATH print a running daemon's metrics registry JSON and exit
  --recorder-of PATH
                    print a running daemon's flight-recorder dump and exit
  --shutdown PATH   ask a running daemon to drain and stop, then exit";

enum Mode {
    Serve(ServerOptions),
    StatsOf(String),
    MetricsOf(String),
    RecorderOf(String),
    Shutdown(String),
}

fn parse_args() -> Result<Mode, String> {
    let mut socket: Option<String> = None;
    let mut stats_of: Option<String> = None;
    let mut shutdown: Option<String> = None;
    let mut jobs = 0usize;
    let mut cache_dir: Option<String> = None;
    let mut shards = 4usize;
    let mut max_bytes: Option<u64> = None;
    let mut parse_bytes: Option<u64> = None;
    let mut max_inflight = 4096usize;
    let mut slo = 0.9f64;
    let mut slo_p99_ms = 0u64;
    let mut metrics_json: Option<String> = None;
    let mut recorder = true;
    let mut recorder_cap: Option<usize> = None;
    let mut metrics_of: Option<String> = None;
    let mut recorder_of: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs an argument"))
        };
        match flag.as_str() {
            "--socket" => socket = Some(value("--socket")?),
            "--stats-of" => stats_of = Some(value("--stats-of")?),
            "--metrics-of" => metrics_of = Some(value("--metrics-of")?),
            "--recorder-of" => recorder_of = Some(value("--recorder-of")?),
            "--shutdown" => shutdown = Some(value("--shutdown")?),
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a number".to_string())?;
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?;
            }
            "--store-bytes" => {
                max_bytes = Some(
                    value("--store-bytes")?
                        .parse()
                        .map_err(|_| "--store-bytes needs a number".to_string())?,
                );
            }
            "--parse-bytes" => {
                parse_bytes = Some(
                    value("--parse-bytes")?
                        .parse()
                        .map_err(|_| "--parse-bytes needs a number".to_string())?,
                );
            }
            "--max-inflight-cells" => {
                max_inflight = value("--max-inflight-cells")?
                    .parse()
                    .map_err(|_| "--max-inflight-cells needs a number".to_string())?;
            }
            "--slo" => {
                slo = value("--slo")?
                    .parse()
                    .map_err(|_| "--slo needs a number in 0..1".to_string())?;
                if !(0.0..=1.0).contains(&slo) {
                    return Err("--slo needs a number in 0..1".to_string());
                }
            }
            "--slo-p99-ms" => {
                slo_p99_ms = value("--slo-p99-ms")?
                    .parse()
                    .map_err(|_| "--slo-p99-ms needs a number".to_string())?;
            }
            "--metrics-json" => metrics_json = Some(value("--metrics-json")?),
            "--no-recorder" => recorder = false,
            "--recorder-cap" => {
                recorder_cap = Some(
                    value("--recorder-cap")?
                        .parse()
                        .map_err(|_| "--recorder-cap needs a number".to_string())?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }

    if let Some(path) = stats_of {
        return Ok(Mode::StatsOf(path));
    }
    if let Some(path) = metrics_of {
        return Ok(Mode::MetricsOf(path));
    }
    if let Some(path) = recorder_of {
        return Ok(Mode::RecorderOf(path));
    }
    if let Some(path) = shutdown {
        return Ok(Mode::Shutdown(path));
    }
    let socket = socket.ok_or_else(|| format!("--socket is required\n{USAGE}"))?;
    let mut options = ServerOptions::new(socket);
    options.jobs = jobs;
    options.cache_dir = cache_dir.map(Into::into);
    options.shards = shards;
    options.max_bytes = max_bytes;
    if let Some(bytes) = parse_bytes {
        options.parse_bytes = Some(bytes);
    }
    options.max_inflight_cells = max_inflight;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    {
        options.slo_per_mille = (slo * 1000.0).round() as u64;
    }
    options.slo_p99_ns = slo_p99_ms.saturating_mul(1_000_000);
    options.metrics_json = metrics_json.map(Into::into);
    options.recorder = recorder;
    if let Some(cap) = recorder_cap {
        options.recorder_cap = cap;
    }
    Ok(Mode::Serve(options))
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        Mode::StatsOf(path) => {
            let mut client = match Client::connect(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("vericomp_serve: connecting {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.server_stats() {
                Ok(stats) => {
                    print!("{}", stats.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::MetricsOf(path) => {
            let mut client = match Client::connect(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("vericomp_serve: connecting {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.server_metrics() {
                Ok(json) => {
                    print!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::RecorderOf(path) => {
            let mut client = match Client::connect(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("vericomp_serve: connecting {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.recorder_dump() {
                Ok(json) => {
                    print!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Shutdown(path) => {
            let mut client = match Client::connect(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("vericomp_serve: connecting {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.shutdown() {
                Ok(()) => {
                    println!("vericomp_serve: shutdown acknowledged");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Serve(options) => {
            let server = match Server::new(&options) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "vericomp_serve: listening on {} ({} shards, {}, admission {} cells, cache {})",
                options.socket.display(),
                options.shards,
                options
                    .max_bytes
                    .map_or("unbounded".to_string(), |b| format!("{b} byte bound")),
                options.max_inflight_cells,
                options
                    .cache_dir
                    .as_ref()
                    .map_or("(memory)".to_string(), |d| d.display().to_string()),
            );
            match server.run() {
                Ok(stats) => {
                    print!("{}", stats.render());
                    println!("vericomp_serve: clean shutdown");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vericomp_serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
