//! # vericomp — verified optimizing compilation for flight control software
//!
//! A from-scratch Rust reproduction of *"Towards Formally Verified
//! Optimizing Compilation in Flight Control Software"* (Bedin França,
//! Favre-Félix, Leroy, Pantel, Souyris — PPES/DATE 2011). The workspace
//! rebuilds the paper's entire experimental stack:
//!
//! * [`dataflow`] — SCADE-like control-law specifications and the
//!   pattern-based automatic code generator,
//! * [`minic`] — the C-subset source language with a reference interpreter
//!   (the semantics compilers must preserve) and CompCert's
//!   `__builtin_annotation`,
//! * [`core`] — the optimizing compiler in the paper's four configurations,
//!   with translation validators standing in for CompCert's Coq proofs,
//! * [`arch`] — the PowerPC-750/755-subset ISA with real binary encodings,
//! * [`mach`] — the MPC755-like simulator (dual-issue pipeline, L1 caches,
//!   slow acquisitions) with cache/cycle performance counters,
//! * [`wcet`] — the aiT-like static WCET analyzer consuming the binary and
//!   the generated annotation file,
//! * [`pipeline`] — the parallel compilation service: std-only
//!   work-stealing job pool, content-addressed artifact cache (keyed on
//!   source, passes, machine config and toolchain stamps; populated only
//!   after translation validators accept), and incremental fleet rebuilds,
//! * [`testkit`] — hermetic test infrastructure, including the scenario
//!   suite: generated multi-rate cyclic executives with operating modes
//!   and declarative per-frame WCET-budget properties.
//!
//! The [`harness`] module glues these into the experiment pipelines used by
//! the examples, integration tests and benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use vericomp::harness;
//! use vericomp::core::OptLevel;
//! use vericomp::dataflow::NodeBuilder;
//!
//! // a small control law
//! let mut b = NodeBuilder::new("demo");
//! let x = b.acquisition(0);
//! let f = b.first_order_filter(x, 0.25);
//! let s = b.saturation(f, -10.0, 10.0);
//! b.output("demo_out", s);
//! let node = b.build()?;
//!
//! // compile like CompCert, run one activation, bound its WCET
//! let binary = harness::compile_node(&node, OptLevel::Verified)?;
//! let mut sim = vericomp::mach::Simulator::new(binary.clone());
//! sim.set_io_f64(0, 3.5);
//! let outcome = sim.run(1_000_000)?;
//! let report = harness::analyze_wcet(&binary, "step")?;
//! assert!(report.wcet >= outcome.stats.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use vericomp_arch as arch;
pub use vericomp_core as core;
pub use vericomp_dataflow as dataflow;
pub use vericomp_mach as mach;
pub use vericomp_minic as minic;
pub use vericomp_pipeline as pipeline;
pub use vericomp_testkit as testkit;
pub use vericomp_wcet as wcet;

pub mod harness {
    //! Convenience pipelines tying the crates together.

    use std::fmt;

    use crate::arch::Program;
    use crate::core::{CompileError, Compiler, OptLevel, PassConfig};
    use crate::dataflow::Node;
    use crate::mach::{AnnotEvent, AnnotValue, Simulator};
    use crate::minic::interp::{Interp, TraceEvent, Value};
    use crate::wcet::AnalysisError;

    /// Compiles a dataflow node with the given compiler configuration.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_node(node: &Node, level: OptLevel) -> Result<Program, CompileError> {
        Compiler::new(level).compile(&node.to_minic(), node.step_name())
    }

    /// Bounds the WCET of `func` in `program` with a one-shot
    /// [`Analyzer`](crate::wcet::Analyzer) session. Drivers analyzing many
    /// related binaries should hold one `Analyzer` instead, so the
    /// session's fact cache and hash-cons arena amortize across calls.
    ///
    /// # Errors
    ///
    /// Any [`AnalysisError`].
    pub fn analyze_wcet(
        program: &Program,
        func: &str,
    ) -> Result<crate::wcet::WcetReport, AnalysisError> {
        crate::wcet::Analyzer::default()
            .analyze(&crate::wcet::AnalysisRequest::new(program, func))
            .map(crate::wcet::Analysis::into_report)
    }

    /// Error of the WCET-driven compilation driver.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WcetDrivenError {
        /// A candidate failed to compile.
        Compile(CompileError),
        /// A candidate failed to analyze.
        Analyze(AnalysisError),
        /// The pipeline failed outside compile/analyze (e.g. an artifact
        /// cache layer) — rendered, so the error stays cloneable. An
        /// in-memory pipeline should degrade, not panic, if a cache layer
        /// is ever added to it.
        Pipeline(String),
    }

    impl fmt::Display for WcetDrivenError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WcetDrivenError::Compile(e) => write!(f, "compile: {e}"),
                WcetDrivenError::Analyze(e) => write!(f, "analyze: {e}"),
                WcetDrivenError::Pipeline(msg) => write!(f, "pipeline: {msg}"),
            }
        }
    }

    impl std::error::Error for WcetDrivenError {}

    /// One evaluated candidate of the WCET-driven compilation: a seed of
    /// [`wcet_driven_candidates`] or an expanded lattice point of the
    /// [`search`](crate::pipeline::search).
    #[derive(Debug, Clone)]
    pub struct WcetCandidate {
        /// Candidate name (seed label or canonical lattice label).
        pub name: String,
        /// Its WCET bound.
        pub wcet: u64,
    }

    /// Runs the WCET-guided lattice search of one unit, seeded with
    /// [`wcet_driven_candidates`], and returns the full [`SearchResult`].
    ///
    /// [`SearchResult`]: crate::pipeline::SearchResult
    fn search_unit(
        pipeline: &crate::pipeline::Pipeline,
        unit: crate::pipeline::SweepUnit,
    ) -> Result<crate::pipeline::SearchResult, crate::pipeline::PipelineError> {
        let mut spec = crate::pipeline::SearchSpec::new().unit(unit);
        for (name, passes) in wcet_driven_candidates() {
            spec = spec.seed(name, &passes);
        }
        pipeline.search_wcet(&spec)
    }

    /// The candidate report of one completed node search: the
    /// [`wcet_driven_candidates`] seeds first (in seed order, duplicates
    /// of the same lattice point reported under each seed name), then
    /// every further lattice point the search probed, in probe order.
    fn candidate_report(search: &crate::pipeline::NodeSearch) -> Vec<WcetCandidate> {
        let seeds = wcet_driven_candidates();
        let seed_bits: Vec<u16> = seeds
            .iter()
            .map(|(_, passes)| crate::pipeline::config_bits(passes))
            .collect();
        let mut report: Vec<WcetCandidate> = seeds
            .iter()
            .map(|(name, passes)| WcetCandidate {
                name: (*name).to_owned(),
                wcet: search.wcet_of(passes).expect("every seed is probed"),
            })
            .collect();
        report.extend(
            search
                .probed
                .iter()
                .filter(|p| !seed_bits.contains(&p.bits))
                .map(|p| WcetCandidate {
                    name: p.label.clone(),
                    wcet: p.wcet,
                }),
        );
        report
    }

    /// **WCET-driven compilation** — the direction the paper's §4 sketches,
    /// after the WCC compiler of Falk et al.: "optimizations are evaluated
    /// using a WCET analysis tool and only applied when shown to be
    /// beneficial".
    ///
    /// The driver runs the pipeline's [`search_wcet`] over the `PassConfig`
    /// lattice, seeded with the fixed [`wcet_driven_candidates`] frontier
    /// (the verified baseline plus each full-optimizer extra in isolation
    /// and in combination), and returns the binary with the smallest
    /// analyzed bound together with every evaluated lattice point — the
    /// seeds first, then the search's expansions in probe order. Seeds
    /// probe before expansions and the first minimum wins ties, so
    /// whenever no expanded config strictly beats the seeds the selection
    /// is exactly the old fixed-candidate driver's. Every probe keeps the
    /// translation validators enabled, so the selection never trades
    /// correctness for time.
    ///
    /// [`search_wcet`]: crate::pipeline::Pipeline::search_wcet
    ///
    /// # Errors
    ///
    /// [`WcetDrivenError`] if any probe fails to compile or analyze (or,
    /// through [`WcetDrivenError::Pipeline`], if a pipeline cache layer
    /// fails).
    pub fn compile_wcet_driven(
        prog: &crate::minic::ast::Program,
        entry: &str,
    ) -> Result<(Program, Vec<WcetCandidate>), WcetDrivenError> {
        use crate::pipeline::{Pipeline, PipelineError, SweepUnit};

        let unit = SweepUnit::from_source("wcet-driven", prog.clone(), entry);
        let result = search_unit(&Pipeline::in_memory(), unit).map_err(|e| match e {
            PipelineError::Compile { error, .. } => WcetDrivenError::Compile(error),
            PipelineError::Analyze { error, .. } => WcetDrivenError::Analyze(error),
            e @ PipelineError::Cache(_) => WcetDrivenError::Pipeline(e.to_string()),
        })?;
        let node = result.nodes.into_iter().next().expect("one unit searched");
        let report = candidate_report(&node);
        Ok((node.artifact.program.clone(), report))
    }

    /// The candidate pass selections the WCET-driven drivers evaluate —
    /// and, since the lattice search, the drivers' **seed frontier**: the
    /// verified baseline, each full-optimizer extra probed in isolation
    /// (`tunnel` included — the verified preset already enables it, so its
    /// single-extra candidate shares the baseline's lattice point and is
    /// reported at the baseline's bound), and the validated full
    /// optimizer.
    #[must_use]
    pub fn wcet_driven_candidates() -> [(&'static str, PassConfig); 6] {
        let verified = PassConfig::for_level(OptLevel::Verified);
        let full = PassConfig::for_level(OptLevel::OptFull);
        [
            ("verified", verified),
            (
                "verified+tunnel",
                PassConfig {
                    tunnel: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "verified+sda",
                PassConfig {
                    sda: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "verified+sched",
                PassConfig {
                    schedule: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "verified+strength",
                PassConfig {
                    strength: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "opt-full(validated)",
                PassConfig {
                    validators: true,
                    ..full
                },
            ),
        ]
    }

    /// Error of [`compile_application_parallel`].
    #[derive(Debug)]
    pub enum ParallelBuildError {
        /// Linking the application's translation unit failed.
        Link(crate::dataflow::ApplicationError),
        /// A pipeline unit failed to compile or analyze.
        Pipeline(crate::pipeline::PipelineError),
    }

    impl fmt::Display for ParallelBuildError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                ParallelBuildError::Link(e) => write!(f, "link: {e}"),
                ParallelBuildError::Pipeline(e) => write!(f, "pipeline: {e}"),
            }
        }
    }

    impl std::error::Error for ParallelBuildError {}

    /// Result of [`compile_application_parallel`].
    #[derive(Debug)]
    pub struct ParallelBuild {
        /// The winning artifact: binary, replayable validator verdict and
        /// WCET report of the whole image.
        pub artifact: std::sync::Arc<crate::pipeline::Artifact>,
        /// Every evaluated lattice point with its WCET bound: the
        /// [`wcet_driven_candidates`] seeds first, then the search's
        /// expansions in probe order.
        pub candidates: Vec<WcetCandidate>,
        /// Pipeline run metrics (jobs run/cached, stage times, hit rate).
        pub stats: crate::pipeline::PipelineStats,
        /// The full search trace of the image: winner, probed lattice
        /// points, dominance-pruning decisions, generations.
        pub search: crate::pipeline::NodeSearch,
        /// Span telemetry of the build: per-stage and per-pass spans plus
        /// `search:*` provenance events, exportable as Chrome trace-event
        /// JSON or a deterministic profile table.
        pub trace: crate::pipeline::RunTrace,
    }

    /// WCET-driven compilation of a whole [`Application`] image on the
    /// parallel pipeline: the [`search_wcet`] lattice search of the linked
    /// image, seeded with [`wcet_driven_candidates`]. Each frontier
    /// generation's probes compile and analyze concurrently on the
    /// work-stealing pool, each cached content-addressed, and the binary
    /// with the smallest WCET bound wins (seeds probe first and the first
    /// minimum wins ties — the same selection rule as the serial
    /// [`compile_wcet_driven`]).
    ///
    /// [`Application`]: crate::dataflow::Application
    /// [`search_wcet`]: crate::pipeline::Pipeline::search_wcet
    ///
    /// # Errors
    ///
    /// [`ParallelBuildError`] on link, compile, analysis or cache failure.
    pub fn compile_application_parallel(
        app: &crate::dataflow::Application,
        options: &crate::pipeline::PipelineOptions,
    ) -> Result<ParallelBuild, ParallelBuildError> {
        use crate::pipeline::{Pipeline, SweepUnit};

        let pipeline = Pipeline::new(options).map_err(ParallelBuildError::Pipeline)?;
        let unit = SweepUnit::from_application(app).map_err(ParallelBuildError::Link)?;
        let result = search_unit(&pipeline, unit).map_err(ParallelBuildError::Pipeline)?;
        let trace = result.trace().clone();
        let stats = result.stats;
        let node = result.nodes.into_iter().next().expect("one unit searched");
        Ok(ParallelBuild {
            artifact: std::sync::Arc::clone(&node.artifact),
            candidates: candidate_report(&node),
            stats,
            search: node,
            trace,
        })
    }

    /// Result of [`compile_scenario`] / [`compile_scenario_with`]: the
    /// sweep over the scenario's deduplicated task variants joined with
    /// its schedulability report.
    #[derive(Debug)]
    pub struct ScenarioBuild {
        /// The full sweep result (artifacts, verdicts, WCET bounds, stats,
        /// trace) of every (unit × config × machine) cell.
        pub sweep: crate::pipeline::SweepResult,
        /// The joint property verdicts: one per (mode, frame, config,
        /// machine), with a digest that is bit-identical across job counts.
        pub report: crate::testkit::scenario::SchedReport,
    }

    /// Front-door compilation of a generated scenario on default axes
    /// (the `verified` config on the default machine): lowers the scenario
    /// through [`Scenario::to_sweep_spec`], runs the sweep on the parallel
    /// pipeline, and joins the analyzed WCET bounds back against the
    /// scenario's frame budgets.
    ///
    /// [`Scenario::to_sweep_spec`]: crate::testkit::scenario::Scenario::to_sweep_spec
    ///
    /// # Errors
    ///
    /// Any [`PipelineError`](crate::pipeline::PipelineError).
    pub fn compile_scenario(
        scenario: &crate::testkit::scenario::Scenario,
        options: &crate::pipeline::PipelineOptions,
    ) -> Result<ScenarioBuild, crate::pipeline::PipelineError> {
        let pipeline = crate::pipeline::Pipeline::new(options)?;
        compile_scenario_with(&pipeline, scenario, scenario.to_sweep_spec())
    }

    /// [`compile_scenario`] with an explicit pipeline and sweep spec —
    /// the spec must come from [`Scenario::to_sweep_spec`] (extra config /
    /// machine axes welcome; dropping units is not).
    ///
    /// [`Scenario::to_sweep_spec`]: crate::testkit::scenario::Scenario::to_sweep_spec
    ///
    /// # Errors
    ///
    /// Any [`PipelineError`](crate::pipeline::PipelineError).
    pub fn compile_scenario_with(
        pipeline: &crate::pipeline::Pipeline,
        scenario: &crate::testkit::scenario::Scenario,
        spec: crate::pipeline::SweepSpec,
    ) -> Result<ScenarioBuild, crate::pipeline::PipelineError> {
        let sweep = pipeline.run_sweep(&spec)?;
        let report = scenario.check(&sweep);
        Ok(ScenarioBuild { sweep, report })
    }

    /// Whether a machine annotation trace equals a source-level trace
    /// (formats, order, and values — `f64` compared bitwise).
    pub fn traces_match(machine: &[AnnotEvent], source: &[TraceEvent]) -> bool {
        machine.len() == source.len()
            && machine.iter().zip(source).all(|(m, s)| {
                m.format == s.format
                    && m.values.len() == s.values.len()
                    && m.values
                        .iter()
                        .zip(&s.values)
                        .all(|(mv, sv)| match (mv, sv) {
                            (AnnotValue::I32(a), Value::I(b)) => a == b,
                            (AnnotValue::F64(a), Value::F(b)) => a.to_bits() == b.to_bits(),
                            _ => false,
                        })
            })
    }

    /// A differential run of one node activation: the interpreter and the
    /// simulator execute the same step with the same inputs; outputs and
    /// annotation traces must agree.
    #[derive(Debug)]
    pub struct DiffRun {
        /// Simulator statistics of the activation.
        pub stats: crate::mach::RunStats,
    }

    /// Runs `steps` activations of `node` at `level` with per-activation
    /// inputs supplied by `inputs(step, port_or_global, is_io)` and checks
    /// interpreter/simulator agreement on every output global, actuator
    /// port and annotation trace.
    ///
    /// Returns the simulator statistics of the **last** activation.
    ///
    /// # Panics
    ///
    /// Panics (with context) on any disagreement — this is a test harness.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] from compilation.
    pub fn differential_run(
        node: &Node,
        level: OptLevel,
        steps: u32,
        mut input_for: impl FnMut(u32, u32) -> f64,
    ) -> Result<DiffRun, CompileError> {
        let src = node.to_minic();
        let binary = compile_node(node, level)?;
        let mut interp = Interp::new(&src);
        let mut sim = Simulator::new(binary.clone());

        let io_ports: Vec<u32> = node
            .instances()
            .iter()
            .filter_map(|i| match i.kind {
                crate::dataflow::Symbol::Acquisition(p) => Some(p),
                _ => None,
            })
            .collect();
        let inputs: Vec<String> = src
            .globals
            .iter()
            .filter(|g| g.name.contains("_in") || g.name.ends_with("_cmd"))
            .map(|g| g.name.clone())
            .collect();

        let mut last_stats = None;
        for step in 0..steps {
            for (k, port) in io_ports.iter().enumerate() {
                let v = input_for(step, k as u32);
                interp.set_io(*port, v);
                sim.set_io_f64(*port, v);
            }
            for (k, name) in inputs.iter().enumerate() {
                let v = input_for(step, 100 + k as u32);
                if matches!(
                    src.global(name).map(|g| &g.def),
                    Some(crate::minic::ast::GlobalDef::ScalarF64(_))
                ) {
                    interp
                        .set_global(name, Value::F(v))
                        .expect("input global exists");
                    sim.set_global_f64(name, 0, v).expect("input global exists");
                }
            }

            interp.call(node.step_name(), &[]).unwrap_or_else(|e| {
                panic!("{} interpreter failed at step {step}: {e}", node.name())
            });
            let outcome = sim.run(10_000_000).unwrap_or_else(|e| {
                panic!(
                    "{} simulator failed at step {step} ({level}): {e}",
                    node.name()
                )
            });

            // outputs agree
            for g in &src.globals {
                match g.def {
                    crate::minic::ast::GlobalDef::ScalarF64(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::F(v) => v,
                            _ => unreachable!(),
                        };
                        let b = sim.global_f64(&g.name, 0).expect("declared");
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "{} step {step} ({level}): global {} differs: {a} vs {b}",
                            node.name(),
                            g.name
                        );
                    }
                    crate::minic::ast::GlobalDef::ScalarI32(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::I(v) => v,
                            _ => unreachable!(),
                        };
                        let b = sim.global_i32(&g.name, 0).expect("declared");
                        assert_eq!(
                            a,
                            b,
                            "{} step {step} ({level}): global {} differs",
                            node.name(),
                            g.name
                        );
                    }
                    _ => {}
                }
            }
            // annotation traces agree
            let src_trace = interp.take_trace();
            assert!(
                traces_match(&outcome.annotations, &src_trace),
                "{} step {step} ({level}): annotation traces diverge",
                node.name()
            );
            last_stats = Some(outcome.stats);
        }
        Ok(DiffRun {
            stats: last_stats.expect("steps >= 1"),
        })
    }
}
