//! # vericomp — verified optimizing compilation for flight control software
//!
//! A from-scratch Rust reproduction of *"Towards Formally Verified
//! Optimizing Compilation in Flight Control Software"* (Bedin França,
//! Favre-Félix, Leroy, Pantel, Souyris — PPES/DATE 2011). The workspace
//! rebuilds the paper's entire experimental stack:
//!
//! * [`dataflow`] — SCADE-like control-law specifications and the
//!   pattern-based automatic code generator,
//! * [`minic`] — the C-subset source language with a reference interpreter
//!   (the semantics compilers must preserve) and CompCert's
//!   `__builtin_annotation`,
//! * [`core`] — the optimizing compiler in the paper's four configurations,
//!   with translation validators standing in for CompCert's Coq proofs,
//! * [`arch`] — the PowerPC-750/755-subset ISA with real binary encodings,
//! * [`mach`] — the MPC755-like simulator (dual-issue pipeline, L1 caches,
//!   slow acquisitions) with cache/cycle performance counters,
//! * [`wcet`] — the aiT-like static WCET analyzer consuming the binary and
//!   the generated annotation file,
//! * [`pipeline`] — the parallel compilation service: std-only
//!   work-stealing job pool, content-addressed artifact cache (keyed on
//!   source, passes, machine config and toolchain stamps; populated only
//!   after translation validators accept), and incremental fleet rebuilds.
//!
//! The [`harness`] module glues these into the experiment pipelines used by
//! the examples, integration tests and benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use vericomp::harness;
//! use vericomp::core::OptLevel;
//! use vericomp::dataflow::NodeBuilder;
//!
//! // a small control law
//! let mut b = NodeBuilder::new("demo");
//! let x = b.acquisition(0);
//! let f = b.first_order_filter(x, 0.25);
//! let s = b.saturation(f, -10.0, 10.0);
//! b.output("demo_out", s);
//! let node = b.build()?;
//!
//! // compile like CompCert, run one activation, bound its WCET
//! let binary = harness::compile_node(&node, OptLevel::Verified)?;
//! let mut sim = vericomp::mach::Simulator::new(binary.clone());
//! sim.set_io_f64(0, 3.5);
//! let outcome = sim.run(1_000_000)?;
//! let report = vericomp::wcet::analyze(&binary, "step")?;
//! assert!(report.wcet >= outcome.stats.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use vericomp_arch as arch;
pub use vericomp_core as core;
pub use vericomp_dataflow as dataflow;
pub use vericomp_mach as mach;
pub use vericomp_minic as minic;
pub use vericomp_pipeline as pipeline;
pub use vericomp_wcet as wcet;

pub mod harness {
    //! Convenience pipelines tying the crates together.

    use std::fmt;

    use crate::arch::Program;
    use crate::core::{CompileError, Compiler, OptLevel, PassConfig};
    use crate::dataflow::Node;
    use crate::mach::{AnnotEvent, AnnotValue, Simulator};
    use crate::minic::interp::{Interp, TraceEvent, Value};
    use crate::wcet::AnalysisError;

    /// Compiles a dataflow node with the given compiler configuration.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_node(node: &Node, level: OptLevel) -> Result<Program, CompileError> {
        Compiler::new(level).compile(&node.to_minic(), node.step_name())
    }

    /// Error of the WCET-driven compilation driver.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WcetDrivenError {
        /// A candidate failed to compile.
        Compile(CompileError),
        /// A candidate failed to analyze.
        Analyze(AnalysisError),
    }

    impl fmt::Display for WcetDrivenError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WcetDrivenError::Compile(e) => write!(f, "compile: {e}"),
                WcetDrivenError::Analyze(e) => write!(f, "analyze: {e}"),
            }
        }
    }

    impl std::error::Error for WcetDrivenError {}

    /// One evaluated candidate of the WCET-driven compilation.
    #[derive(Debug, Clone)]
    pub struct WcetCandidate {
        /// Candidate name.
        pub name: &'static str,
        /// Its WCET bound.
        pub wcet: u64,
    }

    /// **WCET-driven compilation** — the direction the paper's §4 sketches,
    /// after the WCC compiler of Falk et al.: "optimizations are evaluated
    /// using a WCET analysis tool and only applied when shown to be
    /// beneficial".
    ///
    /// The driver runs one pipeline sweep of the program across the
    /// candidate pass configurations (the verified baseline plus each
    /// full-optimizer extra in isolation and in combination), bounds each
    /// candidate's WCET with the static analyzer, and returns the binary
    /// with the smallest bound together with the evaluated candidates (the
    /// first minimum wins ties). Every candidate keeps the translation
    /// validators enabled, so the selection never trades correctness for
    /// time.
    ///
    /// # Errors
    ///
    /// [`WcetDrivenError`] if any candidate fails to compile or analyze.
    pub fn compile_wcet_driven(
        prog: &crate::minic::ast::Program,
        entry: &str,
    ) -> Result<(Program, Vec<WcetCandidate>), WcetDrivenError> {
        use crate::pipeline::{Pipeline, PipelineError, SweepSpec, SweepUnit};

        let candidates = wcet_driven_candidates();
        let mut spec =
            SweepSpec::new().unit(SweepUnit::from_source("wcet-driven", prog.clone(), entry));
        for (name, passes) in &candidates {
            spec = spec.config(name, passes);
        }
        let sweep = Pipeline::in_memory()
            .run_sweep(&spec)
            .map_err(|e| match e {
                PipelineError::Compile { error, .. } => WcetDrivenError::Compile(error),
                PipelineError::Analyze { error, .. } => WcetDrivenError::Analyze(error),
                PipelineError::Cache(e) => unreachable!("in-memory pipeline does no IO: {e}"),
            })?;

        // one unit × one machine: cells come back in candidate order
        let report: Vec<WcetCandidate> = sweep
            .cells()
            .iter()
            .zip(candidates)
            .map(|(cell, (name, _))| WcetCandidate {
                name,
                wcet: cell.wcet(),
            })
            .collect();
        // strictly-less scan: the first minimum wins ties
        let binary = sweep
            .cells()
            .iter()
            .fold(None::<&crate::pipeline::SweepCell>, |best, c| match best {
                Some(b) if b.wcet() <= c.wcet() => Some(b),
                _ => Some(c),
            })
            .map(|c| c.outcome.artifact.program.clone())
            .expect("at least one candidate");
        Ok((binary, report))
    }

    /// The candidate pass selections the WCET-driven drivers evaluate: the
    /// verified baseline, each full-optimizer extra in isolation, and the
    /// validated full optimizer.
    #[must_use]
    pub fn wcet_driven_candidates() -> [(&'static str, PassConfig); 5] {
        let verified = PassConfig::for_level(OptLevel::Verified);
        let full = PassConfig::for_level(OptLevel::OptFull);
        [
            ("verified", verified),
            (
                "verified+sda",
                PassConfig {
                    sda: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "verified+sched",
                PassConfig {
                    schedule: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "verified+strength",
                PassConfig {
                    strength: true,
                    validators: true,
                    ..verified
                },
            ),
            (
                "opt-full(validated)",
                PassConfig {
                    validators: true,
                    ..full
                },
            ),
        ]
    }

    /// Error of [`compile_application_parallel`].
    #[derive(Debug)]
    pub enum ParallelBuildError {
        /// Linking the application's translation unit failed.
        Link(crate::dataflow::ApplicationError),
        /// A pipeline unit failed to compile or analyze.
        Pipeline(crate::pipeline::PipelineError),
    }

    impl fmt::Display for ParallelBuildError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                ParallelBuildError::Link(e) => write!(f, "link: {e}"),
                ParallelBuildError::Pipeline(e) => write!(f, "pipeline: {e}"),
            }
        }
    }

    impl std::error::Error for ParallelBuildError {}

    /// Result of [`compile_application_parallel`].
    #[derive(Debug)]
    pub struct ParallelBuild {
        /// The winning artifact: binary, replayable validator verdict and
        /// WCET report of the whole image.
        pub artifact: std::sync::Arc<crate::pipeline::Artifact>,
        /// Every evaluated candidate with its WCET bound.
        pub candidates: Vec<WcetCandidate>,
        /// Pipeline run metrics (jobs run/cached, stage times, hit rate).
        pub stats: crate::pipeline::PipelineStats,
    }

    /// WCET-driven compilation of a whole [`Application`] image on the
    /// parallel pipeline: one sweep of the linked image across the
    /// candidate configurations of [`wcet_driven_candidates`]. The cells
    /// compile and analyze concurrently on the work-stealing pool, each
    /// cached content-addressed, and the binary with the smallest WCET
    /// bound wins (first wins ties — the same selection rule as the serial
    /// [`compile_wcet_driven`]).
    ///
    /// [`Application`]: crate::dataflow::Application
    ///
    /// # Errors
    ///
    /// [`ParallelBuildError`] on link, compile or analysis failure.
    pub fn compile_application_parallel(
        app: &crate::dataflow::Application,
        options: &crate::pipeline::PipelineOptions,
    ) -> Result<ParallelBuild, ParallelBuildError> {
        use crate::pipeline::{Pipeline, SweepSpec};

        let pipeline = Pipeline::new(options).map_err(ParallelBuildError::Pipeline)?;
        let candidates = wcet_driven_candidates();
        let mut spec = SweepSpec::new()
            .application(app)
            .map_err(ParallelBuildError::Link)?;
        for (name, passes) in &candidates {
            spec = spec.config(name, passes);
        }
        let result = pipeline
            .run_sweep(&spec)
            .map_err(ParallelBuildError::Pipeline)?;

        // one unit × one machine: cells come back in candidate order
        let evaluated: Vec<WcetCandidate> = result
            .cells()
            .iter()
            .zip(candidates)
            .map(|(cell, (name, _))| WcetCandidate {
                name,
                wcet: cell.wcet(),
            })
            .collect();
        // strictly-less fold: the first minimum wins ties (min_by_key
        // would keep the last)
        let artifact = result
            .cells()
            .iter()
            .fold(None::<&crate::pipeline::SweepCell>, |best, c| match best {
                Some(b) if b.wcet() <= c.wcet() => Some(b),
                _ => Some(c),
            })
            .map(|c| std::sync::Arc::clone(&c.outcome.artifact))
            .expect("at least one candidate");
        Ok(ParallelBuild {
            artifact,
            candidates: evaluated,
            stats: result.stats,
        })
    }

    /// Whether a machine annotation trace equals a source-level trace
    /// (formats, order, and values — `f64` compared bitwise).
    pub fn traces_match(machine: &[AnnotEvent], source: &[TraceEvent]) -> bool {
        machine.len() == source.len()
            && machine.iter().zip(source).all(|(m, s)| {
                m.format == s.format
                    && m.values.len() == s.values.len()
                    && m.values
                        .iter()
                        .zip(&s.values)
                        .all(|(mv, sv)| match (mv, sv) {
                            (AnnotValue::I32(a), Value::I(b)) => a == b,
                            (AnnotValue::F64(a), Value::F(b)) => a.to_bits() == b.to_bits(),
                            _ => false,
                        })
            })
    }

    /// A differential run of one node activation: the interpreter and the
    /// simulator execute the same step with the same inputs; outputs and
    /// annotation traces must agree.
    #[derive(Debug)]
    pub struct DiffRun {
        /// Simulator statistics of the activation.
        pub stats: crate::mach::RunStats,
    }

    /// Runs `steps` activations of `node` at `level` with per-activation
    /// inputs supplied by `inputs(step, port_or_global, is_io)` and checks
    /// interpreter/simulator agreement on every output global, actuator
    /// port and annotation trace.
    ///
    /// Returns the simulator statistics of the **last** activation.
    ///
    /// # Panics
    ///
    /// Panics (with context) on any disagreement — this is a test harness.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] from compilation.
    pub fn differential_run(
        node: &Node,
        level: OptLevel,
        steps: u32,
        mut input_for: impl FnMut(u32, u32) -> f64,
    ) -> Result<DiffRun, CompileError> {
        let src = node.to_minic();
        let binary = compile_node(node, level)?;
        let mut interp = Interp::new(&src);
        let mut sim = Simulator::new(binary.clone());

        let io_ports: Vec<u32> = node
            .instances()
            .iter()
            .filter_map(|i| match i.kind {
                crate::dataflow::Symbol::Acquisition(p) => Some(p),
                _ => None,
            })
            .collect();
        let inputs: Vec<String> = src
            .globals
            .iter()
            .filter(|g| g.name.contains("_in") || g.name.ends_with("_cmd"))
            .map(|g| g.name.clone())
            .collect();

        let mut last_stats = None;
        for step in 0..steps {
            for (k, port) in io_ports.iter().enumerate() {
                let v = input_for(step, k as u32);
                interp.set_io(*port, v);
                sim.set_io_f64(*port, v);
            }
            for (k, name) in inputs.iter().enumerate() {
                let v = input_for(step, 100 + k as u32);
                if matches!(
                    src.global(name).map(|g| &g.def),
                    Some(crate::minic::ast::GlobalDef::ScalarF64(_))
                ) {
                    interp
                        .set_global(name, Value::F(v))
                        .expect("input global exists");
                    sim.set_global_f64(name, 0, v).expect("input global exists");
                }
            }

            interp.call(node.step_name(), &[]).unwrap_or_else(|e| {
                panic!("{} interpreter failed at step {step}: {e}", node.name())
            });
            let outcome = sim.run(10_000_000).unwrap_or_else(|e| {
                panic!(
                    "{} simulator failed at step {step} ({level}): {e}",
                    node.name()
                )
            });

            // outputs agree
            for g in &src.globals {
                match g.def {
                    crate::minic::ast::GlobalDef::ScalarF64(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::F(v) => v,
                            _ => unreachable!(),
                        };
                        let b = sim.global_f64(&g.name, 0).expect("declared");
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "{} step {step} ({level}): global {} differs: {a} vs {b}",
                            node.name(),
                            g.name
                        );
                    }
                    crate::minic::ast::GlobalDef::ScalarI32(_) => {
                        let a = match interp.global(&g.name).expect("declared") {
                            Value::I(v) => v,
                            _ => unreachable!(),
                        };
                        let b = sim.global_i32(&g.name, 0).expect("declared");
                        assert_eq!(
                            a,
                            b,
                            "{} step {step} ({level}): global {} differs",
                            node.name(),
                            g.name
                        );
                    }
                    _ => {}
                }
            }
            // annotation traces agree
            let src_trace = interp.take_trace();
            assert!(
                traces_match(&outcome.annotations, &src_trace),
                "{} step {step} ({level}): annotation traces diverge",
                node.name()
            );
            last_stats = Some(outcome.stats);
        }
        Ok(DiffRun {
            stats: last_stats.expect("steps >= 1"),
        })
    }
}
